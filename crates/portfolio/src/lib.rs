//! A parallel portfolio of Henkin synthesis engines.
//!
//! The paper's headline evaluation result is the *Virtual Best Synthesizer*:
//! adding Manthan3 to the HQS2-like and Pedant-like baselines solves
//! strictly more instances than any engine alone, because the engines'
//! strengths are complementary (Figs. 6–7). The VBS is usually computed
//! post-hoc from per-engine runs; this crate turns it into an actual solver:
//! [`Portfolio::run`] races the engines on `std::thread`s against **one
//! shared wall-clock budget** and returns the first decisive verdict.
//!
//! The race is cooperative. All engine budgets are clones of one armed
//! [`Budget`], so they observe the same absolute deadline and share one
//! [`CancelToken`](manthan3_sat::CancelToken). As soon as an engine produces
//! a decisive result — a Henkin vector that passes the independent
//! certificate check, or a proof of falsity — the runner cancels the token;
//! the CDCL search loops of the losing engines poll it alongside their
//! conflict budgets and give up within milliseconds instead of burning the
//! remaining budget. Losers report
//! [`UnknownReason::Cancelled`](manthan3_core::UnknownReason::Cancelled).
//!
//! Because every engine runs on the shared oracle layer of `manthan3-core`,
//! the runner also returns per-engine [`OracleStats`] — the same counters
//! for all engines, comparable apples-to-apples — plus their merged total.
//!
//! Besides racing *different* engines, the portfolio can race
//! *configurations* of one engine:
//! [`PortfolioConfig::manthan3_shard_counts`] fans the Manthan3 entry out
//! into one racer per sample-shard count (each drawing its training data
//! through the sharded sampler at a different parallelism), and
//! [`PortfolioConfig::manthan3_repair_strategies`] into one racer per
//! MaxSAT repair strategy (the warm-started linear bound search vs. the
//! core-guided OLL relaxation), and
//! [`PortfolioConfig::manthan3_restart_policies`] into one racer per
//! solver restart policy (Luby vs. Glucose-style EMA) — crossed when
//! several dimensions are set, all under the same shared budget. Instances
//! whose sampling stage dominates are won by a wide-sharded racer;
//! instances whose repair optimum jumps between counterexamples by the
//! core-guided one; instances with phase transitions in the search by the
//! adaptive-restart one.
//!
//! The opt-in fourth entry [`PortfolioEngine::Compositional`] races the
//! dependency-driven compositional pipeline
//! ([`CompositionalEngine`](manthan3_core::CompositionalEngine)): the DQBF
//! is partitioned into output clusters that are synthesized independently
//! and composed with a whole-formula verify. Its racing dimension is
//! [`PortfolioConfig::compositional_merge_thresholds`] — one racer per
//! `max_cluster_size` cap, so instances with natural cluster structure are
//! won by a fine partition while strongly coupled ones fall back to the
//! monolithic pipeline. Reports from this racer carry the cluster count in
//! [`EngineReport::clusters`].
//!
//! # Examples
//!
//! ```
//! use manthan3_dqbf::{verify, Dqbf};
//! use manthan3_portfolio::{Portfolio, PortfolioConfig};
//!
//! let dqbf = Dqbf::paper_example();
//! let result = Portfolio::new(PortfolioConfig::default()).run(&dqbf);
//! let vector = result.vector().expect("true instance");
//! assert!(verify::check(&dqbf, vector).is_valid());
//! assert!(result.winner.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use manthan3_baselines::{ArbiterConfig, ArbiterSolver, ExpansionConfig, ExpansionSolver};
use manthan3_core::{
    Budget, CompositionalConfig, CompositionalEngine, Manthan3, Manthan3Config, OracleStats,
    RepairStrategy, RestartPolicy, SynthesisOutcome, UnknownReason,
};
use manthan3_dqbf::{verify, Dqbf, HenkinVector};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The engines a [`Portfolio`] can race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortfolioEngine {
    /// The paper's contribution (`manthan3-core`).
    Manthan3,
    /// The expansion-based baseline standing in for HQS2.
    Hqs2Like,
    /// The definition + arbiter baseline standing in for Pedant.
    PedantLike,
    /// The dependency-driven compositional pipeline
    /// ([`CompositionalEngine`]): partition the outputs into clusters,
    /// synthesize them concurrently, compose with coupled-residue repair.
    /// Opt-in — not part of [`PortfolioEngine::ALL`], because on small or
    /// strongly coupled instances it degenerates to the Manthan3 entry.
    Compositional,
}

impl PortfolioEngine {
    /// The default engines, in the order they are dispatched.
    /// [`PortfolioEngine::Compositional`] is opt-in and not listed here.
    pub const ALL: [PortfolioEngine; 3] = [
        PortfolioEngine::Manthan3,
        PortfolioEngine::Hqs2Like,
        PortfolioEngine::PedantLike,
    ];
}

impl fmt::Display for PortfolioEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PortfolioEngine::Manthan3 => "manthan3",
            PortfolioEngine::Hqs2Like => "hqs2like",
            PortfolioEngine::PedantLike => "pedantlike",
            PortfolioEngine::Compositional => "compositional",
        };
        write!(f, "{name}")
    }
}

/// Configuration of a [`Portfolio`] run.
///
/// The shared budget fields here are authoritative: the per-engine
/// configurations' own `time_budget` / `sat_conflict_budget` fields are
/// ignored, because every engine runs via its `synthesize_with_budget` entry
/// point on a clone of the portfolio's armed [`Budget`].
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// The engines to race, in dispatch order.
    pub engines: Vec<PortfolioEngine>,
    /// Maximum number of engines running concurrently (clamped to
    /// `1..=engines.len()`). With one thread the engines run sequentially in
    /// dispatch order — later engines still profit from cancellation once an
    /// earlier one has decided the instance.
    pub threads: usize,
    /// Shared wall-clock budget of the whole race (`None` = unlimited). The
    /// clock is armed when [`Portfolio::run`] starts, not when this
    /// configuration is built.
    pub time_budget: Option<Duration>,
    /// Per-call conflict budget inherited by every engine's oracle.
    pub sat_conflict_budget: Option<u64>,
    /// Total oracle-call budget *per engine* (each engine owns its oracle
    /// and counts its own calls).
    pub sat_call_budget: Option<u64>,
    /// Engine-specific settings for Manthan3 (budget fields ignored).
    pub manthan3: Manthan3Config,
    /// Sample-shard-count diversity for Manthan3 — the first step of racing
    /// *configurations* of one engine: when non-empty, every `Manthan3`
    /// entry in `engines` is replaced by one racer per listed shard count
    /// (each a clone of `manthan3` with `sample_shards` overridden), all
    /// under the same shared budget and cancellation. Empty (the default)
    /// races the single configured `manthan3` entry.
    pub manthan3_shard_counts: Vec<usize>,
    /// Repair-strategy diversity for Manthan3, next to the shard counts:
    /// when non-empty, every `Manthan3` entry fans out into one racer per
    /// listed [`RepairStrategy`] (crossed with the shard counts when both
    /// dimensions are configured) — instances whose repair optimum jumps
    /// between counterexamples are won by the core-guided racer, stable
    /// ones by the warm-started linear search. Empty (the default) races
    /// the single strategy configured in `manthan3`.
    pub manthan3_repair_strategies: Vec<RepairStrategy>,
    /// Restart-policy diversity for Manthan3, the solver-layer racing
    /// dimension: when non-empty, every `Manthan3` entry fans out into one
    /// racer per listed [`RestartPolicy`] (crossed with the shard counts and
    /// repair strategies when those dimensions are configured too). Each
    /// racer's oracle constructs all its solvers with the listed policy
    /// overriding the solver profile's default — instances with phase
    /// transitions favor the adaptive EMA racer, steadily hard ones the
    /// predictable Luby racer. Empty (the default) races the single policy
    /// of the configured solver profile.
    pub manthan3_restart_policies: Vec<RestartPolicy>,
    /// Cluster-merge-threshold diversity for the compositional engine: when
    /// non-empty, every [`PortfolioEngine::Compositional`] entry in
    /// `engines` fans out into one racer per listed `max_cluster_size` cap
    /// (each partitioning the outputs at a different granularity before
    /// synthesizing the clusters), all under the same shared budget and
    /// cancellation. Empty (the default) races a single compositional
    /// entry with the natural (uncapped) partition.
    pub compositional_merge_thresholds: Vec<usize>,
    /// Engine-specific settings for the expansion baseline (budget fields
    /// ignored).
    pub expansion: ExpansionConfig,
    /// Engine-specific settings for the arbiter baseline (budget fields
    /// ignored).
    pub arbiter: ArbiterConfig,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            engines: PortfolioEngine::ALL.to_vec(),
            threads: PortfolioEngine::ALL.len(),
            time_budget: None,
            sat_conflict_budget: None,
            sat_call_budget: None,
            manthan3: Manthan3Config::default(),
            manthan3_shard_counts: Vec::new(),
            manthan3_repair_strategies: Vec::new(),
            manthan3_restart_policies: Vec::new(),
            compositional_merge_thresholds: Vec::new(),
            expansion: ExpansionConfig::default(),
            arbiter: ArbiterConfig::default(),
        }
    }
}

impl PortfolioConfig {
    /// A configuration with a shared wall-clock budget for the whole race.
    pub fn with_time_budget(budget: Duration) -> Self {
        PortfolioConfig {
            time_budget: Some(budget),
            ..PortfolioConfig::default()
        }
    }
}

/// What one engine did during the race.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The engine this report describes.
    pub engine: PortfolioEngine,
    /// The sample-shard count this racer ran with, when the race used
    /// shard-count diversity ([`PortfolioConfig::manthan3_shard_counts`]);
    /// `None` for baselines and for the single default configuration.
    pub sample_shards: Option<usize>,
    /// The repair strategy this racer ran with, when the race used
    /// repair-strategy diversity
    /// ([`PortfolioConfig::manthan3_repair_strategies`]); `None` for
    /// baselines and for the single default configuration.
    pub repair_strategy: Option<RepairStrategy>,
    /// The restart policy this racer's solvers ran with, when the race used
    /// restart diversity ([`PortfolioConfig::manthan3_restart_policies`]);
    /// `None` for baselines and for the single default configuration.
    pub restart_policy: Option<RestartPolicy>,
    /// The number of output clusters a [`PortfolioEngine::Compositional`]
    /// racer synthesized concurrently (`Some(1)` when it delegated to the
    /// monolithic pipeline); `None` for every other engine.
    pub clusters: Option<usize>,
    /// The Padoa-informed launch order of a
    /// [`PortfolioEngine::Compositional`] racer's clusters — cluster indices,
    /// most defined outputs first (empty when the racer degenerated to the
    /// monolithic pipeline); `None` for every other engine.
    pub cluster_schedule: Option<Vec<usize>>,
    /// The engine's own verdict (losers typically report
    /// [`UnknownReason::Cancelled`]).
    pub outcome: SynthesisOutcome,
    /// Wall-clock time from race start to this engine's return.
    pub runtime: Duration,
    /// The engine's oracle-layer counters — directly comparable across
    /// engines because they all run on the shared oracle layer.
    pub oracle: OracleStats,
    /// `true` if this engine won the race (first decisive verdict).
    pub winner: bool,
}

impl EngineReport {
    /// `true` if this engine decided the instance (synthesized a verified
    /// vector or proved falsity).
    pub fn decided(&self) -> bool {
        !matches!(self.outcome, SynthesisOutcome::Unknown(_))
    }

    /// `true` if this engine was cooperatively cancelled.
    pub fn cancelled(&self) -> bool {
        matches!(
            self.outcome,
            SynthesisOutcome::Unknown(UnknownReason::Cancelled)
        )
    }
}

/// Outcome of a [`Portfolio::run`]: the winning verdict plus per-engine
/// reports.
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// The race's verdict: the winner's outcome, or an aggregated
    /// [`SynthesisOutcome::Unknown`] when no engine decided the instance.
    pub outcome: SynthesisOutcome,
    /// The engine that produced the verdict, if any was decisive.
    pub winner: Option<PortfolioEngine>,
    /// Wall-clock time of the whole race (first decisive verdict plus the
    /// few milliseconds the losers need to acknowledge cancellation).
    pub wall_time: Duration,
    /// Per-engine reports, in completion order.
    pub reports: Vec<EngineReport>,
}

impl PortfolioResult {
    /// The synthesized vector, if the race produced one.
    pub fn vector(&self) -> Option<&HenkinVector> {
        match &self.outcome {
            SynthesisOutcome::Realizable(v) => Some(v),
            _ => None,
        }
    }

    /// `true` if the race produced a (certificate-checked) Henkin vector.
    pub fn is_realizable(&self) -> bool {
        self.outcome.is_realizable()
    }

    /// The report of `engine`, if it took part in the race.
    pub fn report(&self, engine: PortfolioEngine) -> Option<&EngineReport> {
        self.reports.iter().find(|r| r.engine == engine)
    }

    /// The element-wise sum of every engine's oracle counters: the total
    /// oracle work the race performed.
    pub fn merged_oracle_stats(&self) -> OracleStats {
        // Counters add; gauges add too, so the merged value is the total
        // live footprint of every racer's last-observed solver.
        let mut merged = OracleStats::default();
        for report in &self.reports {
            merged.absorb(&report.oracle);
        }
        merged
    }
}

/// The parallel portfolio runner. See the [crate-level](self) documentation.
#[derive(Debug, Clone, Default)]
pub struct Portfolio {
    config: PortfolioConfig,
}

/// What one worker observed for one engine, before winner resolution.
struct RawReport {
    engine: PortfolioEngine,
    sample_shards: Option<usize>,
    repair_strategy: Option<RepairStrategy>,
    restart_policy: Option<RestartPolicy>,
    clusters: Option<usize>,
    cluster_schedule: Option<Vec<usize>>,
    outcome: SynthesisOutcome,
    runtime: Duration,
    oracle: OracleStats,
    /// `true` if this engine's decisive verdict claimed the race (it is the
    /// one whose cancel the other engines observed). A second engine may
    /// still finish decisively if it was already past its last poll point;
    /// its verdict agrees by soundness but it did not win.
    claimed_win: bool,
}

/// One racer of the configuration fan-out: an engine plus the
/// configuration-diversity overrides it runs with (`None` = the configured
/// base value).
#[derive(Clone, Copy)]
struct JobSpec {
    engine: PortfolioEngine,
    sample_shards: Option<usize>,
    repair_strategy: Option<RepairStrategy>,
    restart_policy: Option<RestartPolicy>,
    merge_threshold: Option<usize>,
}

impl JobSpec {
    /// A racer with no overrides: the engine as configured.
    fn bare(engine: PortfolioEngine) -> Self {
        JobSpec {
            engine,
            sample_shards: None,
            repair_strategy: None,
            restart_policy: None,
            merge_threshold: None,
        }
    }
}

impl Portfolio {
    /// Creates a runner with the given configuration.
    pub fn new(config: PortfolioConfig) -> Self {
        Portfolio { config }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Races the configured engines on `dqbf` and returns the first decisive
    /// verdict (every claimed vector is re-checked with the independent
    /// certificate checker before it may win). Blocks until every engine has
    /// returned — with cooperative cancellation that is only milliseconds
    /// after the winner.
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`] or the engine list is
    /// empty.
    pub fn run(&self, dqbf: &Dqbf) -> PortfolioResult {
        dqbf.validate().expect("well-formed DQBF");
        assert!(
            !self.config.engines.is_empty(),
            "portfolio needs at least one engine"
        );
        // Configuration racing: with shard-count, repair-strategy, and/or
        // restart-policy diversity configured, each Manthan3 entry fans out
        // into the cross product of the listed dimensions (an empty
        // dimension contributes the single configured value). Compositional
        // entries fan out over the cluster-merge thresholds instead.
        let jobs: Vec<JobSpec> = self
            .config
            .engines
            .iter()
            .flat_map(|&engine| {
                if engine == PortfolioEngine::Compositional {
                    if self.config.compositional_merge_thresholds.is_empty() {
                        return vec![JobSpec::bare(engine)];
                    }
                    return self
                        .config
                        .compositional_merge_thresholds
                        .iter()
                        .map(|&t| JobSpec {
                            merge_threshold: Some(t.max(1)),
                            ..JobSpec::bare(engine)
                        })
                        .collect();
                }
                if engine != PortfolioEngine::Manthan3
                    || (self.config.manthan3_shard_counts.is_empty()
                        && self.config.manthan3_repair_strategies.is_empty()
                        && self.config.manthan3_restart_policies.is_empty())
                {
                    return vec![JobSpec::bare(engine)];
                }
                let shards: Vec<Option<usize>> = if self.config.manthan3_shard_counts.is_empty() {
                    vec![None]
                } else {
                    self.config
                        .manthan3_shard_counts
                        .iter()
                        .map(|&k| Some(k.max(1)))
                        .collect()
                };
                let strategies: Vec<Option<RepairStrategy>> =
                    if self.config.manthan3_repair_strategies.is_empty() {
                        vec![None]
                    } else {
                        self.config
                            .manthan3_repair_strategies
                            .iter()
                            .map(|&s| Some(s))
                            .collect()
                    };
                let restarts: Vec<Option<RestartPolicy>> =
                    if self.config.manthan3_restart_policies.is_empty() {
                        vec![None]
                    } else {
                        self.config
                            .manthan3_restart_policies
                            .iter()
                            .map(|&p| Some(p))
                            .collect()
                    };
                let mut combos =
                    Vec::with_capacity(shards.len() * strategies.len() * restarts.len());
                for &k in &shards {
                    for &s in &strategies {
                        for &p in &restarts {
                            combos.push(JobSpec {
                                sample_shards: k,
                                repair_strategy: s,
                                restart_policy: p,
                                ..JobSpec::bare(engine)
                            });
                        }
                    }
                }
                combos
            })
            .collect();
        assert!(!jobs.is_empty(), "portfolio needs at least one racer");
        let threads = self.config.threads.clamp(1, jobs.len());

        // One budget for the whole race, armed now — not when the
        // configuration was built. Clones share the deadline and the token.
        let mut budget = Budget::new(
            self.config.time_budget,
            self.config.sat_conflict_budget,
            self.config.sat_call_budget,
        );
        budget.start();
        let race_start = Instant::now();

        let next_engine = AtomicUsize::new(0);
        let race_claimed = AtomicBool::new(false);
        let finished: Mutex<Vec<RawReport>> = Mutex::new(Vec::new());
        let jobs_ref = &jobs;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    // ordering: Relaxed suffices — only RMW atomicity makes
                    // job indices unique; `jobs_ref` was written before the
                    // scope spawned the workers, so its visibility comes from
                    // thread creation, not this counter. Model-checked by
                    // manthan3-conc `ticket/relaxed-fetch-add`.
                    let index = next_engine.fetch_add(1, Ordering::Relaxed);
                    let Some(&job) = jobs_ref.get(index) else {
                        break;
                    };
                    let (outcome, oracle, cluster_phase) = self.dispatch(job, dqbf, budget.clone());
                    let (clusters, cluster_schedule) = match cluster_phase {
                        Some((n, schedule)) => (Some(n), Some(schedule)),
                        None => (None, None),
                    };
                    let runtime = race_start.elapsed();
                    // Only certificate-checked vectors (or falsity proofs)
                    // may stop the race.
                    let decisive = match &outcome {
                        SynthesisOutcome::Realizable(vector) => {
                            verify::check(dqbf, vector).is_valid()
                        }
                        SynthesisOutcome::Unrealizable => true,
                        SynthesisOutcome::Unknown(_) => false,
                    };
                    // The first decisive engine to claim the race cancels the
                    // others; claiming and cancelling are tied together so a
                    // near-simultaneous second decisive finisher cannot be
                    // misattributed as the winner by report push order.
                    // ordering: Relaxed suffices — swap atomicity alone picks
                    // the single winner; the winner's report travels through
                    // the `finished` mutex and cancellation publishes via the
                    // token's own Release store. Model-checked by
                    // manthan3-conc `decisive-win/relaxed-swap`.
                    let claimed_win = decisive && !race_claimed.swap(true, Ordering::Relaxed);
                    if claimed_win {
                        budget.cancel_token().cancel();
                    }
                    finished
                        .lock()
                        .expect("no worker panicked holding the report lock")
                        .push(RawReport {
                            engine: job.engine,
                            sample_shards: job.sample_shards,
                            repair_strategy: job.repair_strategy,
                            restart_policy: job.restart_policy,
                            clusters,
                            cluster_schedule,
                            outcome,
                            runtime,
                            oracle,
                            claimed_win,
                        });
                });
            }
        });
        let wall_time = race_start.elapsed();

        let raw = finished
            .into_inner()
            .expect("no worker panicked holding the report lock");
        let winner_index = raw.iter().position(|r| r.claimed_win);
        let outcome = match winner_index {
            Some(i) => raw[i].outcome.clone(),
            None => SynthesisOutcome::Unknown(aggregate_unknown_reason(&raw)),
        };
        let winner = winner_index.map(|i| raw[i].engine);
        let reports = raw
            .into_iter()
            .map(|r| EngineReport {
                engine: r.engine,
                sample_shards: r.sample_shards,
                repair_strategy: r.repair_strategy,
                restart_policy: r.restart_policy,
                clusters: r.clusters,
                cluster_schedule: r.cluster_schedule,
                outcome: r.outcome,
                runtime: r.runtime,
                oracle: r.oracle,
                winner: r.claimed_win,
            })
            .collect();
        PortfolioResult {
            outcome,
            winner,
            wall_time,
            reports,
        }
    }

    /// Runs one racer of the fan-out under a clone of the race budget. The
    /// third element of the return is the cluster count and Padoa-informed
    /// launch schedule of a compositional run (`None` for every other
    /// engine).
    fn dispatch(
        &self,
        job: JobSpec,
        dqbf: &Dqbf,
        budget: Budget,
    ) -> (SynthesisOutcome, OracleStats, Option<(usize, Vec<usize>)>) {
        match job.engine {
            PortfolioEngine::Manthan3 => {
                let mut config = self.config.manthan3.clone();
                if let Some(shards) = job.sample_shards {
                    config.sample_shards = shards;
                }
                if let Some(strategy) = job.repair_strategy {
                    config.repair_strategy = strategy;
                }
                if let Some(policy) = job.restart_policy {
                    config.restart_policy = Some(policy);
                }
                let result = Manthan3::new(config).synthesize_with_budget(dqbf, budget);
                (result.outcome, result.stats.oracle, None)
            }
            PortfolioEngine::Hqs2Like => {
                let result = ExpansionSolver::new(self.config.expansion.clone())
                    .synthesize_with_budget(dqbf, budget);
                (result.outcome, result.oracle, None)
            }
            PortfolioEngine::PedantLike => {
                let result = ArbiterSolver::new(self.config.arbiter.clone())
                    .synthesize_with_budget(dqbf, budget);
                (result.outcome, result.oracle, None)
            }
            PortfolioEngine::Compositional => {
                // Inside a race the worker thread is the parallelism unit:
                // run the clusters sequentially on this thread instead of
                // oversubscribing the machine with a nested thread pool.
                let config = CompositionalConfig {
                    engine: self.config.manthan3.clone(),
                    max_cluster_size: job.merge_threshold,
                    compose_repairs: true,
                    threads: 1,
                };
                let result = CompositionalEngine::new(config).synthesize_with_budget(dqbf, budget);
                let clusters = result.stats.clusters.max(1);
                let schedule = result.stats.cluster_schedule;
                (
                    result.outcome,
                    result.stats.oracle,
                    Some((clusters, schedule)),
                )
            }
        }
    }
}

/// The reason to report when no engine was decisive: the most informative
/// non-cancellation reason any engine gave (the wall clock dominating), or
/// `Cancelled` if — against expectation — that is all there is.
fn aggregate_unknown_reason(reports: &[RawReport]) -> UnknownReason {
    let mut reasons = reports.iter().filter_map(|r| match r.outcome {
        SynthesisOutcome::Unknown(reason) => Some(reason),
        _ => None,
    });
    let mut best: Option<UnknownReason> = None;
    for reason in reasons.by_ref() {
        best = Some(match (best, reason) {
            (_, UnknownReason::TimeBudget) | (None, _) => reason,
            (Some(UnknownReason::Cancelled), r) if r != UnknownReason::Cancelled => r,
            (Some(b), _) => b,
        });
    }
    best.unwrap_or(UnknownReason::OracleBudget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Var;

    #[test]
    fn solves_the_paper_example_and_reports_every_engine() {
        let dqbf = Dqbf::paper_example();
        let result = Portfolio::new(PortfolioConfig::default()).run(&dqbf);
        let vector = result.vector().expect("true instance");
        assert!(verify::check(&dqbf, vector).is_valid());
        assert!(result.winner.is_some());
        assert_eq!(result.reports.len(), 3);
        assert_eq!(result.reports.iter().filter(|r| r.winner).count(), 1);
        let engines: std::collections::BTreeSet<_> =
            result.reports.iter().map(|r| r.engine).collect();
        assert_eq!(engines.len(), 3);
    }

    #[test]
    fn detects_false_instances() {
        // ∀x ∃^{x}y. (¬x) ∧ y is false.
        let (x, y) = (Var::new(0), Var::new(1));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x]);
        dqbf.add_clause([x.negative()]);
        dqbf.add_clause([y.positive()]);
        let result = Portfolio::new(PortfolioConfig::default()).run(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
        assert!(result.winner.is_some());
    }

    #[test]
    fn limitation_instance_is_won_by_a_baseline() {
        // Manthan3's repair gets stuck on the §5 xor example; the expansion
        // engine decides it — exactly the orthogonality the portfolio
        // exploits.
        let dqbf = Dqbf::xor_limitation_example();
        let result = Portfolio::new(PortfolioConfig::default()).run(&dqbf);
        let vector = result.vector().expect("true instance");
        assert!(verify::check(&dqbf, vector).is_valid());
        assert_ne!(result.winner, Some(PortfolioEngine::Manthan3));
    }

    #[test]
    fn losers_are_cancelled_and_the_session_invariant_survives() {
        let dqbf = Dqbf::paper_example();
        // Race only Manthan3 against the (on this instance much faster)
        // expansion engine repeatedly: whatever the interleaving, the
        // Manthan3 run must construct at most its two session solvers.
        for _ in 0..5 {
            let result = Portfolio::new(PortfolioConfig::default()).run(&dqbf);
            let manthan3 = result
                .report(PortfolioEngine::Manthan3)
                .expect("manthan3 raced");
            assert!(
                manthan3.oracle.sat_solvers_constructed <= 2,
                "cancellation must not leak extra solvers (got {})",
                manthan3.oracle.sat_solvers_constructed
            );
            // The repair session invariant holds under racing too: however
            // the cancellation interleaves, at most one MaxSAT hard
            // encoding is ever built, and every MaxSAT call that did run
            // was served under assumptions on it.
            assert!(
                manthan3.oracle.maxsat_hard_encodings <= 1,
                "cancellation must not leak extra MaxSAT encodings (got {})",
                manthan3.oracle.maxsat_hard_encodings
            );
            assert_eq!(
                manthan3.oracle.maxsat_incremental_calls,
                manthan3.oracle.maxsat_calls
            );
        }
    }

    #[test]
    fn single_thread_runs_engines_sequentially_with_cancellation() {
        let dqbf = Dqbf::paper_example();
        let config = PortfolioConfig {
            threads: 1,
            ..PortfolioConfig::default()
        };
        let result = Portfolio::new(config).run(&dqbf);
        assert!(result.is_realizable());
        // With one worker, completion order is dispatch order.
        let order: Vec<_> = result.reports.iter().map(|r| r.engine).collect();
        assert_eq!(order, PortfolioEngine::ALL.to_vec());
    }

    #[test]
    fn compositional_racer_joins_the_race_and_reports_clusters() {
        let dqbf = Dqbf::paper_example();
        let mut config = PortfolioConfig::default();
        config.engines.push(PortfolioEngine::Compositional);
        config.threads = config.engines.len();
        let result = Portfolio::new(config).run(&dqbf);
        let vector = result.vector().expect("true instance");
        assert!(verify::check(&dqbf, vector).is_valid());
        assert_eq!(result.reports.len(), 4, "the fourth racer is opt-in");
        let compositional = result
            .report(PortfolioEngine::Compositional)
            .expect("compositional raced");
        // The paper example decomposes into two clusters; even a cancelled
        // loser knows its partition — and the Padoa-informed launch order
        // over it (a permutation of the cluster indices).
        assert_eq!(compositional.clusters, Some(2));
        let schedule = compositional
            .cluster_schedule
            .as_ref()
            .expect("compositional racers report their launch order");
        let mut sorted = schedule.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
        assert!(result
            .reports
            .iter()
            .filter(|r| r.engine != PortfolioEngine::Compositional)
            .all(|r| r.clusters.is_none() && r.cluster_schedule.is_none()));
    }

    #[test]
    fn merge_threshold_diversity_races_multiple_compositional_configs() {
        let dqbf = Dqbf::paper_example();
        let config = PortfolioConfig {
            engines: vec![PortfolioEngine::Compositional],
            compositional_merge_thresholds: vec![1, 2],
            threads: 2,
            ..PortfolioConfig::default()
        };
        let result = Portfolio::new(config).run(&dqbf);
        assert!(result.is_realizable());
        assert_eq!(result.reports.len(), 2, "one racer per merge threshold");
        assert!(result
            .reports
            .iter()
            .all(|r| r.engine == PortfolioEngine::Compositional));
        assert!(result.reports.iter().all(|r| r.clusters.is_some()));
        assert_eq!(result.reports.iter().filter(|r| r.winner).count(), 1);
    }

    #[test]
    fn shard_count_diversity_races_multiple_manthan3_configs() {
        let dqbf = Dqbf::paper_example();
        let config = PortfolioConfig {
            engines: vec![PortfolioEngine::Manthan3],
            manthan3_shard_counts: vec![1, 2, 4],
            threads: 3,
            ..PortfolioConfig::default()
        };
        let result = Portfolio::new(config).run(&dqbf);
        assert!(result.is_realizable());
        assert_eq!(result.reports.len(), 3, "one racer per shard count");
        assert!(result
            .reports
            .iter()
            .all(|r| r.engine == PortfolioEngine::Manthan3));
        let shard_counts: std::collections::BTreeSet<_> =
            result.reports.iter().map(|r| r.sample_shards).collect();
        assert_eq!(
            shard_counts,
            [Some(1), Some(2), Some(4)].into_iter().collect()
        );
        assert_eq!(result.reports.iter().filter(|r| r.winner).count(), 1);
    }

    #[test]
    fn default_config_does_not_fan_out_and_reports_no_shard_counts() {
        let dqbf = Dqbf::paper_example();
        let result = Portfolio::new(PortfolioConfig::default()).run(&dqbf);
        assert_eq!(result.reports.len(), 3);
        assert!(result.reports.iter().all(|r| r.sample_shards.is_none()));
        assert!(result.reports.iter().all(|r| r.repair_strategy.is_none()));
        assert!(result.reports.iter().all(|r| r.restart_policy.is_none()));
    }

    #[test]
    fn repair_strategy_diversity_races_both_strategies() {
        let dqbf = Dqbf::paper_example();
        let config = PortfolioConfig {
            engines: vec![PortfolioEngine::Manthan3],
            manthan3_repair_strategies: vec![RepairStrategy::Linear, RepairStrategy::CoreGuided],
            threads: 2,
            ..PortfolioConfig::default()
        };
        let result = Portfolio::new(config).run(&dqbf);
        assert!(result.is_realizable());
        assert_eq!(result.reports.len(), 2, "one racer per repair strategy");
        assert!(result
            .reports
            .iter()
            .all(|r| r.engine == PortfolioEngine::Manthan3));
        let strategies: std::collections::BTreeSet<_> =
            result.reports.iter().map(|r| r.repair_strategy).collect();
        assert_eq!(
            strategies,
            [
                Some(RepairStrategy::Linear),
                Some(RepairStrategy::CoreGuided)
            ]
            .into_iter()
            .collect()
        );
        assert_eq!(result.reports.iter().filter(|r| r.winner).count(), 1);
    }

    #[test]
    fn restart_policy_diversity_races_both_policies() {
        let dqbf = Dqbf::paper_example();
        let config = PortfolioConfig {
            engines: vec![PortfolioEngine::Manthan3],
            manthan3_restart_policies: vec![RestartPolicy::Luby, RestartPolicy::GlucoseEma],
            threads: 2,
            ..PortfolioConfig::default()
        };
        let result = Portfolio::new(config).run(&dqbf);
        assert!(result.is_realizable());
        assert_eq!(result.reports.len(), 2, "one racer per restart policy");
        let policies: std::collections::BTreeSet<_> = result
            .reports
            .iter()
            .map(|r| r.restart_policy.map(|p| p.to_string()))
            .collect();
        assert_eq!(
            policies,
            [Some("luby".to_string()), Some("ema".to_string())]
                .into_iter()
                .collect()
        );
        assert_eq!(result.reports.iter().filter(|r| r.winner).count(), 1);
    }

    #[test]
    fn shard_and_strategy_diversity_cross_into_a_configuration_grid() {
        let dqbf = Dqbf::paper_example();
        let config = PortfolioConfig {
            engines: vec![PortfolioEngine::Manthan3, PortfolioEngine::Hqs2Like],
            manthan3_shard_counts: vec![1, 2],
            manthan3_repair_strategies: vec![RepairStrategy::Linear, RepairStrategy::CoreGuided],
            manthan3_restart_policies: vec![RestartPolicy::Luby, RestartPolicy::GlucoseEma],
            threads: 2,
            ..PortfolioConfig::default()
        };
        let result = Portfolio::new(config).run(&dqbf);
        assert!(result.is_realizable());
        // 2 shard counts × 2 strategies × 2 restart policies for Manthan3,
        // plus one baseline.
        assert_eq!(result.reports.len(), 9);
        let manthan3_jobs: std::collections::BTreeSet<_> = result
            .reports
            .iter()
            .filter(|r| r.engine == PortfolioEngine::Manthan3)
            .map(|r| {
                (
                    r.sample_shards,
                    r.repair_strategy,
                    r.restart_policy.map(|p| p.to_string()),
                )
            })
            .collect();
        assert_eq!(manthan3_jobs.len(), 8);
        // The baseline entry is not fanned out.
        let baseline = result
            .reports
            .iter()
            .find(|r| r.engine == PortfolioEngine::Hqs2Like)
            .expect("baseline raced");
        assert_eq!(baseline.sample_shards, None);
        assert_eq!(baseline.repair_strategy, None);
        assert_eq!(baseline.restart_policy, None);
    }

    #[test]
    fn merged_stats_sum_over_engines() {
        let dqbf = Dqbf::paper_example();
        let result = Portfolio::new(PortfolioConfig::default()).run(&dqbf);
        let merged = result.merged_oracle_stats();
        let sum: usize = result.reports.iter().map(|r| r.oracle.sat_calls).sum();
        assert_eq!(merged.sat_calls, sum);
        assert!(merged.sat_solvers_constructed >= 1);
    }

    #[test]
    fn aggregates_unknown_reasons_without_a_winner() {
        // A race with zero wall clock: nobody can decide anything.
        let dqbf = Dqbf::paper_example();
        let config = PortfolioConfig {
            time_budget: Some(Duration::ZERO),
            ..PortfolioConfig::default()
        };
        let result = Portfolio::new(config).run(&dqbf);
        match result.outcome {
            SynthesisOutcome::Unknown(reason) => {
                assert_ne!(reason, UnknownReason::Cancelled);
            }
            // An engine may still decide before its first budget check.
            SynthesisOutcome::Realizable(_) | SynthesisOutcome::Unrealizable => {}
        }
    }
}
