//! Portfolio determinism: however many threads race, the parallel runner's
//! verdict on generated suite instances must agree with the sequential
//! per-engine outcomes — the winner is an engine that also solves the
//! instance standalone, every claimed vector passes the independent
//! certificate check, and the solved set equals the sequential VBS solved
//! set.
//!
//! The engines are deterministic under unlimited wall clock (seeded RNGs,
//! structural budgets only), so cancellation is the only racing effect: a
//! decisive engine can only be preempted by another decisive engine, whose
//! verdict — by soundness — agrees.

use manthan3_baselines::{ArbiterConfig, ArbiterSolver, ExpansionConfig, ExpansionSolver};
use manthan3_core::{
    CompositionalConfig, CompositionalEngine, Manthan3, Manthan3Config, SynthesisOutcome,
};
use manthan3_dqbf::verify;
use manthan3_gen::suite::suite;
use manthan3_gen::Instance;
use manthan3_portfolio::{Portfolio, PortfolioConfig, PortfolioEngine};

/// Engine settings shared by the sequential reference runs and the races:
/// no wall clock (determinism), tight structural budgets (debug-build test
/// speed).
fn manthan3_config() -> Manthan3Config {
    Manthan3Config {
        num_samples: 60,
        max_repair_iterations: 40,
        ..Manthan3Config::fast()
    }
}

fn expansion_config() -> ExpansionConfig {
    ExpansionConfig {
        max_universals: 10,
        max_copies: 1024,
        max_ground_clauses: 50_000,
        ..ExpansionConfig::default()
    }
}

fn arbiter_config() -> ArbiterConfig {
    ArbiterConfig {
        max_iterations: 80,
        ..ArbiterConfig::default()
    }
}

fn portfolio_config(threads: usize) -> PortfolioConfig {
    PortfolioConfig {
        threads,
        manthan3: manthan3_config(),
        expansion: expansion_config(),
        arbiter: arbiter_config(),
        ..PortfolioConfig::default()
    }
}

/// A cross-family sample of the generated suite, kept small enough for
/// debug-build test runs (the full-suite comparison runs in release mode in
/// `benches/synthesis.rs`).
fn instances() -> Vec<Instance> {
    // The suite's first 30 entries are its three smallest size steps; every
    // family appears within each 10-instance step.
    suite(7, 1).into_iter().take(30).step_by(4).collect()
}

/// The sequential reference: each engine standalone, unlimited wall clock.
fn sequential_outcome(engine: PortfolioEngine, instance: &Instance) -> SynthesisOutcome {
    match engine {
        PortfolioEngine::Manthan3 => {
            Manthan3::new(manthan3_config())
                .synthesize(&instance.dqbf)
                .outcome
        }
        PortfolioEngine::Hqs2Like => {
            ExpansionSolver::new(expansion_config())
                .synthesize(&instance.dqbf)
                .outcome
        }
        PortfolioEngine::PedantLike => {
            ArbiterSolver::new(arbiter_config())
                .synthesize(&instance.dqbf)
                .outcome
        }
        PortfolioEngine::Compositional => {
            let config = CompositionalConfig {
                engine: manthan3_config(),
                ..CompositionalConfig::default()
            };
            CompositionalEngine::new(config)
                .synthesize(&instance.dqbf)
                .outcome
        }
    }
}

fn synthesized(dqbf: &manthan3_dqbf::Dqbf, outcome: &SynthesisOutcome) -> bool {
    matches!(outcome, SynthesisOutcome::Realizable(v) if verify::check(dqbf, v).is_valid())
}

#[test]
fn parallel_outcomes_match_sequential_outcomes_for_1_2_4_threads() {
    let instances = instances();
    assert!(instances.len() >= 8, "suite sample unexpectedly small");
    let mut vbs_solved = 0usize;
    let mut race_solved = 0usize;

    for instance in &instances {
        let sequential: Vec<(PortfolioEngine, SynthesisOutcome)> = PortfolioEngine::ALL
            .iter()
            .map(|&e| (e, sequential_outcome(e, instance)))
            .collect();
        let seq_solved = sequential
            .iter()
            .any(|(_, o)| synthesized(&instance.dqbf, o));
        let seq_unrealizable = sequential
            .iter()
            .any(|(_, o)| matches!(o, SynthesisOutcome::Unrealizable));
        // Sanity: sound engines never disagree on decisive verdicts.
        assert!(
            !(seq_solved && seq_unrealizable),
            "{}: engines contradict each other",
            instance.name
        );

        if seq_solved {
            vbs_solved += 1;
        }

        for threads in [1, 2, 4] {
            let result = Portfolio::new(portfolio_config(threads)).run(&instance.dqbf);
            if threads == 4 && synthesized(&instance.dqbf, &result.outcome) {
                race_solved += 1;
            }
            match &result.outcome {
                SynthesisOutcome::Realizable(vector) => {
                    assert!(
                        verify::check(&instance.dqbf, vector).is_valid(),
                        "{} ({threads} threads): unverified vector won the race",
                        instance.name
                    );
                    assert!(
                        seq_solved,
                        "{} ({threads} threads): race solved an instance no engine \
                         solves sequentially",
                        instance.name
                    );
                    // The winner is an engine that also solves it standalone.
                    let winner = result.winner.expect("realizable race has a winner");
                    let (_, seq) = sequential
                        .iter()
                        .find(|(e, _)| *e == winner)
                        .expect("winner took part");
                    assert!(
                        synthesized(&instance.dqbf, seq),
                        "{} ({threads} threads): winner {winner} does not solve the \
                         instance sequentially",
                        instance.name
                    );
                }
                SynthesisOutcome::Unrealizable => {
                    assert!(
                        seq_unrealizable,
                        "{} ({threads} threads): race proved falsity no engine proves \
                         sequentially",
                        instance.name
                    );
                }
                SynthesisOutcome::Unknown(_) => {
                    assert!(
                        !seq_solved && !seq_unrealizable,
                        "{} ({threads} threads): race lost a verdict some engine finds \
                         sequentially",
                        instance.name
                    );
                }
            }
            // Ground truth (when the generator knows it) is never violated.
            if let Some(expected) = instance.expected {
                match &result.outcome {
                    SynthesisOutcome::Realizable(_) => assert!(expected, "{}", instance.name),
                    SynthesisOutcome::Unrealizable => assert!(!expected, "{}", instance.name),
                    SynthesisOutcome::Unknown(_) => {}
                }
            }
        }
    }

    // The race never solves fewer instances than the sequential VBS.
    assert!(
        race_solved >= vbs_solved,
        "race solved {race_solved}, sequential VBS {vbs_solved}"
    );
    assert!(vbs_solved > 0, "sample exercised no solvable instance");
}
