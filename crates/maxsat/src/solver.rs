use crate::Totalizer;
use manthan3_cnf::{Assignment, Clause, Cnf, Lit, Var};
use manthan3_sat::{SolveResult, Solver, SolverConfig, SolverStats};

/// Identifier of a soft clause, returned by [`MaxSatSolver::add_soft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SoftId(usize);

impl SoftId {
    /// Index of the soft clause in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Outcome of a [`MaxSatSolver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaxSatResult {
    /// An optimal solution was found; `cost` is the total weight of violated
    /// soft clauses.
    Optimum {
        /// Total weight of violated soft clauses in the optimum.
        cost: u64,
    },
    /// The hard clauses alone (together with the assumptions, for
    /// [`MaxSatSolver::solve_under_assumptions`]) are unsatisfiable.
    HardUnsat,
    /// The conflict budget was exhausted or the solve was cancelled.
    Unknown,
}

#[derive(Debug, Clone)]
struct SoftClause {
    lits: Vec<Lit>,
    weight: u64,
    relax: Lit,
}

/// A weighted partial MaxSAT solver.
///
/// See the [crate-level documentation](crate) for the algorithm and an
/// example.
#[derive(Debug, Clone)]
pub struct MaxSatSolver {
    solver: Solver,
    softs: Vec<SoftClause>,
    model: Option<Assignment>,
    /// Totalizer over the (weight-replicated) relaxation literals, encoded
    /// lazily on the first bounded search and kept across solve calls;
    /// invalidated when a new soft clause arrives. Without the cache every
    /// solve call re-encoded a fresh totalizer into the same solver, so a
    /// long-lived instance grew by the full cardinality network per call.
    totalizer: Option<Totalizer>,
    /// Optimum cost of the previous solve call, used to warm-start the next
    /// bound search: incremental callers re-solve the same objective under
    /// slightly different assumptions, so the optimum moves little between
    /// calls and the search usually finishes within a couple of bound
    /// probes instead of a full linear climb.
    last_optimum: Option<u64>,
}

impl Default for MaxSatSolver {
    fn default() -> Self {
        MaxSatSolver::new()
    }
}

impl MaxSatSolver {
    /// Creates an empty MaxSAT instance.
    pub fn new() -> Self {
        MaxSatSolver {
            solver: Solver::new(),
            softs: Vec::new(),
            model: None,
            totalizer: None,
            last_optimum: None,
        }
    }

    /// Creates an instance whose SAT oracle calls are limited to
    /// `max_conflicts` conflicts each. When the budget is exhausted,
    /// [`MaxSatSolver::solve`] returns [`MaxSatResult::Unknown`].
    pub fn with_conflict_budget(max_conflicts: u64) -> Self {
        MaxSatSolver::with_config(SolverConfig::budgeted(max_conflicts))
    }

    /// Creates an instance whose internal SAT solver uses `config` — the way
    /// to pass a conflict budget *and* a cancellation token in one go (as the
    /// shared oracle layer does).
    pub fn with_config(config: SolverConfig) -> Self {
        MaxSatSolver {
            solver: Solver::with_config(config),
            softs: Vec::new(),
            model: None,
            totalizer: None,
            last_optimum: None,
        }
    }

    /// Runtime statistics of the internal SAT solver (conflicts, decisions,
    /// …), accumulated across every solve call of this instance.
    pub fn sat_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Adds a hard clause.
    pub fn add_hard<C>(&mut self, clause: C)
    where
        C: IntoIterator<Item = Lit>,
    {
        self.solver.add_clause(clause);
    }

    /// Adds every clause of `cnf` as a hard clause.
    pub fn add_hard_cnf(&mut self, cnf: &Cnf) {
        self.solver.add_cnf(cnf);
    }

    /// Adds a soft clause with the given positive weight and returns its id.
    ///
    /// Invalidates the cached totalizer: the next bounded search re-encodes
    /// the cardinality network over the enlarged relaxation set.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn add_soft<C>(&mut self, clause: C, weight: u64) -> SoftId
    where
        C: IntoIterator<Item = Lit>,
    {
        assert!(weight > 0, "soft clauses must have positive weight");
        let lits: Vec<Lit> = clause.into_iter().collect();
        for l in &lits {
            self.solver.ensure_vars(l.var().index() + 1);
        }
        let relax = self.solver.new_var().positive();
        let mut relaxed = lits.clone();
        relaxed.push(relax);
        self.solver.add_clause(relaxed);
        let id = SoftId(self.softs.len());
        self.softs.push(SoftClause {
            lits,
            weight,
            relax,
        });
        self.totalizer = None;
        self.last_optimum = None;
        id
    }

    /// Allocates a fresh variable in the underlying solver. Incremental
    /// callers use this for auxiliary structure (e.g. assumption-pinned
    /// target variables) that must not collide with problem variables.
    pub fn new_var(&mut self) -> Var {
        self.solver.new_var()
    }

    /// Number of problem (non-learnt) clauses currently held by the
    /// underlying solver — the observable the repair-session hygiene
    /// watchdog asserts on.
    pub fn num_solver_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// Runs a maintenance pass on the underlying solver: halves the learnt
    /// database (resetting its growth threshold) and compacts away clauses
    /// satisfied at level 0. Long-lived incremental instances (one MaxSAT
    /// solver across hundreds of `solve_under_assumptions` calls) call this
    /// periodically so the solver state stays bounded, mirroring
    /// `VerifySession`'s error-solver maintenance.
    pub fn maintain(&mut self) {
        self.solver.reduce_learnt_db();
        self.solver.simplify();
    }

    /// Number of soft clauses.
    pub fn num_softs(&self) -> usize {
        self.softs.len()
    }

    /// Total weight of all soft clauses.
    pub fn total_weight(&self) -> u64 {
        self.softs.iter().map(|s| s.weight).sum()
    }

    /// Finds an assignment satisfying all hard clauses that minimizes the
    /// total weight of violated soft clauses.
    pub fn solve(&mut self) -> MaxSatResult {
        self.solve_under_assumptions(&[])
    }

    /// Like [`MaxSatSolver::solve`], but every internal SAT query is made
    /// under the given assumption literals, so the optimum is taken over the
    /// models of `hard ∧ assumptions`.
    ///
    /// This is the incremental entry point: a caller that would otherwise
    /// rebuild the instance per iteration (hard units that change every
    /// round, e.g. the `σ[X]`/`σ[Y']` valuations of a repair loop) instead
    /// encodes the invariant structure once and retracts the per-iteration
    /// units by simply not assuming them on the next call. The underlying
    /// CDCL solver, its learnt clauses, and the cached totalizer all survive
    /// between calls.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> MaxSatResult {
        self.model = None;
        // Is the hard part satisfiable at all (under the assumptions)?
        match self.solver.solve_with_assumptions(assumptions) {
            SolveResult::Unsat => return MaxSatResult::HardUnsat,
            SolveResult::Unknown => return MaxSatResult::Unknown,
            SolveResult::Sat => {}
        }
        if self.softs.is_empty() {
            self.model = Some(self.solver.model());
            return MaxSatResult::Optimum { cost: 0 };
        }
        // Optimistic check: can every soft clause be satisfied?
        let mut optimistic: Vec<Lit> = assumptions.to_vec();
        optimistic.extend(self.softs.iter().map(|s| !s.relax));
        match self.solver.solve_with_assumptions(&optimistic) {
            SolveResult::Sat => {
                self.model = Some(self.solver.model());
                return MaxSatResult::Optimum { cost: 0 };
            }
            SolveResult::Unknown => return MaxSatResult::Unknown,
            SolveResult::Unsat => {}
        }
        // Bound search over the violated weight on the persistent totalizer,
        // warm-started at the previous call's optimum: walk the bound up
        // from there while UNSAT, then tighten downward from the first
        // model's true cost until the bound below it is refuted. With a
        // stable objective the whole search is typically one or two probes.
        let cancel = self.solver.config().cancel.clone();
        let total = self.totalizer().len() as u64;
        // probe(k) asks for a model with at most `k` violated (weight
        // units of) softs: `¬outputs[k]` forbids `k + 1` true relaxations.
        let mut bounded: Vec<Lit> = Vec::with_capacity(assumptions.len() + 1);
        let probe = |this: &mut Self, k: u64, bounded: &mut Vec<Lit>| {
            bounded.clear();
            bounded.extend_from_slice(assumptions);
            bounded.push(!this.totalizer().outputs()[k as usize]);
            this.solver.solve_with_assumptions(bounded)
        };
        // Phase 1: find any bounded model, walking the bound up from the
        // warm start while UNSAT. Bounds 1..=total-1 are probeable; once
        // `≤ total - 1` is refuted every soft clause must be violated and
        // the unrestricted solve below is already optimal.
        let mut k = self.last_optimum.unwrap_or(1).clamp(1, total.max(2) - 1);
        // Highest bound known refuted: 0 from the failed optimistic check;
        // phase 1's UNSAT answers raise it, phase 2 stops against it.
        let mut refuted = 0u64;
        let mut cost = loop {
            if k >= total {
                return match self.solver.solve_with_assumptions(assumptions) {
                    SolveResult::Sat => {
                        self.model = Some(self.solver.model());
                        let cost = self.cost_of_current_model();
                        self.last_optimum = Some(cost);
                        MaxSatResult::Optimum { cost }
                    }
                    SolveResult::Unknown => MaxSatResult::Unknown,
                    SolveResult::Unsat => MaxSatResult::HardUnsat,
                };
            }
            // Poll cancellation between bound-tightening steps: each step is
            // a full SAT call, so a cancelled portfolio loser must not start
            // the next probe (the CDCL loop's own poll only covers the step
            // already in flight).
            if cancel.as_ref().is_some_and(|token| token.is_cancelled()) {
                self.model = None;
                return MaxSatResult::Unknown;
            }
            match probe(self, k, &mut bounded) {
                SolveResult::Sat => {
                    self.model = Some(self.solver.model());
                    break self.cost_of_current_model();
                }
                SolveResult::Unknown => {
                    self.model = None;
                    return MaxSatResult::Unknown;
                }
                SolveResult::Unsat => {
                    refuted = k;
                    k += 1;
                }
            }
        };
        // Phase 2: tighten downward until the next-lower bound is refuted
        // (or meets a bound phase 1 already refuted). An Unknown exit — a
        // budgeted-out or cancelled probe — clears the model found so far:
        // it is not a proven optimum, and [`MaxSatSolver::model`] documents
        // that nothing is available after a non-Optimum outcome.
        while cost > refuted + 1 {
            if cancel.as_ref().is_some_and(|token| token.is_cancelled()) {
                self.model = None;
                return MaxSatResult::Unknown;
            }
            match probe(self, cost - 1, &mut bounded) {
                SolveResult::Sat => {
                    self.model = Some(self.solver.model());
                    cost = self.cost_of_current_model();
                }
                SolveResult::Unknown => {
                    self.model = None;
                    return MaxSatResult::Unknown;
                }
                SolveResult::Unsat => break,
            }
        }
        self.last_optimum = Some(cost);
        MaxSatResult::Optimum { cost }
    }

    /// The persistent totalizer over the weight-replicated relaxation
    /// literals, encoded on first use and reused by every later bounded
    /// search (re-encoded only after [`MaxSatSolver::add_soft`] grows the
    /// relaxation set).
    fn totalizer(&mut self) -> &Totalizer {
        if self.totalizer.is_none() {
            let mut counters: Vec<Lit> = Vec::new();
            for s in &self.softs {
                for _ in 0..s.weight {
                    counters.push(s.relax);
                }
            }
            self.totalizer = Some(Totalizer::encode(&mut self.solver, &counters));
        }
        self.totalizer.as_ref().expect("totalizer just encoded")
    }

    fn cost_of_current_model(&self) -> u64 {
        let model = self.model.as_ref().expect("model available");
        self.softs
            .iter()
            .filter(|s| !Clause::new(s.lits.clone()).eval(model))
            .map(|s| s.weight)
            .sum()
    }

    /// Returns the model of the last [`MaxSatResult::Optimum`] outcome.
    ///
    /// # Panics
    ///
    /// Panics if the last solve call did not produce an optimum.
    pub fn model(&self) -> Assignment {
        self.model.clone().expect("no MaxSAT model available")
    }

    /// Returns the soft clauses violated by the last optimum's model, in
    /// insertion order.
    pub fn violated_softs(&self) -> Vec<SoftId> {
        let model = self.model.as_ref().expect("no MaxSAT model available");
        self.softs
            .iter()
            .enumerate()
            .filter(|(_, s)| !Clause::new(s.lits.clone()).eval(model))
            .map(|(i, _)| SoftId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Var;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn all_softs_satisfiable() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        s.add_soft([lit(1)], 1);
        s.add_soft([lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 0 });
        assert!(s.violated_softs().is_empty());
    }

    #[test]
    fn must_violate_one_soft() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]); // at least one true
        let s1 = s.add_soft([lit(-1)], 1);
        let s2 = s.add_soft([lit(-2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        let violated = s.violated_softs();
        assert_eq!(violated.len(), 1);
        assert!(violated[0] == s1 || violated[0] == s2);
    }

    #[test]
    fn weights_steer_the_optimum() {
        // Hard: exactly one of x1, x2 true. Soft: prefer x1 (weight 5) and
        // x2 (weight 1): the optimum keeps x1 and violates the cheap soft.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        s.add_hard([lit(-1), lit(-2)]);
        s.add_soft([lit(1)], 5);
        let cheap = s.add_soft([lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        assert_eq!(s.violated_softs(), vec![cheap]);
        assert!(s.model().value(Var::new(0)));
    }

    #[test]
    fn hard_unsat_detected() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1)]);
        s.add_hard([lit(-1)]);
        s.add_soft([lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::HardUnsat);
    }

    #[test]
    fn all_softs_violated() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1)]);
        s.add_hard([lit(2)]);
        s.add_soft([lit(-1)], 1);
        s.add_soft([lit(-2)], 2);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 3 });
        assert_eq!(s.violated_softs().len(), 2);
    }

    #[test]
    fn no_softs_is_plain_sat() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 0 });
        let _ = s.model();
    }

    #[test]
    fn multi_literal_soft_clauses() {
        // Hard: ¬x1 ∧ ¬x2. Soft: (x1 ∨ x2) cannot be satisfied.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(-1)]);
        s.add_hard([lit(-2)]);
        let broken = s.add_soft([lit(1), lit(2)], 3);
        let fine = s.add_soft([lit(-1), lit(2)], 2);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 3 });
        assert_eq!(s.violated_softs(), vec![broken]);
        let _ = fine;
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_rejected() {
        let mut s = MaxSatSolver::new();
        s.add_soft([lit(1)], 0);
    }

    #[test]
    fn assumptions_pin_the_optimum_and_retract_between_calls() {
        // Hard: x1 ∨ x2. Softs prefer ¬x1 and ¬x2. Under the assumption x1
        // the optimum must violate the ¬x1 soft; under x2 the other one; with
        // no assumptions the cost-1 optimum is free to pick either.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        let s1 = s.add_soft([lit(-1)], 1);
        let s2 = s.add_soft([lit(-2)], 1);
        assert_eq!(
            s.solve_under_assumptions(&[lit(1), lit(-2)]),
            MaxSatResult::Optimum { cost: 1 }
        );
        assert_eq!(s.violated_softs(), vec![s1]);
        // The previous call's units are retracted, not persisted.
        assert_eq!(
            s.solve_under_assumptions(&[lit(2), lit(-1)]),
            MaxSatResult::Optimum { cost: 1 }
        );
        assert_eq!(s.violated_softs(), vec![s2]);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
    }

    #[test]
    fn contradictory_assumptions_are_hard_unsat() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1)]);
        s.add_soft([lit(2)], 1);
        assert_eq!(
            s.solve_under_assumptions(&[lit(-1)]),
            MaxSatResult::HardUnsat
        );
        // The instance itself is untouched.
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 0 });
    }

    #[test]
    fn totalizer_is_encoded_once_across_repeated_solves() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        s.add_soft([lit(-1)], 2);
        s.add_soft([lit(-2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        let vars_after_first = s.solver.num_vars();
        let clauses_after_first = s.num_solver_clauses();
        for _ in 0..20 {
            assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        }
        // Re-solving must not re-encode the cardinality network.
        assert_eq!(s.solver.num_vars(), vars_after_first);
        assert_eq!(s.num_solver_clauses(), clauses_after_first);
        // A new soft clause invalidates the cache; exactly one re-encoding.
        s.add_soft([lit(1), lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        let vars_after_growth = s.solver.num_vars();
        assert!(vars_after_growth > vars_after_first);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        assert_eq!(s.solver.num_vars(), vars_after_growth);
    }

    #[test]
    fn cancellation_aborts_between_bound_steps() {
        use manthan3_sat::{CancelToken, SolverConfig};
        let token = CancelToken::new();
        let mut s = MaxSatSolver::with_config(SolverConfig::default().with_cancel(token.clone()));
        s.add_hard([lit(1)]);
        s.add_soft([lit(-1)], 3);
        token.cancel();
        assert_eq!(s.solve(), MaxSatResult::Unknown);
    }

    #[test]
    fn soft_free_instances_report_cost_zero_under_assumptions() {
        // No soft clauses at all (a repair session over an existential-free
        // DQBF): the optimum is trivially 0, a model is available, and the
        // violated-soft set is empty — no panic on either accessor.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        assert_eq!(
            s.solve_under_assumptions(&[lit(1)]),
            MaxSatResult::Optimum { cost: 0 }
        );
        assert!(s.violated_softs().is_empty());
        assert!(s.model().value(Var::new(0)));
    }

    #[test]
    #[should_panic(expected = "no MaxSAT model available")]
    fn unknown_outcomes_leave_no_stale_model() {
        // First solve finds an optimum (model stored); a cancelled re-solve
        // returns Unknown and must clear it, so reading the model afterwards
        // panics as documented instead of yielding a stale, unproven one.
        use manthan3_sat::{CancelToken, SolverConfig};
        let token = CancelToken::new();
        let mut s = MaxSatSolver::with_config(SolverConfig::default().with_cancel(token.clone()));
        s.add_hard([lit(1), lit(2)]);
        s.add_soft([lit(-1)], 1);
        s.add_soft([lit(-2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        let _ = s.model();
        token.cancel();
        assert_eq!(s.solve(), MaxSatResult::Unknown);
        let _ = s.violated_softs(); // must panic
    }

    #[test]
    fn maintain_keeps_the_instance_correct() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        s.add_hard([lit(-1), lit(-2)]);
        s.add_soft([lit(1)], 5);
        let cheap = s.add_soft([lit(2)], 1);
        for _ in 0..10 {
            assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
            assert_eq!(s.violated_softs(), vec![cheap]);
            s.maintain();
        }
    }

    /// Reference check against brute force on random small instances.
    #[test]
    fn agrees_with_brute_force() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        for round in 0..30 {
            let num_vars = 4;
            let mut hard = Cnf::new(num_vars);
            for _ in 0..rng.gen_range(1..5) {
                let clause: Vec<Lit> = (0..rng.gen_range(1..3))
                    .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                    .collect();
                hard.add_clause(clause);
            }
            let softs: Vec<(Vec<Lit>, u64)> = (0..rng.gen_range(1..5))
                .map(|_| {
                    let clause: Vec<Lit> = (0..rng.gen_range(1..3))
                        .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                        .collect();
                    (clause, rng.gen_range(1..4) as u64)
                })
                .collect();

            // Brute-force optimum.
            let mut best: Option<u64> = None;
            for bits in 0..1u32 << num_vars {
                let a =
                    Assignment::from_values((0..num_vars).map(|i| bits >> i & 1 == 1).collect());
                if !hard.eval(&a) {
                    continue;
                }
                let cost: u64 = softs
                    .iter()
                    .filter(|(c, _)| !Clause::new(c.clone()).eval(&a))
                    .map(|(_, w)| *w)
                    .sum();
                best = Some(best.map_or(cost, |b: u64| b.min(cost)));
            }

            let mut solver = MaxSatSolver::new();
            solver.add_hard_cnf(&hard);
            for (c, w) in &softs {
                solver.add_soft(c.clone(), *w);
            }
            let result = solver.solve();
            match best {
                None => assert_eq!(result, MaxSatResult::HardUnsat, "round {round}"),
                Some(opt) => {
                    assert_eq!(result, MaxSatResult::Optimum { cost: opt }, "round {round}")
                }
            }
        }
    }
}
