use crate::Totalizer;
use manthan3_cnf::{Assignment, Clause, Cnf, Lit};
use manthan3_sat::{SolveResult, Solver, SolverConfig, SolverStats};

/// Identifier of a soft clause, returned by [`MaxSatSolver::add_soft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SoftId(usize);

impl SoftId {
    /// Index of the soft clause in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Outcome of a [`MaxSatSolver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaxSatResult {
    /// An optimal solution was found; `cost` is the total weight of violated
    /// soft clauses.
    Optimum {
        /// Total weight of violated soft clauses in the optimum.
        cost: u64,
    },
    /// The hard clauses alone are unsatisfiable.
    HardUnsat,
    /// The conflict budget was exhausted.
    Unknown,
}

#[derive(Debug, Clone)]
struct SoftClause {
    lits: Vec<Lit>,
    weight: u64,
    relax: Lit,
}

/// A weighted partial MaxSAT solver.
///
/// See the [crate-level documentation](crate) for the algorithm and an
/// example.
#[derive(Debug, Clone)]
pub struct MaxSatSolver {
    solver: Solver,
    softs: Vec<SoftClause>,
    model: Option<Assignment>,
}

impl Default for MaxSatSolver {
    fn default() -> Self {
        MaxSatSolver::new()
    }
}

impl MaxSatSolver {
    /// Creates an empty MaxSAT instance.
    pub fn new() -> Self {
        MaxSatSolver {
            solver: Solver::new(),
            softs: Vec::new(),
            model: None,
        }
    }

    /// Creates an instance whose SAT oracle calls are limited to
    /// `max_conflicts` conflicts each. When the budget is exhausted,
    /// [`MaxSatSolver::solve`] returns [`MaxSatResult::Unknown`].
    pub fn with_conflict_budget(max_conflicts: u64) -> Self {
        MaxSatSolver::with_config(SolverConfig::budgeted(max_conflicts))
    }

    /// Creates an instance whose internal SAT solver uses `config` — the way
    /// to pass a conflict budget *and* a cancellation token in one go (as the
    /// shared oracle layer does).
    pub fn with_config(config: SolverConfig) -> Self {
        MaxSatSolver {
            solver: Solver::with_config(config),
            softs: Vec::new(),
            model: None,
        }
    }

    /// Runtime statistics of the internal SAT solver (conflicts, decisions,
    /// …), accumulated across every solve call of this instance.
    pub fn sat_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Adds a hard clause.
    pub fn add_hard<C>(&mut self, clause: C)
    where
        C: IntoIterator<Item = Lit>,
    {
        self.solver.add_clause(clause);
    }

    /// Adds every clause of `cnf` as a hard clause.
    pub fn add_hard_cnf(&mut self, cnf: &Cnf) {
        self.solver.add_cnf(cnf);
    }

    /// Adds a soft clause with the given positive weight and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn add_soft<C>(&mut self, clause: C, weight: u64) -> SoftId
    where
        C: IntoIterator<Item = Lit>,
    {
        assert!(weight > 0, "soft clauses must have positive weight");
        let lits: Vec<Lit> = clause.into_iter().collect();
        for l in &lits {
            self.solver.ensure_vars(l.var().index() + 1);
        }
        let relax = self.solver.new_var().positive();
        let mut relaxed = lits.clone();
        relaxed.push(relax);
        self.solver.add_clause(relaxed);
        let id = SoftId(self.softs.len());
        self.softs.push(SoftClause {
            lits,
            weight,
            relax,
        });
        id
    }

    /// Number of soft clauses.
    pub fn num_softs(&self) -> usize {
        self.softs.len()
    }

    /// Total weight of all soft clauses.
    pub fn total_weight(&self) -> u64 {
        self.softs.iter().map(|s| s.weight).sum()
    }

    /// Finds an assignment satisfying all hard clauses that minimizes the
    /// total weight of violated soft clauses.
    pub fn solve(&mut self) -> MaxSatResult {
        self.model = None;
        // Is the hard part satisfiable at all?
        match self.solver.solve() {
            SolveResult::Unsat => return MaxSatResult::HardUnsat,
            SolveResult::Unknown => return MaxSatResult::Unknown,
            SolveResult::Sat => {}
        }
        if self.softs.is_empty() {
            self.model = Some(self.solver.model());
            return MaxSatResult::Optimum { cost: 0 };
        }
        // Optimistic check: can every soft clause be satisfied?
        let all_relaxed_off: Vec<Lit> = self.softs.iter().map(|s| !s.relax).collect();
        match self.solver.solve_with_assumptions(&all_relaxed_off) {
            SolveResult::Sat => {
                self.model = Some(self.solver.model());
                return MaxSatResult::Optimum { cost: 0 };
            }
            SolveResult::Unknown => return MaxSatResult::Unknown,
            SolveResult::Unsat => {}
        }
        // Linear UNSAT→SAT search over the violated weight, using a totalizer
        // over weight-replicated relaxation literals.
        let mut counters: Vec<Lit> = Vec::new();
        for s in &self.softs {
            for _ in 0..s.weight {
                counters.push(s.relax);
            }
        }
        let totalizer = Totalizer::encode(&mut self.solver, &counters);
        let total = counters.len() as u64;
        for bound in 1..total {
            let assumption = !totalizer.outputs()[bound as usize];
            match self.solver.solve_with_assumptions(&[assumption]) {
                SolveResult::Sat => {
                    self.model = Some(self.solver.model());
                    return MaxSatResult::Optimum {
                        cost: self.cost_of_current_model(),
                    };
                }
                SolveResult::Unknown => return MaxSatResult::Unknown,
                SolveResult::Unsat => {}
            }
        }
        // Every soft clause may have to be violated.
        match self.solver.solve() {
            SolveResult::Sat => {
                self.model = Some(self.solver.model());
                MaxSatResult::Optimum {
                    cost: self.cost_of_current_model(),
                }
            }
            SolveResult::Unknown => MaxSatResult::Unknown,
            SolveResult::Unsat => MaxSatResult::HardUnsat,
        }
    }

    fn cost_of_current_model(&self) -> u64 {
        let model = self.model.as_ref().expect("model available");
        self.softs
            .iter()
            .filter(|s| !Clause::new(s.lits.clone()).eval(model))
            .map(|s| s.weight)
            .sum()
    }

    /// Returns the model of the last [`MaxSatResult::Optimum`] outcome.
    ///
    /// # Panics
    ///
    /// Panics if the last solve call did not produce an optimum.
    pub fn model(&self) -> Assignment {
        self.model.clone().expect("no MaxSAT model available")
    }

    /// Returns the soft clauses violated by the last optimum's model, in
    /// insertion order.
    pub fn violated_softs(&self) -> Vec<SoftId> {
        let model = self.model.as_ref().expect("no MaxSAT model available");
        self.softs
            .iter()
            .enumerate()
            .filter(|(_, s)| !Clause::new(s.lits.clone()).eval(model))
            .map(|(i, _)| SoftId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Var;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn all_softs_satisfiable() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        s.add_soft([lit(1)], 1);
        s.add_soft([lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 0 });
        assert!(s.violated_softs().is_empty());
    }

    #[test]
    fn must_violate_one_soft() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]); // at least one true
        let s1 = s.add_soft([lit(-1)], 1);
        let s2 = s.add_soft([lit(-2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        let violated = s.violated_softs();
        assert_eq!(violated.len(), 1);
        assert!(violated[0] == s1 || violated[0] == s2);
    }

    #[test]
    fn weights_steer_the_optimum() {
        // Hard: exactly one of x1, x2 true. Soft: prefer x1 (weight 5) and
        // x2 (weight 1): the optimum keeps x1 and violates the cheap soft.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        s.add_hard([lit(-1), lit(-2)]);
        s.add_soft([lit(1)], 5);
        let cheap = s.add_soft([lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        assert_eq!(s.violated_softs(), vec![cheap]);
        assert!(s.model().value(Var::new(0)));
    }

    #[test]
    fn hard_unsat_detected() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1)]);
        s.add_hard([lit(-1)]);
        s.add_soft([lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::HardUnsat);
    }

    #[test]
    fn all_softs_violated() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1)]);
        s.add_hard([lit(2)]);
        s.add_soft([lit(-1)], 1);
        s.add_soft([lit(-2)], 2);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 3 });
        assert_eq!(s.violated_softs().len(), 2);
    }

    #[test]
    fn no_softs_is_plain_sat() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 0 });
        let _ = s.model();
    }

    #[test]
    fn multi_literal_soft_clauses() {
        // Hard: ¬x1 ∧ ¬x2. Soft: (x1 ∨ x2) cannot be satisfied.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(-1)]);
        s.add_hard([lit(-2)]);
        let broken = s.add_soft([lit(1), lit(2)], 3);
        let fine = s.add_soft([lit(-1), lit(2)], 2);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 3 });
        assert_eq!(s.violated_softs(), vec![broken]);
        let _ = fine;
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_rejected() {
        let mut s = MaxSatSolver::new();
        s.add_soft([lit(1)], 0);
    }

    /// Reference check against brute force on random small instances.
    #[test]
    fn agrees_with_brute_force() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        for round in 0..30 {
            let num_vars = 4;
            let mut hard = Cnf::new(num_vars);
            for _ in 0..rng.gen_range(1..5) {
                let clause: Vec<Lit> = (0..rng.gen_range(1..3))
                    .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                    .collect();
                hard.add_clause(clause);
            }
            let softs: Vec<(Vec<Lit>, u64)> = (0..rng.gen_range(1..5))
                .map(|_| {
                    let clause: Vec<Lit> = (0..rng.gen_range(1..3))
                        .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                        .collect();
                    (clause, rng.gen_range(1..4) as u64)
                })
                .collect();

            // Brute-force optimum.
            let mut best: Option<u64> = None;
            for bits in 0..1u32 << num_vars {
                let a =
                    Assignment::from_values((0..num_vars).map(|i| bits >> i & 1 == 1).collect());
                if !hard.eval(&a) {
                    continue;
                }
                let cost: u64 = softs
                    .iter()
                    .filter(|(c, _)| !Clause::new(c.clone()).eval(&a))
                    .map(|(_, w)| *w)
                    .sum();
                best = Some(best.map_or(cost, |b: u64| b.min(cost)));
            }

            let mut solver = MaxSatSolver::new();
            solver.add_hard_cnf(&hard);
            for (c, w) in &softs {
                solver.add_soft(c.clone(), *w);
            }
            let result = solver.solve();
            match best {
                None => assert_eq!(result, MaxSatResult::HardUnsat, "round {round}"),
                Some(opt) => {
                    assert_eq!(result, MaxSatResult::Optimum { cost: opt }, "round {round}")
                }
            }
        }
    }
}
