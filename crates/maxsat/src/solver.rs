use crate::Totalizer;
use manthan3_cnf::{Assignment, Clause, Cnf, Lit, Var};
use manthan3_sat::{CallBudget, SolveResult, Solver, SolverConfig, SolverStats};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// Identifier of a soft clause, returned by [`MaxSatSolver::add_soft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SoftId(usize);

impl SoftId {
    /// Index of the soft clause in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// How [`MaxSatSolver::solve_under_assumptions`] locates the optimum.
///
/// * [`RepairStrategy::Linear`] — the totalizer-bound two-phase search:
///   climb the violated-weight bound upward from the warm start while UNSAT,
///   then tighten downward from the first model's cost. One SAT probe per
///   cost unit crossed, so instances whose optimum jumps between incremental
///   calls pay one probe per unit of the jump.
/// * [`RepairStrategy::CoreGuided`] — Fu–Malik/OLL-style core-guided
///   optimization over the persistent encoding: each UNSAT probe yields a
///   core over the soft-unit assumption literals, the core is relaxed with a
///   totalizer over its violation indicators (cached across calls, its bound
///   raised incrementally when the group reappears in later cores), and the
///   lower bound rises by one per core — the optimum is reached in
///   `#cores + 1` probes. Falls back to the linear search on weighted
///   instances (the repair loop's softs are always unit weight).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RepairStrategy {
    /// Warm-started linear (two-phase) bound search on the global totalizer.
    #[default]
    Linear,
    /// Core-guided (OLL over soft-unit assumptions) optimization.
    CoreGuided,
}

impl fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RepairStrategy::Linear => "linear",
            RepairStrategy::CoreGuided => "core-guided",
        };
        write!(f, "{name}")
    }
}

impl FromStr for RepairStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "linear" => Ok(RepairStrategy::Linear),
            "core-guided" | "core_guided" | "coreguided" => Ok(RepairStrategy::CoreGuided),
            other => Err(format!(
                "unknown repair strategy {other:?} (expected linear or core-guided)"
            )),
        }
    }
}

/// Search-effort counters of a [`MaxSatSolver`], accumulated across every
/// solve call of the instance.
///
/// `probes` counts the internal SAT oracle calls issued by the optimum
/// search (hard-satisfiability checks, optimistic checks, bound probes, and
/// core-guided iterations alike) — the unit the strategies compete on;
/// `cores` counts the UNSAT cores the core-guided strategy relaxed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxSatStats {
    /// Internal SAT probes issued across all solve calls.
    pub probes: u64,
    /// UNSAT cores extracted and relaxed by the core-guided strategy.
    pub cores: u64,
}

/// Outcome of a [`MaxSatSolver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaxSatResult {
    /// An optimal solution was found; `cost` is the total weight of violated
    /// soft clauses.
    Optimum {
        /// Total weight of violated soft clauses in the optimum.
        cost: u64,
    },
    /// The hard clauses alone (together with the assumptions, for
    /// [`MaxSatSolver::solve_under_assumptions`]) are unsatisfiable.
    HardUnsat,
    /// A conflict or call budget was exhausted before the optimum was
    /// proved.
    Unknown,
    /// The solve was cooperatively cancelled (the configured
    /// [`CancelToken`](manthan3_sat::CancelToken) fired) mid-search. No
    /// best-so-far bound is ever reported as the optimum: like
    /// [`MaxSatResult::Unknown`], a cancelled call leaves no model behind.
    Cancelled,
}

/// Verdict of one internal SAT probe, with budget refusals and cancellation
/// separated from genuine conflict-budget exhaustion.
enum Probe {
    Sat,
    Unsat,
    Unknown,
    Cancelled,
    /// The shared [`CallBudget`] refused the probe; it was not performed.
    Refused,
}

#[derive(Debug, Clone)]
struct SoftClause {
    lits: Vec<Lit>,
    weight: u64,
    relax: Lit,
}

/// A weighted partial MaxSAT solver.
///
/// See the [crate-level documentation](crate) for the algorithm and an
/// example.
#[derive(Debug, Clone)]
pub struct MaxSatSolver {
    solver: Solver,
    softs: Vec<SoftClause>,
    model: Option<Assignment>,
    /// Totalizer over the (weight-replicated) relaxation literals, encoded
    /// lazily on the first bounded search and kept across solve calls;
    /// invalidated when a new soft clause arrives. Without the cache every
    /// solve call re-encoded a fresh totalizer into the same solver, so a
    /// long-lived instance grew by the full cardinality network per call.
    /// Only the linear strategy ever builds it — the core-guided strategy
    /// encodes small per-core totalizers instead.
    totalizer: Option<Totalizer>,
    /// Optimum cost of the previous solve call, used to warm-start the next
    /// linear bound search: incremental callers re-solve the same objective
    /// under slowly drifting assumptions, so the optimum moves little
    /// between calls and the search usually finishes within a couple of
    /// bound probes instead of a full linear climb. Only valid for the
    /// assumption set it was proved under and the instance it was proved on:
    /// invalidated on any mutation (`add_hard`/`add_soft`/`maintain`) and on
    /// any assumption-set change, so a stale bound can never seed the search
    /// at a level unrelated to the new query.
    last_optimum: Option<u64>,
    /// The assumption set `last_optimum` was proved under.
    last_assumptions: Vec<Lit>,
    /// The optimization strategy used by the next solve call.
    strategy: RepairStrategy,
    /// Cardinality networks encoded for relaxed cores, keyed by their sorted
    /// input literals. Cores recur across incremental calls (the same
    /// outputs conflict under many counterexamples), so a cached network is
    /// reused — its assumption bound simply raised — instead of re-encoding
    /// the totalizer per call.
    core_totalizers: HashMap<Vec<Lit>, Vec<Lit>>,
    /// Shared call allowance every internal SAT probe draws on (attached by
    /// the oracle layer); probes are refused — not performed — once it is
    /// exhausted, exactly like top-level SAT solves.
    calls: Option<CallBudget>,
    stats: MaxSatStats,
}

impl Default for MaxSatSolver {
    fn default() -> Self {
        MaxSatSolver::new()
    }
}

impl MaxSatSolver {
    /// Creates an empty MaxSAT instance.
    pub fn new() -> Self {
        MaxSatSolver::with_config(SolverConfig::default())
    }

    /// Creates an instance whose SAT oracle calls are limited to
    /// `max_conflicts` conflicts each. When the budget is exhausted,
    /// [`MaxSatSolver::solve`] returns [`MaxSatResult::Unknown`].
    pub fn with_conflict_budget(max_conflicts: u64) -> Self {
        MaxSatSolver::with_config(SolverConfig::budgeted(max_conflicts))
    }

    /// Creates an instance whose internal SAT solver uses `config` — the way
    /// to pass a conflict budget *and* a cancellation token in one go (as the
    /// shared oracle layer does).
    pub fn with_config(config: SolverConfig) -> Self {
        MaxSatSolver {
            solver: Solver::with_config(config),
            softs: Vec::new(),
            model: None,
            totalizer: None,
            last_optimum: None,
            last_assumptions: Vec::new(),
            strategy: RepairStrategy::default(),
            core_totalizers: HashMap::new(),
            calls: None,
            stats: MaxSatStats::default(),
        }
    }

    /// Runtime statistics of the internal SAT solver (conflicts, decisions,
    /// …), accumulated across every solve call of this instance.
    pub fn sat_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// DRAT certificate of the internal solver's most recent UNSAT probe,
    /// when proof logging is enabled on the configuration this instance was
    /// constructed with (`SolverConfig::proof_logging`).
    ///
    /// The probe loop ends on an UNSAT verdict exactly when the search
    /// proved something: [`MaxSatResult::HardUnsat`] (the hard clauses —
    /// plus any caller assumptions — were refuted) or a linear-search
    /// optimum whose final act was refuting the bound below the reported
    /// cost. In both cases the certificate covers that closing refutation,
    /// with the probe's assumptions (including any totalizer bound literal)
    /// scoped in as unit clauses of the certificate CNF. A probe loop that
    /// ends on a SAT verdict withdraws the certificate, exactly like
    /// [`Solver::certificate`](manthan3_sat::Solver::certificate).
    pub fn certificate(&self) -> Option<manthan3_sat::Certificate> {
        self.solver.certificate()
    }

    /// Size in bytes of the internal solver's accumulated DRAT log (0 when
    /// proof logging is disabled).
    pub fn proof_len(&self) -> usize {
        self.solver.proof_len()
    }

    /// Cumulative (additions, deletions) recorded in the internal solver's
    /// DRAT log.
    pub fn proof_steps(&self) -> (u64, u64) {
        self.solver.proof_steps()
    }

    /// The configuration of the underlying CDCL solver (as constructed —
    /// the way the oracle layer verifies its profile reached the solver).
    pub fn solver_config(&self) -> &SolverConfig {
        self.solver.config()
    }

    /// Search-effort counters (SAT probes issued, cores relaxed),
    /// accumulated across every solve call of this instance.
    pub fn stats(&self) -> MaxSatStats {
        self.stats
    }

    /// The strategy the next solve call will use.
    pub fn strategy(&self) -> RepairStrategy {
        self.strategy
    }

    /// Selects the optimization strategy for subsequent solve calls. The
    /// encoding is shared, so the strategy may be switched between
    /// incremental calls at any time.
    pub fn set_strategy(&mut self, strategy: RepairStrategy) {
        self.strategy = strategy;
    }

    /// Attaches a shared call allowance: every internal SAT probe of every
    /// subsequent solve call draws one call from it first and is refused —
    /// reported as [`MaxSatResult::Unknown`] — once the allowance is
    /// exhausted. This is how the oracle layer makes MaxSAT bound searches
    /// draw on the same budget as every other solve.
    pub fn set_call_budget(&mut self, calls: CallBudget) {
        self.calls = Some(calls);
    }

    /// Adds a hard clause.
    ///
    /// Invalidates the warm-start bound: new hard clauses can raise the
    /// optimum.
    pub fn add_hard<C>(&mut self, clause: C)
    where
        C: IntoIterator<Item = Lit>,
    {
        self.last_optimum = None;
        self.solver.add_clause(clause);
    }

    /// Adds every clause of `cnf` as a hard clause.
    pub fn add_hard_cnf(&mut self, cnf: &Cnf) {
        self.last_optimum = None;
        self.solver.add_cnf(cnf);
    }

    /// Adds a soft clause with the given positive weight and returns its id.
    ///
    /// Invalidates the cached totalizer (the next linear bounded search
    /// re-encodes the cardinality network over the enlarged relaxation set)
    /// and the warm-start bound. Cached per-core totalizers stay valid —
    /// their inputs are unaffected by new softs.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn add_soft<C>(&mut self, clause: C, weight: u64) -> SoftId
    where
        C: IntoIterator<Item = Lit>,
    {
        assert!(weight > 0, "soft clauses must have positive weight");
        let lits: Vec<Lit> = clause.into_iter().collect();
        for l in &lits {
            self.solver.ensure_vars(l.var().index() + 1);
        }
        let relax = self.solver.new_var().positive();
        let mut relaxed = lits.clone();
        relaxed.push(relax);
        self.solver.add_clause(relaxed);
        let id = SoftId(self.softs.len());
        self.softs.push(SoftClause {
            lits,
            weight,
            relax,
        });
        self.totalizer = None;
        self.last_optimum = None;
        id
    }

    /// Allocates a fresh variable in the underlying solver. Incremental
    /// callers use this for auxiliary structure (e.g. assumption-pinned
    /// target variables) that must not collide with problem variables.
    pub fn new_var(&mut self) -> Var {
        self.solver.new_var()
    }

    /// Number of problem (non-learnt) clauses currently held by the
    /// underlying solver — the observable the repair-session hygiene
    /// watchdog asserts on.
    pub fn num_solver_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// Runs a maintenance pass on the underlying solver: halves the learnt
    /// database (resetting its growth threshold), compacts away clauses
    /// satisfied at level 0, and runs one bounded inprocessing pass
    /// (self-subsumption + vivification, a no-op under configurations that
    /// disable it). Long-lived incremental instances (one MaxSAT solver
    /// across hundreds of `solve_under_assumptions` calls) call this
    /// periodically so the solver state stays bounded, mirroring
    /// `VerifySession`'s error-solver maintenance. The warm-start bound is
    /// dropped alongside; the cached totalizers survive (their clauses are
    /// never level-0 satisfied — relaxation literals are only ever assumed,
    /// and inprocessing is equivalence-preserving, so the relaxation
    /// structure stays sound).
    pub fn maintain(&mut self) {
        self.last_optimum = None;
        self.solver.reduce_learnt_db();
        self.solver.simplify();
        self.solver.inprocess();
    }

    /// Number of soft clauses.
    pub fn num_softs(&self) -> usize {
        self.softs.len()
    }

    /// Total weight of all soft clauses.
    pub fn total_weight(&self) -> u64 {
        self.softs.iter().map(|s| s.weight).sum()
    }

    /// Finds an assignment satisfying all hard clauses that minimizes the
    /// total weight of violated soft clauses.
    ///
    /// An already-exhausted shared call allowance is refused up front —
    /// the internal probes would each be refused anyway, so this skips
    /// straight to the verdict an out-of-budget search would reach.
    pub fn solve(&mut self) -> MaxSatResult {
        if self.calls.as_ref().is_some_and(|calls| calls.exhausted()) {
            self.model = None;
            return MaxSatResult::Unknown;
        }
        self.solve_under_assumptions(&[])
    }

    /// Like [`MaxSatSolver::solve`], but every internal SAT query is made
    /// under the given assumption literals, so the optimum is taken over the
    /// models of `hard ∧ assumptions`.
    ///
    /// This is the incremental entry point: a caller that would otherwise
    /// rebuild the instance per iteration (hard units that change every
    /// round, e.g. the `σ[X]`/`σ[Y']` valuations of a repair loop) instead
    /// encodes the invariant structure once and retracts the per-iteration
    /// units by simply not assuming them on the next call. The underlying
    /// CDCL solver, its learnt clauses, the cached totalizers, and any
    /// relaxed core structure all survive between calls.
    ///
    /// The search runs under the configured [`RepairStrategy`]; weighted
    /// instances always take the linear path (core-guided relaxation is
    /// implemented for the unit weights the repair loop uses).
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> MaxSatResult {
        self.model = None;
        // A warm-start bound is only meaningful for the assumption set it
        // was proved under: a changed set (e.g. a repair loop pinning a
        // disjoint σ) invalidates it, so the linear search can never start
        // from a bound unrelated — possibly infeasible — for the new query.
        if self.last_assumptions != assumptions {
            self.last_optimum = None;
            self.last_assumptions = assumptions.to_vec();
        }
        match self.strategy {
            RepairStrategy::CoreGuided if self.softs.iter().all(|s| s.weight == 1) => {
                self.solve_core_guided(assumptions)
            }
            _ => self.solve_linear(assumptions),
        }
    }

    /// Returns `true` once the configured cancellation token has fired.
    fn is_cancelled(&self) -> bool {
        self.solver
            .config()
            .cancel
            .as_ref()
            .is_some_and(|token| token.is_cancelled())
    }

    /// One internal SAT probe: polls cancellation, draws on the shared call
    /// allowance (a refused probe is not performed), and classifies an
    /// Unknown verdict as cancellation when the token fired mid-search.
    fn probe(&mut self, assumptions: &[Lit]) -> Probe {
        if self.is_cancelled() {
            return Probe::Cancelled;
        }
        // Admission on the straight-line path: a missing allowance admits,
        // a present one is drawn from (and refuses when spent).
        let admitted = self.calls.as_ref().is_none_or(|calls| calls.try_acquire());
        if !admitted {
            return Probe::Refused;
        }
        self.stats.probes += 1;
        match self.solver.solve_with_assumptions(assumptions) {
            SolveResult::Sat => Probe::Sat,
            SolveResult::Unsat => Probe::Unsat,
            SolveResult::Unknown => {
                if self.is_cancelled() {
                    Probe::Cancelled
                } else {
                    Probe::Unknown
                }
            }
        }
    }

    /// The linear strategy: two-phase bound search over the violated weight
    /// on the persistent global totalizer, warm-started at the previous
    /// call's optimum — walk the bound up from there while UNSAT, then
    /// tighten downward from the first model's true cost until the bound
    /// below it is refuted. With a stable objective the whole search is
    /// typically one or two probes.
    fn solve_linear(&mut self, assumptions: &[Lit]) -> MaxSatResult {
        // Is the hard part satisfiable at all (under the assumptions)?
        match self.probe(assumptions) {
            Probe::Unsat => return MaxSatResult::HardUnsat,
            Probe::Unknown | Probe::Refused => return MaxSatResult::Unknown,
            Probe::Cancelled => return MaxSatResult::Cancelled,
            Probe::Sat => {}
        }
        if self.softs.is_empty() {
            self.model = Some(self.solver.model());
            return MaxSatResult::Optimum { cost: 0 };
        }
        // Optimistic check: can every soft clause be satisfied?
        let mut optimistic: Vec<Lit> = assumptions.to_vec();
        optimistic.extend(self.softs.iter().map(|s| !s.relax));
        match self.probe(&optimistic) {
            Probe::Sat => {
                self.model = Some(self.solver.model());
                self.last_optimum = Some(0);
                return MaxSatResult::Optimum { cost: 0 };
            }
            Probe::Unknown | Probe::Refused => return MaxSatResult::Unknown,
            Probe::Cancelled => return MaxSatResult::Cancelled,
            Probe::Unsat => {}
        }
        let total = self.totalizer().len() as u64;
        // A probe at bound `k` asks for a model with at most `k` violated
        // (weight units of) softs: `¬outputs[k]` forbids `k + 1` true
        // relaxations.
        let mut bounded: Vec<Lit> = Vec::with_capacity(assumptions.len() + 1);
        // Phase 1: find any bounded model, walking the bound up from the
        // warm start while UNSAT. Bounds 1..=total-1 are probeable; once
        // `≤ total - 1` is refuted every soft clause must be violated and
        // the unrestricted solve below is already optimal.
        let mut k = self.last_optimum.unwrap_or(1).clamp(1, total.max(2) - 1);
        // Highest bound known refuted: 0 from the failed optimistic check;
        // phase 1's UNSAT answers raise it, phase 2 stops against it.
        let mut refuted = 0u64;
        let mut cost = loop {
            if k >= total {
                return match self.probe(assumptions) {
                    Probe::Sat => {
                        self.model = Some(self.solver.model());
                        let cost = self.cost_of_current_model();
                        self.last_optimum = Some(cost);
                        MaxSatResult::Optimum { cost }
                    }
                    Probe::Unknown | Probe::Refused => MaxSatResult::Unknown,
                    Probe::Cancelled => MaxSatResult::Cancelled,
                    Probe::Unsat => MaxSatResult::HardUnsat,
                };
            }
            let bound_lit = !self.totalizer().outputs()[k as usize];
            bounded.clear();
            bounded.extend_from_slice(assumptions);
            bounded.push(bound_lit);
            match self.probe(&bounded) {
                Probe::Sat => {
                    self.model = Some(self.solver.model());
                    break self.cost_of_current_model();
                }
                Probe::Unknown | Probe::Refused => {
                    self.model = None;
                    return MaxSatResult::Unknown;
                }
                Probe::Cancelled => {
                    self.model = None;
                    return MaxSatResult::Cancelled;
                }
                Probe::Unsat => {
                    refuted = k;
                    k += 1;
                }
            }
        };
        // Phase 2: tighten downward until the next-lower bound is refuted
        // (or meets a bound phase 1 already refuted). An Unknown or
        // Cancelled exit clears the model found so far: it is not a proven
        // optimum, and [`MaxSatSolver::model`] documents that nothing is
        // available after a non-Optimum outcome.
        while cost > refuted + 1 {
            let bound_lit = !self.totalizer().outputs()[(cost - 1) as usize];
            bounded.clear();
            bounded.extend_from_slice(assumptions);
            bounded.push(bound_lit);
            match self.probe(&bounded) {
                Probe::Sat => {
                    self.model = Some(self.solver.model());
                    cost = self.cost_of_current_model();
                }
                Probe::Unknown | Probe::Refused => {
                    self.model = None;
                    return MaxSatResult::Unknown;
                }
                Probe::Cancelled => {
                    self.model = None;
                    return MaxSatResult::Cancelled;
                }
                Probe::Unsat => break,
            }
        }
        self.last_optimum = Some(cost);
        MaxSatResult::Optimum { cost }
    }

    /// The core-guided strategy (OLL over the soft-unit assumption
    /// literals): assume every soft satisfied, and while the SAT oracle
    /// refutes the assumption set, extract the final-conflict core over the
    /// active soft assumptions, relax it with a totalizer over its violation
    /// indicators (allowing one violation within the group), and raise the
    /// proven lower bound by one. A group named by a later core has its
    /// bound raised instead — its exceeded-bound indicator joins the new
    /// group — so nested cores stay bounded. The first satisfiable probe is
    /// the optimum, after exactly `#cores + 1` probes; per-core totalizers
    /// are cached across incremental calls, so recurring cores only pay the
    /// probe, never the re-encoding.
    ///
    /// Only called for unit-weight instances (the dispatch in
    /// [`MaxSatSolver::solve_under_assumptions`] falls back to the linear
    /// search otherwise), so every core raises the bound by exactly one.
    fn solve_core_guided(&mut self, assumptions: &[Lit]) -> MaxSatResult {
        /// One active "no (further) violations here" assumption: a plain
        /// soft (`¬relax`) or a relaxed core group (`¬outputs[bound]`).
        struct Entry {
            assume: Lit,
            /// Totalizer outputs of a relaxed group; `None` for a plain
            /// soft.
            outputs: Option<Vec<Lit>>,
            /// Violations currently allowed within the group.
            bound: usize,
        }
        let mut active: Vec<Entry> = self
            .softs
            .iter()
            .map(|s| Entry {
                assume: !s.relax,
                outputs: None,
                bound: 0,
            })
            .collect();
        let mut lower_bound = 0u64;
        let mut probe_lits: Vec<Lit> = Vec::with_capacity(assumptions.len() + active.len());
        loop {
            probe_lits.clear();
            probe_lits.extend_from_slice(assumptions);
            probe_lits.extend(active.iter().map(|e| e.assume));
            match self.probe(&probe_lits) {
                Probe::Sat => {
                    self.model = Some(self.solver.model());
                    let cost = self.cost_of_current_model();
                    debug_assert_eq!(
                        cost, lower_bound,
                        "OLL bookkeeping must account for every violation"
                    );
                    self.last_optimum = Some(cost);
                    return MaxSatResult::Optimum { cost };
                }
                Probe::Unknown | Probe::Refused => {
                    self.model = None;
                    return MaxSatResult::Unknown;
                }
                Probe::Cancelled => {
                    self.model = None;
                    return MaxSatResult::Cancelled;
                }
                Probe::Unsat => {
                    // `unsat_core` is sorted and deduplicated, so membership
                    // is a binary search. Caller assumptions in the core are
                    // left alone — only active soft assumptions are relaxed.
                    let core: Vec<Lit> = self.solver.unsat_core().to_vec();
                    let hit: Vec<usize> = active
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| core.binary_search(&e.assume).is_ok())
                        .map(|(i, _)| i)
                        .collect();
                    if hit.is_empty() {
                        // The conflict involves only hard clauses and the
                        // caller's assumptions: no relaxation can help.
                        return MaxSatResult::HardUnsat;
                    }
                    lower_bound += 1;
                    self.stats.cores += 1;
                    // Collect the violation indicators of the core members
                    // (descending index order keeps swap_remove sound).
                    let mut inputs: Vec<Lit> = Vec::with_capacity(hit.len());
                    for &i in hit.iter().rev() {
                        if active[i].outputs.is_none() {
                            // Plain soft: its relaxation variable joins the
                            // new group, and the soft leaves the active set
                            // for the rest of the call.
                            inputs.push(!active[i].assume);
                            active.swap_remove(i);
                            continue;
                        }
                        // Relaxed group: its exceeded-bound indicator joins
                        // the new group AND its own bound is raised, so the
                        // group stays bounded (the RC2 discipline).
                        let (escalate, next_assume) = {
                            let entry = &active[i];
                            // invariant: `i` indexes the group partition of
                            // `active`, whose entries all carry outputs.
                            let outputs = entry.outputs.as_ref().expect("group entry");
                            let next = entry.bound + 1;
                            (
                                outputs[entry.bound],
                                (next < outputs.len()).then(|| !outputs[next]),
                            )
                        };
                        inputs.push(escalate);
                        match next_assume {
                            Some(assume) => {
                                let entry = &mut active[i];
                                entry.bound += 1;
                                entry.assume = assume;
                            }
                            // Bound reached the group size: vacuous, drop.
                            None => {
                                active.swap_remove(i);
                            }
                        }
                    }
                    // A singleton core needs no counting structure: its one
                    // violation is fully absorbed by the raised lower bound.
                    if inputs.len() >= 2 {
                        inputs.sort();
                        let outputs = self.core_totalizer(&inputs);
                        active.push(Entry {
                            assume: !outputs[1],
                            outputs: Some(outputs),
                            bound: 1,
                        });
                    }
                }
            }
        }
    }

    /// The cardinality network over a relaxed core's violation indicators,
    /// encoded on first sight of the input set and reused by every later
    /// call that rediscovers the same core (its bound is raised purely by
    /// assuming a higher output).
    fn core_totalizer(&mut self, inputs: &[Lit]) -> Vec<Lit> {
        if let Some(outputs) = self.core_totalizers.get(inputs) {
            return outputs.clone();
        }
        let totalizer = Totalizer::encode(&mut self.solver, inputs);
        let outputs = totalizer.outputs().to_vec();
        self.core_totalizers
            .insert(inputs.to_vec(), outputs.clone());
        outputs
    }

    /// The persistent totalizer over the weight-replicated relaxation
    /// literals, encoded on first use and reused by every later bounded
    /// search (re-encoded only after [`MaxSatSolver::add_soft`] grows the
    /// relaxation set).
    fn totalizer(&mut self) -> &Totalizer {
        if self.totalizer.is_none() {
            let mut counters: Vec<Lit> = Vec::new();
            for s in &self.softs {
                for _ in 0..s.weight {
                    counters.push(s.relax);
                }
            }
            self.totalizer = Some(Totalizer::encode(&mut self.solver, &counters));
        }
        // invariant: the branch above encodes the totalizer when absent.
        self.totalizer.as_ref().expect("totalizer just encoded")
    }

    fn cost_of_current_model(&self) -> u64 {
        // invariant: only called after a SAT solve stored a model.
        let model = self.model.as_ref().expect("model available");
        self.softs
            .iter()
            .filter(|s| !Clause::new(s.lits.clone()).eval(model))
            .map(|s| s.weight)
            .sum()
    }

    /// Returns the model of the last [`MaxSatResult::Optimum`] outcome.
    ///
    /// # Panics
    ///
    /// Panics if the last solve call did not produce an optimum.
    pub fn model(&self) -> Assignment {
        // invariant: documented panic contract — callers may only ask for
        // the model after an Optimum outcome.
        self.model.clone().expect("no MaxSAT model available")
    }

    /// Returns the soft clauses violated by the last optimum's model, in
    /// insertion order.
    pub fn violated_softs(&self) -> Vec<SoftId> {
        // invariant: same contract as `model` — only valid after an Optimum.
        let model = self.model.as_ref().expect("no MaxSAT model available");
        self.softs
            .iter()
            .enumerate()
            .filter(|(_, s)| !Clause::new(s.lits.clone()).eval(model))
            .map(|(i, _)| SoftId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Var;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    /// Runs the same instance-building closure under both strategies and
    /// asserts identical results.
    fn both_strategies(build: impl Fn(&mut MaxSatSolver)) -> (MaxSatResult, MaxSatResult) {
        let mut linear = MaxSatSolver::new();
        build(&mut linear);
        let mut core = MaxSatSolver::new();
        core.set_strategy(RepairStrategy::CoreGuided);
        build(&mut core);
        (linear.solve(), core.solve())
    }

    #[test]
    fn all_softs_satisfiable() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        s.add_soft([lit(1)], 1);
        s.add_soft([lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 0 });
        assert!(s.violated_softs().is_empty());
    }

    #[test]
    fn must_violate_one_soft() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]); // at least one true
        let s1 = s.add_soft([lit(-1)], 1);
        let s2 = s.add_soft([lit(-2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        let violated = s.violated_softs();
        assert_eq!(violated.len(), 1);
        assert!(violated[0] == s1 || violated[0] == s2);
    }

    #[test]
    fn weights_steer_the_optimum() {
        // Hard: exactly one of x1, x2 true. Soft: prefer x1 (weight 5) and
        // x2 (weight 1): the optimum keeps x1 and violates the cheap soft.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        s.add_hard([lit(-1), lit(-2)]);
        s.add_soft([lit(1)], 5);
        let cheap = s.add_soft([lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        assert_eq!(s.violated_softs(), vec![cheap]);
        assert!(s.model().value(Var::new(0)));
    }

    #[test]
    fn hard_unsat_detected() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1)]);
        s.add_hard([lit(-1)]);
        s.add_soft([lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::HardUnsat);
    }

    #[test]
    fn all_softs_violated() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1)]);
        s.add_hard([lit(2)]);
        s.add_soft([lit(-1)], 1);
        s.add_soft([lit(-2)], 2);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 3 });
        assert_eq!(s.violated_softs().len(), 2);
    }

    #[test]
    fn no_softs_is_plain_sat() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 0 });
        let _ = s.model();
    }

    #[test]
    fn multi_literal_soft_clauses() {
        // Hard: ¬x1 ∧ ¬x2. Soft: (x1 ∨ x2) cannot be satisfied.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(-1)]);
        s.add_hard([lit(-2)]);
        let broken = s.add_soft([lit(1), lit(2)], 3);
        let fine = s.add_soft([lit(-1), lit(2)], 2);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 3 });
        assert_eq!(s.violated_softs(), vec![broken]);
        let _ = fine;
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_rejected() {
        let mut s = MaxSatSolver::new();
        s.add_soft([lit(1)], 0);
    }

    #[test]
    fn assumptions_pin_the_optimum_and_retract_between_calls() {
        // Hard: x1 ∨ x2. Softs prefer ¬x1 and ¬x2. Under the assumption x1
        // the optimum must violate the ¬x1 soft; under x2 the other one; with
        // no assumptions the cost-1 optimum is free to pick either.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        let s1 = s.add_soft([lit(-1)], 1);
        let s2 = s.add_soft([lit(-2)], 1);
        assert_eq!(
            s.solve_under_assumptions(&[lit(1), lit(-2)]),
            MaxSatResult::Optimum { cost: 1 }
        );
        assert_eq!(s.violated_softs(), vec![s1]);
        // The previous call's units are retracted, not persisted.
        assert_eq!(
            s.solve_under_assumptions(&[lit(2), lit(-1)]),
            MaxSatResult::Optimum { cost: 1 }
        );
        assert_eq!(s.violated_softs(), vec![s2]);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
    }

    #[test]
    fn contradictory_assumptions_are_hard_unsat() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1)]);
        s.add_soft([lit(2)], 1);
        assert_eq!(
            s.solve_under_assumptions(&[lit(-1)]),
            MaxSatResult::HardUnsat
        );
        // The instance itself is untouched.
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 0 });
    }

    #[test]
    fn totalizer_is_encoded_once_across_repeated_solves() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        s.add_soft([lit(-1)], 2);
        s.add_soft([lit(-2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        let vars_after_first = s.solver.num_vars();
        let clauses_after_first = s.num_solver_clauses();
        for _ in 0..20 {
            assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        }
        // Re-solving must not re-encode the cardinality network.
        assert_eq!(s.solver.num_vars(), vars_after_first);
        assert_eq!(s.num_solver_clauses(), clauses_after_first);
        // A new soft clause invalidates the cache; exactly one re-encoding.
        s.add_soft([lit(1), lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        let vars_after_growth = s.solver.num_vars();
        assert!(vars_after_growth > vars_after_first);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        assert_eq!(s.solver.num_vars(), vars_after_growth);
    }

    #[test]
    fn cancellation_aborts_between_bound_steps() {
        use manthan3_sat::{CancelToken, SolverConfig};
        let token = CancelToken::new();
        let mut s = MaxSatSolver::with_config(SolverConfig::default().with_cancel(token.clone()));
        s.add_hard([lit(1)]);
        s.add_soft([lit(-1)], 3);
        token.cancel();
        // Cancellation is surfaced as its own verdict, never folded into
        // Unknown and never reported as a best-so-far optimum.
        assert_eq!(s.solve(), MaxSatResult::Cancelled);
    }

    #[test]
    fn cancellation_mid_search_reports_cancelled_for_both_strategies() {
        use manthan3_sat::{CancelToken, SolverConfig};
        use std::time::{Duration, Instant};
        // An unsatisfiable pigeonhole hard part far beyond what the test
        // environment can refute quickly: the first probe of either strategy
        // runs long, and a token cancelled from another thread must turn the
        // in-flight bound search into `Cancelled` — not into the best-so-far
        // bound, not into `Unknown`.
        for strategy in [RepairStrategy::Linear, RepairStrategy::CoreGuided] {
            let token = CancelToken::new();
            let mut s =
                MaxSatSolver::with_config(SolverConfig::default().with_cancel(token.clone()));
            let holes = 9usize;
            let var = |i: usize, j: usize| Var::new((i * holes + j) as u32);
            for i in 0..=holes {
                let clause: Vec<Lit> = (0..holes).map(|j| var(i, j).positive()).collect();
                s.add_hard(clause);
            }
            for j in 0..holes {
                for i1 in 0..=holes {
                    for i2 in (i1 + 1)..=holes {
                        s.add_hard([var(i1, j).negative(), var(i2, j).negative()]);
                    }
                }
            }
            s.add_soft([var(0, 0).positive()], 1);
            s.set_strategy(strategy);
            let canceller = std::thread::spawn({
                let token = token.clone();
                move || {
                    std::thread::sleep(Duration::from_millis(20));
                    token.cancel();
                }
            });
            let start = Instant::now();
            assert_eq!(s.solve(), MaxSatResult::Cancelled, "{strategy}");
            assert!(
                start.elapsed() < std::time::Duration::from_secs(20),
                "{strategy}: cancellation did not interrupt the search"
            );
            canceller.join().expect("canceller thread");
        }
    }

    #[test]
    fn soft_free_instances_report_cost_zero_under_assumptions() {
        // No soft clauses at all (a repair session over an existential-free
        // DQBF): the optimum is trivially 0, a model is available, and the
        // violated-soft set is empty — no panic on either accessor.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        assert_eq!(
            s.solve_under_assumptions(&[lit(1)]),
            MaxSatResult::Optimum { cost: 0 }
        );
        assert!(s.violated_softs().is_empty());
        assert!(s.model().value(Var::new(0)));
    }

    #[test]
    #[should_panic(expected = "no MaxSAT model available")]
    fn unknown_outcomes_leave_no_stale_model() {
        // First solve finds an optimum (model stored); a cancelled re-solve
        // returns Cancelled and must clear it, so reading the model
        // afterwards panics as documented instead of yielding a stale,
        // unproven one.
        use manthan3_sat::{CancelToken, SolverConfig};
        let token = CancelToken::new();
        let mut s = MaxSatSolver::with_config(SolverConfig::default().with_cancel(token.clone()));
        s.add_hard([lit(1), lit(2)]);
        s.add_soft([lit(-1)], 1);
        s.add_soft([lit(-2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        let _ = s.model();
        token.cancel();
        assert_eq!(s.solve(), MaxSatResult::Cancelled);
        let _ = s.violated_softs(); // must panic
    }

    #[test]
    fn maintain_keeps_the_instance_correct() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        s.add_hard([lit(-1), lit(-2)]);
        s.add_soft([lit(1)], 5);
        let cheap = s.add_soft([lit(2)], 1);
        for _ in 0..10 {
            assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
            assert_eq!(s.violated_softs(), vec![cheap]);
            s.maintain();
        }
    }

    /// A proof-logging MaxSAT solve whose probe loop ends UNSAT yields a
    /// certificate the independent checker accepts; SAT-terminated searches
    /// withdraw it.
    #[test]
    fn hard_unsat_probes_yield_checkable_certificates() {
        use manthan3_drat::{check, parse_text_proof, CheckOutcome};
        for strategy in [RepairStrategy::Linear, RepairStrategy::CoreGuided] {
            let mut s = MaxSatSolver::with_config(SolverConfig::default().with_proof_logging(true));
            s.set_strategy(strategy);
            s.add_hard([lit(1), lit(2)]);
            s.add_hard([lit(-1)]);
            s.add_hard([lit(-2)]);
            s.add_soft([lit(3)], 1);
            assert_eq!(s.solve(), MaxSatResult::HardUnsat, "{strategy}");
            let cert = s.certificate().expect("hard-unsat probe certificate");
            let text = std::str::from_utf8(&cert.proof).expect("text DRAT");
            let proof = parse_text_proof(text).expect("well-formed proof");
            assert!(
                matches!(check(&cert.dimacs_cnf(), &proof), CheckOutcome::Verified(_)),
                "{strategy}: certificate rejected"
            );
            assert!(s.proof_len() > 0, "{strategy}");
            assert!(s.proof_steps().0 > 0, "{strategy}");
        }
    }

    /// The relaxed instance is satisfiable, so the optimum search ends on a
    /// SAT probe: no certificate is claimed, and logging stays off (zero
    /// proof bytes) unless the configuration asks for it.
    #[test]
    fn sat_terminated_searches_withdraw_the_certificate() {
        let mut s = MaxSatSolver::with_config(SolverConfig::default().with_proof_logging(true));
        s.add_hard([lit(1), lit(2)]);
        s.add_soft([lit(-1)], 1);
        s.add_soft([lit(-2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        assert!(s.certificate().is_none());
        let mut silent = MaxSatSolver::new();
        silent.add_hard([lit(1)]);
        silent.add_hard([lit(-1)]);
        assert_eq!(silent.solve(), MaxSatResult::HardUnsat);
        assert_eq!(silent.proof_len(), 0);
        assert!(silent.certificate().is_none());
    }

    #[test]
    fn strategy_names_round_trip() {
        for strategy in [RepairStrategy::Linear, RepairStrategy::CoreGuided] {
            assert_eq!(strategy.to_string().parse::<RepairStrategy>(), Ok(strategy));
        }
        assert_eq!("core_guided".parse(), Ok(RepairStrategy::CoreGuided));
        assert!("fu-malik".parse::<RepairStrategy>().is_err());
        assert_eq!(RepairStrategy::default(), RepairStrategy::Linear);
    }

    type InstanceBuilder = Box<dyn Fn(&mut MaxSatSolver)>;

    #[test]
    fn core_guided_agrees_on_the_basic_instances() {
        // The small hand-written shapes, each solved by both strategies.
        let cases: Vec<(InstanceBuilder, MaxSatResult)> = vec![
            (
                Box::new(|s: &mut MaxSatSolver| {
                    s.add_hard([lit(1), lit(2)]);
                    s.add_soft([lit(-1)], 1);
                    s.add_soft([lit(-2)], 1);
                }),
                MaxSatResult::Optimum { cost: 1 },
            ),
            (
                Box::new(|s: &mut MaxSatSolver| {
                    s.add_hard([lit(1)]);
                    s.add_hard([lit(2)]);
                    s.add_soft([lit(-1)], 1);
                    s.add_soft([lit(-2)], 1);
                }),
                MaxSatResult::Optimum { cost: 2 },
            ),
            (
                Box::new(|s: &mut MaxSatSolver| {
                    s.add_hard([lit(1)]);
                    s.add_hard([lit(-1)]);
                    s.add_soft([lit(2)], 1);
                }),
                MaxSatResult::HardUnsat,
            ),
            (
                Box::new(|s: &mut MaxSatSolver| {
                    s.add_hard([lit(1), lit(2)]);
                    s.add_soft([lit(1)], 1);
                    s.add_soft([lit(2)], 1);
                }),
                MaxSatResult::Optimum { cost: 0 },
            ),
        ];
        for (build, expected) in cases {
            let (linear, core) = both_strategies(|s| build(s));
            assert_eq!(linear, expected);
            assert_eq!(core, expected);
        }
    }

    #[test]
    fn core_guided_reaches_the_optimum_in_fewer_probes() {
        // Hard: x1 ∧ x2 ∧ x3 forces all three unit softs violated. The
        // linear search pays the hard check, the optimistic check, and the
        // full bound climb; core-guided pays one probe per core plus the
        // final model.
        let mut linear = MaxSatSolver::new();
        let mut core = MaxSatSolver::new();
        core.set_strategy(RepairStrategy::CoreGuided);
        for s in [&mut linear, &mut core] {
            s.add_hard([lit(1)]);
            s.add_hard([lit(2)]);
            s.add_hard([lit(3)]);
            s.add_soft([lit(-1)], 1);
            s.add_soft([lit(-2)], 1);
            s.add_soft([lit(-3)], 1);
        }
        assert_eq!(linear.solve(), MaxSatResult::Optimum { cost: 3 });
        assert_eq!(core.solve(), MaxSatResult::Optimum { cost: 3 });
        assert_eq!(core.stats().cores, 3);
        assert!(
            core.stats().probes < linear.stats().probes,
            "core-guided took {} probes, linear {}",
            core.stats().probes,
            linear.stats().probes
        );
    }

    #[test]
    fn core_guided_relaxations_stay_sound_across_assumption_changes() {
        // Two disjoint σ-style pins over a shared encoding: t1/t2 pin which
        // side of the hard disjunction must hold, flipping which soft is
        // violated. The relaxation structure discovered under one pin must
        // not leak an unsound bound into the other.
        let mut s = MaxSatSolver::new();
        s.set_strategy(RepairStrategy::CoreGuided);
        s.add_hard([lit(1), lit(2)]);
        let s1 = s.add_soft([lit(-1)], 1);
        let s2 = s.add_soft([lit(-2)], 1);
        for round in 0..6 {
            let (pins, expect): (&[Lit], SoftId) = if round % 2 == 0 {
                (&[lit(1), lit(-2)], s1)
            } else {
                (&[lit(2), lit(-1)], s2)
            };
            assert_eq!(
                s.solve_under_assumptions(pins),
                MaxSatResult::Optimum { cost: 1 },
                "round {round}"
            );
            assert_eq!(s.violated_softs(), vec![expect], "round {round}");
        }
        // Each call discovers exactly one (singleton) core.
        assert_eq!(s.stats().cores, 6);
    }

    #[test]
    fn core_guided_caches_recurring_core_totalizers() {
        // Hard: at most one of x1..x3 true, pinned so that two of the three
        // unit softs (x_i) must be violated: the same two-element cores
        // recur on every call, and the cached networks keep the solver's
        // variable count flat after the first discovery.
        let mut s = MaxSatSolver::new();
        s.set_strategy(RepairStrategy::CoreGuided);
        s.add_hard([lit(-1), lit(-2)]);
        s.add_hard([lit(-1), lit(-3)]);
        s.add_hard([lit(-2), lit(-3)]);
        s.add_soft([lit(1)], 1);
        s.add_soft([lit(2)], 1);
        s.add_soft([lit(3)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 2 });
        let vars_after_first = s.solver.num_vars();
        let clauses_after_first = s.num_solver_clauses();
        for _ in 0..10 {
            assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 2 });
        }
        assert_eq!(s.solver.num_vars(), vars_after_first);
        assert_eq!(s.num_solver_clauses(), clauses_after_first);
    }

    #[test]
    fn weighted_instances_fall_back_to_the_linear_search() {
        let mut s = MaxSatSolver::new();
        s.set_strategy(RepairStrategy::CoreGuided);
        s.add_hard([lit(1), lit(2)]);
        s.add_hard([lit(-1), lit(-2)]);
        s.add_soft([lit(1)], 5);
        let cheap = s.add_soft([lit(2)], 1);
        assert_eq!(s.solve(), MaxSatResult::Optimum { cost: 1 });
        assert_eq!(s.violated_softs(), vec![cheap]);
        // The weighted dispatch took the linear path: no cores.
        assert_eq!(s.stats().cores, 0);
    }

    /// Satellite regression: the linear warm-start bound must not survive an
    /// assumption-set change. Alternating disjoint σ pins with very
    /// different optima stay correct, and every call's probe count is
    /// bounded by `optimum + 2` (hard check + optimistic check + climb
    /// from 1) — a stale warm bound from the other pin would seed the
    /// search at an unrelated level.
    #[test]
    fn warm_start_is_invalidated_on_assumption_set_changes() {
        let mut s = MaxSatSolver::new();
        // Hard: t → (x1 ∧ x2 ∧ x3), u → (¬x1 ∧ ¬x2 ∧ ¬x3); x4 free. Softs
        // prefer all four x_i false: optimum 3 under t, optimum 0 under u.
        let (t, u) = (lit(5), lit(6));
        for i in 1..=3 {
            s.add_hard([!t, lit(i)]);
            s.add_hard([!u, lit(-i)]);
        }
        for i in 1..=4 {
            s.add_soft([lit(-i)], 1);
        }
        for round in 0..6 {
            let (pins, optimum) = if round % 2 == 0 {
                ([t, !u], 3)
            } else {
                ([u, !t], 0)
            };
            let before = s.stats().probes;
            assert_eq!(
                s.solve_under_assumptions(&pins),
                MaxSatResult::Optimum { cost: optimum },
                "round {round}"
            );
            let spent = s.stats().probes - before;
            assert!(
                spent <= optimum + 2,
                "round {round}: {spent} probes for optimum {optimum} — stale warm start?"
            );
        }
        // Repeating the *same* assumption set keeps the warm start: after
        // one fresh climb re-establishes the bound, the re-query pays the
        // hard check, the optimistic check, the already-SAT probe at the
        // warm optimum, and one refuted confirming probe below it —
        // 4 probes, no climb.
        assert_eq!(
            s.solve_under_assumptions(&[t, !u]),
            MaxSatResult::Optimum { cost: 3 }
        );
        let before = s.stats().probes;
        assert_eq!(
            s.solve_under_assumptions(&[t, !u]),
            MaxSatResult::Optimum { cost: 3 }
        );
        assert_eq!(s.stats().probes - before, 4);
    }

    /// Satellite regression: internal SAT probes draw on the shared
    /// [`CallBudget`] and are refused — mid-bound-search — once it is
    /// exhausted, mirroring `call_budget_cuts_off_further_solves`.
    #[test]
    fn call_budget_cuts_off_the_probe_loop() {
        for strategy in [RepairStrategy::Linear, RepairStrategy::CoreGuided] {
            let mut s = MaxSatSolver::new();
            s.set_strategy(strategy);
            let calls = CallBudget::limited(2);
            s.set_call_budget(calls.clone());
            // Optimum 2 needs ≥ 3 probes on either strategy (core-guided:
            // two cores plus the model; linear: hard check, optimistic
            // check, climb).
            s.add_hard([lit(1)]);
            s.add_hard([lit(2)]);
            s.add_soft([lit(-1)], 1);
            s.add_soft([lit(-2)], 1);
            assert_eq!(s.solve(), MaxSatResult::Unknown, "{strategy}");
            // Exactly the allowance was consumed; the refused probe was
            // never performed.
            assert_eq!(calls.consumed(), 2, "{strategy}");
            assert_eq!(s.stats().probes, 2, "{strategy}");
            assert!(calls.exhausted(), "{strategy}");
        }
    }

    /// Reference check against brute force on random small instances.
    #[test]
    fn agrees_with_brute_force() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2024);
        for round in 0..30 {
            let num_vars = 4;
            let mut hard = Cnf::new(num_vars);
            for _ in 0..rng.gen_range(1..5) {
                let clause: Vec<Lit> = (0..rng.gen_range(1..3))
                    .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                    .collect();
                hard.add_clause(clause);
            }
            let softs: Vec<(Vec<Lit>, u64)> = (0..rng.gen_range(1..5))
                .map(|_| {
                    let clause: Vec<Lit> = (0..rng.gen_range(1..3))
                        .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                        .collect();
                    (clause, rng.gen_range(1..4) as u64)
                })
                .collect();

            // Brute-force optimum.
            let mut best: Option<u64> = None;
            for bits in 0..1u32 << num_vars {
                let a =
                    Assignment::from_values((0..num_vars).map(|i| bits >> i & 1 == 1).collect());
                if !hard.eval(&a) {
                    continue;
                }
                let cost: u64 = softs
                    .iter()
                    .filter(|(c, _)| !Clause::new(c.clone()).eval(&a))
                    .map(|(_, w)| *w)
                    .sum();
                best = Some(best.map_or(cost, |b: u64| b.min(cost)));
            }

            let mut solver = MaxSatSolver::new();
            solver.add_hard_cnf(&hard);
            for (c, w) in &softs {
                solver.add_soft(c.clone(), *w);
            }
            let result = solver.solve();
            match best {
                None => assert_eq!(result, MaxSatResult::HardUnsat, "round {round}"),
                Some(opt) => {
                    assert_eq!(result, MaxSatResult::Optimum { cost: opt }, "round {round}")
                }
            }
        }
    }

    /// Brute-force reference for the core-guided strategy on random
    /// unit-weight instances (the shape the repair loop produces), with the
    /// linear strategy run on the same instance as a second witness.
    #[test]
    fn core_guided_agrees_with_brute_force_on_unit_weights() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x0C0E_2026);
        for round in 0..40 {
            let num_vars = 5;
            let mut hard = Cnf::new(num_vars);
            for _ in 0..rng.gen_range(1..6) {
                let clause: Vec<Lit> = (0..rng.gen_range(1..3))
                    .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                    .collect();
                hard.add_clause(clause);
            }
            let softs: Vec<Vec<Lit>> = (0..rng.gen_range(1..6))
                .map(|_| {
                    (0..rng.gen_range(1..3))
                        .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                        .collect()
                })
                .collect();

            let mut best: Option<u64> = None;
            for bits in 0..1u32 << num_vars {
                let a =
                    Assignment::from_values((0..num_vars).map(|i| bits >> i & 1 == 1).collect());
                if !hard.eval(&a) {
                    continue;
                }
                let cost = softs
                    .iter()
                    .filter(|c| !Clause::new((*c).clone()).eval(&a))
                    .count() as u64;
                best = Some(best.map_or(cost, |b: u64| b.min(cost)));
            }

            let mut linear = MaxSatSolver::new();
            let mut core = MaxSatSolver::new();
            core.set_strategy(RepairStrategy::CoreGuided);
            for solver in [&mut linear, &mut core] {
                solver.add_hard_cnf(&hard);
                for c in &softs {
                    solver.add_soft(c.clone(), 1);
                }
            }
            let linear_result = linear.solve();
            let core_result = core.solve();
            match best {
                None => {
                    assert_eq!(linear_result, MaxSatResult::HardUnsat, "round {round}");
                    assert_eq!(core_result, MaxSatResult::HardUnsat, "round {round}");
                }
                Some(opt) => {
                    assert_eq!(
                        linear_result,
                        MaxSatResult::Optimum { cost: opt },
                        "round {round}"
                    );
                    assert_eq!(
                        core_result,
                        MaxSatResult::Optimum { cost: opt },
                        "round {round}"
                    );
                    // The reported model is consistent with the optimum.
                    assert_eq!(core.violated_softs().len() as u64, opt, "round {round}");
                }
            }
        }
    }

    /// Randomized incremental equivalence under changing assumption sets:
    /// one core-guided and one linear instance answer the same random pin
    /// sequence over one encoding, and must agree call by call.
    #[test]
    fn strategies_agree_across_random_assumption_sequences() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xA55E_55ED);
        for round in 0..10 {
            let num_vars = 5usize;
            let mut linear = MaxSatSolver::new();
            let mut core = MaxSatSolver::new();
            core.set_strategy(RepairStrategy::CoreGuided);
            let mut hard = Cnf::new(num_vars);
            for _ in 0..rng.gen_range(2..6) {
                let clause: Vec<Lit> = (0..rng.gen_range(1..3))
                    .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                    .collect();
                hard.add_clause(clause);
            }
            for solver in [&mut linear, &mut core] {
                solver.add_hard_cnf(&hard);
                for v in 0..num_vars {
                    solver.add_soft([Var::new(v as u32).negative()], 1);
                }
            }
            for query in 0..25 {
                let pins: Vec<Lit> = (0..rng.gen_range(0..3))
                    .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                    .collect();
                let a = linear.solve_under_assumptions(&pins);
                let b = core.solve_under_assumptions(&pins);
                assert_eq!(a, b, "round {round} query {query} pins {pins:?}");
                if let MaxSatResult::Optimum { cost } = a {
                    assert_eq!(
                        core.violated_softs().len() as u64,
                        cost,
                        "round {round} query {query}"
                    );
                }
            }
        }
    }
}
