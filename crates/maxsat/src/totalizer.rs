//! A totalizer cardinality encoding.

use manthan3_cnf::Lit;
use manthan3_sat::Solver;

/// A totalizer over a set of input literals.
///
/// After construction, `outputs()[k]` is a literal that is forced to be true
/// whenever **at least `k + 1`** of the inputs are true. Assuming
/// `¬outputs()[k]` therefore bounds the number of true inputs by `k`.
///
/// Only the "inputs → outputs" direction is encoded, which is sufficient (and
/// standard) for assumption-based upper-bounding in MaxSAT search.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::Lit;
/// use manthan3_maxsat::Totalizer;
/// use manthan3_sat::{SolveResult, Solver};
///
/// let mut solver = Solver::new();
/// let lits: Vec<Lit> = (0..3).map(|_| solver.new_var().positive()).collect();
/// let totalizer = Totalizer::encode(&mut solver, &lits);
/// // Force all three inputs true, then bound the count by 2: unsatisfiable.
/// for &l in &lits {
///     solver.add_clause([l]);
/// }
/// assert_eq!(
///     solver.solve_with_assumptions(&[!totalizer.outputs()[2]]),
///     SolveResult::Unsat
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Totalizer {
    outputs: Vec<Lit>,
}

impl Totalizer {
    /// Encodes a totalizer over `inputs` into `solver` and returns it.
    ///
    /// An empty input list yields an empty output list.
    pub fn encode(solver: &mut Solver, inputs: &[Lit]) -> Self {
        let outputs = Self::build(solver, inputs);
        Totalizer { outputs }
    }

    fn build(solver: &mut Solver, inputs: &[Lit]) -> Vec<Lit> {
        match inputs.len() {
            0 => Vec::new(),
            1 => vec![inputs[0]],
            _ => {
                let mid = inputs.len() / 2;
                let left = Self::build(solver, &inputs[..mid]);
                let right = Self::build(solver, &inputs[mid..]);
                Self::merge(solver, &left, &right)
            }
        }
    }

    /// Merges two sorted count vectors: `out[k]` must become true whenever
    /// `left` provides `i` and `right` provides `j` true counters with
    /// `i + j >= k + 1`.
    fn merge(solver: &mut Solver, left: &[Lit], right: &[Lit]) -> Vec<Lit> {
        let n = left.len() + right.len();
        let out: Vec<Lit> = (0..n).map(|_| solver.new_var().positive()).collect();
        // left alone / right alone
        for (i, &a) in left.iter().enumerate() {
            solver.add_clause([!a, out[i]]);
        }
        for (j, &b) in right.iter().enumerate() {
            solver.add_clause([!b, out[j]]);
        }
        // combined counts
        for (i, &a) in left.iter().enumerate() {
            for (j, &b) in right.iter().enumerate() {
                solver.add_clause([!a, !b, out[i + j + 1]]);
            }
        }
        out
    }

    /// Output literals; `outputs()[k]` means "at least `k + 1` inputs true".
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Number of inputs the totalizer counts.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Returns `true` if the totalizer was built over no inputs.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_sat::SolveResult;

    /// Checks that bounding the totalizer at `k` admits exactly the input
    /// patterns with at most `k` true literals.
    #[test]
    fn bounds_are_exact_for_small_inputs() {
        for n in 1..=4usize {
            for k in 0..n {
                for pattern in 0..1u32 << n {
                    let mut solver = Solver::new();
                    let lits: Vec<Lit> = (0..n).map(|_| solver.new_var().positive()).collect();
                    let tot = Totalizer::encode(&mut solver, &lits);
                    for (i, &l) in lits.iter().enumerate() {
                        let value = pattern >> i & 1 == 1;
                        solver.add_clause([l.apply_sign(value)]);
                    }
                    let true_count = pattern.count_ones() as usize;
                    let res = solver.solve_with_assumptions(&[!tot.outputs()[k]]);
                    let expected = if true_count <= k {
                        SolveResult::Sat
                    } else {
                        SolveResult::Unsat
                    };
                    assert_eq!(res, expected, "n={n} k={k} pattern={pattern:b}");
                }
            }
        }
    }

    #[test]
    fn empty_totalizer() {
        let mut solver = Solver::new();
        let tot = Totalizer::encode(&mut solver, &[]);
        assert!(tot.is_empty());
        assert_eq!(tot.len(), 0);
    }

    #[test]
    fn single_input_is_its_own_counter() {
        let mut solver = Solver::new();
        let l = solver.new_var().positive();
        let tot = Totalizer::encode(&mut solver, &[l]);
        assert_eq!(tot.outputs(), &[l]);
    }
}
