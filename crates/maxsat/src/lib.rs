//! A weighted partial MaxSAT solver for the Manthan3 reproduction.
//!
//! This crate plays the role of Open-WBO in the original Manthan3 toolchain.
//! Manthan3 uses MaxSAT inside `FindCandi` (Algorithm 3, line 2): the
//! specification `ϕ(X,Y) ∧ (X ↔ σ[X])` is added as *hard* clauses and each
//! `(y_i ↔ σ[y'_i])` as a *soft* clause; the candidates selected for repair
//! are exactly the outputs whose soft clause is violated in the optimal
//! solution.
//!
//! The implementation relaxes each soft clause with a fresh relaxation
//! variable and offers two optimization strategies, selected via
//! [`RepairStrategy`]:
//!
//! * **[`RepairStrategy::Linear`]** — a linear UNSAT→SAT search over the
//!   number of violated softs, using a totalizer cardinality encoding and
//!   assumption-based bounds on top of the [`manthan3_sat`] CDCL solver,
//!   warm-started at the previous call's optimum. Integer weights are
//!   supported by replicating relaxation literals inside the totalizer.
//! * **[`RepairStrategy::CoreGuided`]** — Fu–Malik/OLL-style core-guided
//!   optimization: every soft is assumed satisfied, each UNSAT answer
//!   yields a final-conflict core over the soft-unit assumption literals,
//!   and the core is relaxed with a totalizer over its violation
//!   indicators whose bound is raised when the group reappears in later
//!   cores. The optimum is reached in `#cores + 1` SAT probes — instead of
//!   one probe per cost unit — and the per-core networks are cached across
//!   incremental calls, so an optimum that jumps between assumption sets
//!   (a repair loop's moving counterexamples) never pays a linear climb.
//!   Weighted instances fall back to the linear search.
//!
//! # Incremental use
//!
//! The solver is built for long-lived incremental use, clausal-abstraction
//! style: hard clauses, soft clauses, and the totalizer are encoded **once**
//! (the totalizer lazily, cached across solve calls), and per-iteration
//! state rides in through [`MaxSatSolver::solve_under_assumptions`] — every
//! internal SAT query is made under the caller's assumption literals, so
//! "hard units" that change between iterations (a repair loop's `σ[X]` and
//! `σ[Y']` valuations, pinned via indirection variables) are retracted by
//! simply not assuming them on the next call. The underlying CDCL solver and
//! its learnt clauses survive between calls; periodic
//! [`MaxSatSolver::maintain`] passes (learnt-DB halving plus level-0
//! compaction) keep hundreds-of-calls instances bounded.
//!
//! # Examples
//!
//! ```
//! use manthan3_cnf::{Lit, Var};
//! use manthan3_maxsat::{MaxSatResult, MaxSatSolver};
//!
//! let a = Var::new(0).positive();
//! let b = Var::new(1).positive();
//! let mut solver = MaxSatSolver::new();
//! solver.add_hard([a, b]);        // a ∨ b must hold
//! let s1 = solver.add_soft([!a], 1); // prefer ¬a
//! let s2 = solver.add_soft([!b], 1); // prefer ¬b
//! let result = solver.solve();
//! assert_eq!(result, MaxSatResult::Optimum { cost: 1 });
//! // Exactly one of the two soft clauses is violated.
//! assert_eq!(solver.violated_softs().len(), 1);
//! assert!(solver.violated_softs()[0] == s1 || solver.violated_softs()[0] == s2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod solver;
mod totalizer;

pub use solver::{MaxSatResult, MaxSatSolver, MaxSatStats, RepairStrategy, SoftId};
pub use totalizer::Totalizer;
