//! The deterministic benchmark suite used by the figure-regeneration
//! harness.
//!
//! The paper evaluates on 563 instances mixing equivalence checking,
//! controller synthesis and succinct propositional encodings. [`suite`]
//! builds a seeded synthetic mix of the same families whose size scales
//! linearly with the `scale` parameter (`scale = 8` yields a suite of
//! comparable cardinality to the paper's).

use crate::controller::{controller, ControllerParams};
use crate::pec::{pec, PecParams};
use crate::planted::{planted_false, planted_true, PlantedParams};
use crate::skolem::{skolem, SkolemParams};
use crate::succinct::{succinct, SuccinctParams};
use crate::{Family, Instance};
use manthan3_cnf::Var;
use manthan3_dqbf::Dqbf;

/// Builds a chain of `pairs` copies of the paper's §5 incompleteness example
/// (`∃^{x1,x2}y1 ∃^{x2,x3}y2. ¬(y1 ⊕ y2)` with incomparable dependency sets).
/// These instances are true but defeat Manthan3's repair; the expansion
/// baseline solves them easily — the source of the "missed by Manthan3"
/// population in the paper's evaluation.
fn limitation_chain(pairs: usize, seed: u64) -> Instance {
    let pairs = pairs.max(1);
    let mut dqbf = Dqbf::new();
    for p in 0..pairs {
        let base = (5 * p) as u32;
        let x = |i: u32| Var::new(base + i);
        let y = |i: u32| Var::new(base + 3 + i);
        for i in 0..3 {
            dqbf.add_universal(x(i));
        }
        dqbf.add_existential(y(0), [x(0), x(1)]);
        dqbf.add_existential(y(1), [x(1), x(2)]);
        dqbf.add_clause([y(0).positive(), y(1).negative()]);
        dqbf.add_clause([y(0).negative(), y(1).positive()]);
    }
    Instance::new(
        format!("limitation_p{pairs}_s{seed}"),
        Family::Planted,
        dqbf,
        Some(true),
    )
}

/// Builds the deterministic mixed suite.
///
/// For each unit of `scale` the suite contains, per size step, instances of
/// every family (true and false planted variants, full- and
/// restricted-observability PEC and controller variants), so the engines see
/// both realizable and unrealizable formulas of growing size.
pub fn suite(seed: u64, scale: usize) -> Vec<Instance> {
    let mut out = Vec::new();
    let scale = scale.max(1);
    for round in 0..scale as u64 {
        let base_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(round * 101);
        for step in 0..6u64 {
            let s = base_seed.wrapping_add(step * 7919);
            let size = step as usize;

            // Planted random DQBF (true and false variants). The larger
            // steps exceed the expansion baseline's universal budget while
            // keeping dependency sets small — the regime in which the
            // learning-based approach pays off.
            let planted_params = PlantedParams {
                num_universals: 4 + 3 * size,
                num_existentials: 3 + size,
                max_dependencies: (2 + size).min(5),
                drop_probability: 0.2,
                extra_universal_implications: 0,
            };
            out.push(planted_true(&planted_params, s));
            out.push(planted_false(&planted_params, s.wrapping_add(1)));

            // Partial equivalence checking.
            let pec_params = PecParams {
                num_inputs: 3 + 2 * size,
                num_gates: 4 + 2 * size,
                num_blackboxes: 1 + size / 2,
                restrict_observability: false,
            };
            out.push(pec(&pec_params, s));
            out.push(pec(
                &PecParams {
                    restrict_observability: true,
                    ..pec_params
                },
                s.wrapping_add(2),
            ));

            // Controller synthesis (full and partial observation).
            let clients = 3 + size;
            out.push(controller(
                &ControllerParams {
                    num_clients: clients,
                    observation_window: clients,
                },
                s,
            ));
            out.push(controller(
                &ControllerParams {
                    num_clients: clients,
                    observation_window: 1,
                },
                s.wrapping_add(3),
            ));

            // Succinct propositional satisfiability.
            out.push(succinct(
                &SuccinctParams {
                    num_propositional: 6 + 2 * size,
                    num_clauses: 18 + 6 * size,
                    planted_satisfiable: true,
                },
                s,
            ));

            // Skolem (full-dependency) instances.
            out.push(skolem(
                &SkolemParams {
                    num_universals: 4 + size,
                    num_existentials: 2 + size,
                    drop_probability: 0.15,
                },
                s,
            ));

            // The incompleteness family (paper §5): true instances on which
            // Manthan3's repair gets stuck while the expansion engine
            // succeeds.
            out.push(limitation_chain(1 + size / 2, s));
        }
    }
    // Make names unique even if two rounds collide.
    for (i, inst) in out.iter_mut().enumerate() {
        inst.name = format!("{:03}_{}", i, inst.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_is_deterministic() {
        let a = suite(7, 1);
        let b = suite(7, 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.dqbf, y.dqbf);
        }
    }

    #[test]
    fn suite_scales_linearly() {
        assert_eq!(suite(1, 2).len(), 2 * suite(1, 1).len());
    }

    #[test]
    fn names_are_unique_and_families_mixed() {
        let s = suite(3, 2);
        let names: HashSet<_> = s.iter().map(|i| i.name.clone()).collect();
        assert_eq!(names.len(), s.len());
        let families: HashSet<_> = s.iter().map(|i| i.family).collect();
        assert_eq!(families.len(), 5);
    }

    #[test]
    fn all_instances_are_well_formed() {
        for inst in suite(11, 1) {
            assert!(inst.dqbf.validate().is_ok(), "{}", inst.name);
            assert!(inst.dqbf.num_clauses() > 0, "{}", inst.name);
        }
    }

    #[test]
    fn suite_contains_both_true_and_false_instances() {
        let s = suite(5, 1);
        assert!(s.iter().any(|i| i.expected == Some(true)));
        assert!(s.iter().any(|i| i.expected == Some(false)));
    }
}
