//! Partial-circuit equivalence checking (PEC) instances.
//!
//! This is the classical application that motivated DQBF (Gitina et al.,
//! ICCD 2013) and one of the instance classes in the QBFEval DQBF tracks: a
//! *golden* combinational circuit is given, and in a copy of it some gates
//! are replaced by **black boxes** with limited observability. The question
//! is whether the black boxes can be implemented so that the patched circuit
//! is equivalent to the golden one — a Henkin synthesis problem in which the
//! black-box outputs are existential variables whose dependency sets are the
//! (restricted) inputs visible to the box, and all internal wires of both
//! circuits are existential variables depending on all inputs (they are
//! uniquely defined by the gate structure).

use crate::{Family, Instance};
use manthan3_cnf::{Lit, Var};
use manthan3_dqbf::Dqbf;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Parameters of the PEC generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PecParams {
    /// Number of circuit primary inputs (universal variables).
    pub num_inputs: usize,
    /// Number of gates in the golden circuit.
    pub num_gates: usize,
    /// Number of gates replaced by black boxes in the patched copy.
    pub num_blackboxes: usize,
    /// If `true`, one input is removed from each black box's dependency set,
    /// making the instance potentially (often) unrealizable.
    pub restrict_observability: bool,
}

impl Default for PecParams {
    fn default() -> Self {
        PecParams {
            num_inputs: 4,
            num_gates: 6,
            num_blackboxes: 1,
            restrict_observability: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Gate {
    a: Lit,
    b: Lit,
    is_and: bool,
}

/// Adds the CNF clauses of `out ↔ gate(a, b)`.
fn gate_clauses(dqbf: &mut Dqbf, out: Var, gate: Gate) {
    let Gate { a, b, is_and } = gate;
    if is_and {
        dqbf.add_clause([out.negative(), a]);
        dqbf.add_clause([out.negative(), b]);
        dqbf.add_clause([out.positive(), !a, !b]);
    } else {
        dqbf.add_clause([out.positive(), !a]);
        dqbf.add_clause([out.positive(), !b]);
        dqbf.add_clause([out.negative(), a, b]);
    }
}

/// Generates a PEC instance. Without observability restriction the instance
/// is true by construction (each black box can be re-implemented by its
/// original gate cone); with restriction the status is unknown (`expected =
/// None`).
pub fn pec(params: &PecParams, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9EC);
    let num_inputs = params.num_inputs.max(2);
    let num_gates = params.num_gates.max(1);
    let num_blackboxes = params.num_blackboxes.clamp(1, num_gates);

    // Variable layout:
    //   0 .. num_inputs                      : primary inputs (universal)
    //   num_inputs .. +num_gates             : golden-circuit wires
    //   .. +num_gates                        : patched-circuit wires
    let input = |i: usize| Var::new(i as u32);
    let golden_wire = |g: usize| Var::new((num_inputs + g) as u32);
    let patched_wire = |g: usize| Var::new((num_inputs + num_gates + g) as u32);

    // Random circuit structure (shared by the golden and patched copies).
    let mut gates: Vec<(usize, usize, bool, bool, bool)> = Vec::new(); // (a_sig, b_sig, na, nb, is_and)
    let mut support: Vec<BTreeSet<usize>> = Vec::new();
    for g in 0..num_gates {
        let num_signals = num_inputs + g;
        let a_sig = rng.gen_range(0..num_signals);
        let b_sig = rng.gen_range(0..num_signals);
        let (na, nb, is_and) = (rng.gen(), rng.gen(), rng.gen());
        gates.push((a_sig, b_sig, na, nb, is_and));
        let mut sup = BTreeSet::new();
        for &sig in &[a_sig, b_sig] {
            if sig < num_inputs {
                sup.insert(sig);
            } else {
                sup.extend(support[sig - num_inputs].iter().copied());
            }
        }
        support.push(sup);
    }
    let blackbox_gates: Vec<usize> = {
        let mut all: Vec<usize> = (0..num_gates).collect();
        all.shuffle(&mut rng);
        all.truncate(num_blackboxes);
        all.sort_unstable();
        all
    };

    let mut dqbf = Dqbf::new();
    for i in 0..num_inputs {
        dqbf.add_universal(input(i));
    }
    // Golden wires and non-blackbox patched wires are uniquely defined by the
    // gate structure; they depend on all inputs.
    let all_inputs: Vec<Var> = (0..num_inputs).map(input).collect();
    for g in 0..num_gates {
        dqbf.add_existential(golden_wire(g), all_inputs.iter().copied());
    }
    let mut expected = Some(true);
    for (g, gate_support) in support.iter().enumerate().take(num_gates) {
        if blackbox_gates.contains(&g) {
            // Black box: dependency set is the original cone's input support,
            // optionally restricted by one input.
            let mut deps: Vec<Var> = gate_support.iter().map(|&i| input(i)).collect();
            if deps.is_empty() {
                deps.push(input(0));
            }
            if params.restrict_observability && deps.len() > 1 {
                deps.remove(rng.gen_range(0..deps.len()));
                expected = None;
            }
            dqbf.add_existential(patched_wire(g), deps);
        } else {
            dqbf.add_existential(patched_wire(g), all_inputs.iter().copied());
        }
    }

    // Gate clauses.
    let signal = |wire: &dyn Fn(usize) -> Var, sig: usize, negate: bool| -> Lit {
        let var = if sig < num_inputs {
            input(sig)
        } else {
            wire(sig - num_inputs)
        };
        var.lit(!negate)
    };
    for (g, &(a_sig, b_sig, na, nb, is_and)) in gates.iter().enumerate() {
        gate_clauses(
            &mut dqbf,
            golden_wire(g),
            Gate {
                a: signal(&golden_wire, a_sig, na),
                b: signal(&golden_wire, b_sig, nb),
                is_and,
            },
        );
        if !blackbox_gates.contains(&g) {
            gate_clauses(
                &mut dqbf,
                patched_wire(g),
                Gate {
                    a: signal(&patched_wire, a_sig, na),
                    b: signal(&patched_wire, b_sig, nb),
                    is_and,
                },
            );
        }
    }
    // Output equivalence: the last wire of both circuits must agree.
    let out_g = golden_wire(num_gates - 1);
    let out_p = patched_wire(num_gates - 1);
    dqbf.add_clause([out_g.negative(), out_p.positive()]);
    dqbf.add_clause([out_g.positive(), out_p.negative()]);

    let kind = if params.restrict_observability {
        "restricted"
    } else {
        "full"
    };
    Instance::new(
        format!(
            "pec_{kind}_i{}_g{}_b{}_s{seed}",
            num_inputs, num_gates, num_blackboxes
        ),
        Family::PartialEquivalence,
        dqbf,
        expected,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_baselines_check::check_true_with_expansion;

    /// Tiny helper module so the test can verify "true by construction"
    /// without depending on the baselines crate (which would create a cycle):
    /// the original gate cone itself is a witness, checked by brute force.
    mod manthan3_baselines_check {
        use manthan3_dqbf::semantics::brute_force_truth;
        use manthan3_dqbf::Dqbf;

        pub fn check_true_with_expansion(dqbf: &Dqbf) -> Option<bool> {
            brute_force_truth(dqbf, 20)
        }
    }

    #[test]
    fn unrestricted_instances_are_well_formed_and_true() {
        for seed in 0..5 {
            let params = PecParams {
                num_inputs: 3,
                num_gates: 3,
                num_blackboxes: 1,
                restrict_observability: false,
            };
            let inst = pec(&params, seed);
            assert!(inst.dqbf.validate().is_ok(), "seed {seed}");
            assert_eq!(inst.expected, Some(true));
            // Small enough for the brute-force oracle: every wire is defined,
            // so table sizes stay tractable only for tiny circuits; skip when
            // the oracle refuses.
            if let Some(truth) = check_true_with_expansion(&inst.dqbf) {
                assert!(truth, "seed {seed}: PEC instance must be realizable");
            }
        }
    }

    #[test]
    fn restricted_instances_are_well_formed() {
        let params = PecParams {
            restrict_observability: true,
            ..PecParams::default()
        };
        let inst = pec(&params, 3);
        assert!(inst.dqbf.validate().is_ok());
        assert_eq!(inst.expected, None);
        assert!(inst.name.contains("restricted"));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let params = PecParams::default();
        assert_eq!(pec(&params, 9).dqbf, pec(&params, 9).dqbf);
        assert_ne!(pec(&params, 9).dqbf, pec(&params, 10).dqbf);
    }

    #[test]
    fn blackbox_dependencies_are_subsets_of_inputs() {
        let params = PecParams::default();
        let inst = pec(&params, 11);
        for &y in inst.dqbf.existentials() {
            for &d in inst.dqbf.dependencies(y) {
                assert!(inst.dqbf.is_universal(d));
            }
        }
    }
}
