//! Random gate-planted DQBF instances.
//!
//! Each existential output `y_i` receives a random dependency set `H_i` and a
//! random *planted* function `g_i` over (a subset of) `H_i`. The matrix
//! consists of the CNF clauses of `y_i ↔ g_i(H_i)` with a random fraction of
//! clauses dropped. Dropping clauses only weakens the matrix, so the planted
//! functions remain a Henkin vector and the instance is **true by
//! construction**. The false variant additionally forces one output to equal
//! a universal variable outside its dependency set, which no Henkin function
//! can achieve.

use crate::{Family, Instance};
use manthan3_cnf::{Lit, Var};
use manthan3_dqbf::Dqbf;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of the planted-random generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedParams {
    /// Number of universal variables.
    pub num_universals: usize,
    /// Number of existential outputs.
    pub num_existentials: usize,
    /// Maximum dependency-set size per output.
    pub max_dependencies: usize,
    /// Probability of dropping each gate clause.
    pub drop_probability: f64,
    /// Number of extra random clauses over the universal variables only
    /// (these never affect realizability but add matrix structure). Clauses
    /// that would be falsifiable by a universal assignment alone are
    /// tautologies over X, so we add implications between planted clauses
    /// instead; set to 0 to disable.
    pub extra_universal_implications: usize,
}

impl Default for PlantedParams {
    fn default() -> Self {
        PlantedParams {
            num_universals: 6,
            num_existentials: 4,
            max_dependencies: 3,
            drop_probability: 0.2,
            extra_universal_implications: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum GateKind {
    And,
    Or,
    Xor,
    Literal,
}

fn random_gate_clauses(
    rng: &mut SmallRng,
    y: Var,
    deps: &[Var],
    drop_probability: f64,
    out: &mut Vec<Vec<Lit>>,
) {
    // Choose the planted function shape.
    let kind = if deps.len() < 2 {
        GateKind::Literal
    } else {
        *[
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Literal,
        ]
        .choose(rng)
        .expect("non-empty")
    };
    let a_var = deps.choose(rng).copied();
    let b_var = deps.choose(rng).copied();
    let polarity_a: bool = rng.gen();
    let polarity_b: bool = rng.gen();
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    match (kind, a_var, b_var) {
        (_, None, _) => {
            // No dependencies: plant a constant.
            let value: bool = rng.gen();
            clauses.push(vec![y.lit(value)]);
        }
        (GateKind::Literal, Some(a), _) => {
            let a = a.lit(polarity_a);
            clauses.push(vec![!a, y.positive()]);
            clauses.push(vec![a, y.negative()]);
        }
        (GateKind::And, Some(a), Some(b)) => {
            let (a, b) = (a.lit(polarity_a), b.lit(polarity_b));
            clauses.push(vec![y.negative(), a]);
            clauses.push(vec![y.negative(), b]);
            clauses.push(vec![y.positive(), !a, !b]);
        }
        (GateKind::Or, Some(a), Some(b)) => {
            let (a, b) = (a.lit(polarity_a), b.lit(polarity_b));
            clauses.push(vec![y.positive(), !a]);
            clauses.push(vec![y.positive(), !b]);
            clauses.push(vec![y.negative(), a, b]);
        }
        (GateKind::Xor, Some(a), Some(b)) => {
            let (a, b) = (a.lit(polarity_a), b.lit(polarity_b));
            clauses.push(vec![y.negative(), a, b]);
            clauses.push(vec![y.negative(), !a, !b]);
            clauses.push(vec![y.positive(), a, !b]);
            clauses.push(vec![y.positive(), !a, b]);
        }
        _ => unreachable!("two dependencies available for binary gates"),
    }
    for clause in clauses {
        if rng.gen::<f64>() >= drop_probability {
            out.push(clause);
        }
    }
}

fn build(params: &PlantedParams, seed: u64, make_false: bool) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut dqbf = Dqbf::new();
    let xs: Vec<Var> = (0..params.num_universals as u32).map(Var::new).collect();
    for &x in &xs {
        dqbf.add_universal(x);
    }
    let ys: Vec<Var> = (0..params.num_existentials as u32)
        .map(|i| Var::new(params.num_universals as u32 + i))
        .collect();

    let mut clause_buffer: Vec<Vec<Lit>> = Vec::new();
    let mut dep_sets: Vec<Vec<Var>> = Vec::new();
    for &y in &ys {
        let size = rng.gen_range(1..=params.max_dependencies.min(xs.len()).max(1));
        let mut deps = xs.clone();
        deps.shuffle(&mut rng);
        deps.truncate(size);
        deps.sort();
        dqbf.add_existential(y, deps.iter().copied());
        random_gate_clauses(
            &mut rng,
            y,
            &deps,
            params.drop_probability,
            &mut clause_buffer,
        );
        dep_sets.push(deps);
    }

    let mut expected = Some(true);
    if make_false {
        // Force one output to equal a universal variable it cannot observe.
        let victim_index = rng.gen_range(0..ys.len());
        let victim = ys[victim_index];
        let outside: Vec<Var> = xs
            .iter()
            .copied()
            .filter(|x| !dep_sets[victim_index].contains(x))
            .collect();
        if let Some(&hidden) = outside.first() {
            clause_buffer.push(vec![victim.negative(), hidden.positive()]);
            clause_buffer.push(vec![victim.positive(), hidden.negative()]);
            expected = Some(false);
        }
    }

    for clause in clause_buffer {
        dqbf.add_clause(clause);
    }
    let kind = if make_false { "false" } else { "true" };
    Instance::new(
        format!(
            "planted_{kind}_x{}_y{}_s{seed}",
            params.num_universals, params.num_existentials
        ),
        Family::Planted,
        dqbf,
        expected,
    )
}

/// Generates a guaranteed-true planted instance.
pub fn planted_true(params: &PlantedParams, seed: u64) -> Instance {
    build(params, seed, false)
}

/// Generates a guaranteed-false planted instance (one output is forced to
/// copy a universal variable outside its dependency set).
///
/// Falls back to a true instance when every output happens to depend on all
/// universals (the `expected` field then says `Some(true)`).
pub fn planted_false(params: &PlantedParams, seed: u64) -> Instance {
    build(params, seed, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_dqbf::semantics::brute_force_truth;

    #[test]
    fn true_instances_are_true() {
        for seed in 0..10 {
            let params = PlantedParams {
                num_universals: 3,
                num_existentials: 2,
                max_dependencies: 2,
                ..PlantedParams::default()
            };
            let inst = planted_true(&params, seed);
            assert!(inst.dqbf.validate().is_ok());
            assert_eq!(inst.expected, Some(true));
            assert_eq!(brute_force_truth(&inst.dqbf, 16), Some(true), "seed {seed}");
        }
    }

    #[test]
    fn false_instances_are_false() {
        for seed in 0..10 {
            let params = PlantedParams {
                num_universals: 3,
                num_existentials: 2,
                max_dependencies: 2,
                ..PlantedParams::default()
            };
            let inst = planted_false(&params, seed);
            assert!(inst.dqbf.validate().is_ok());
            if inst.expected == Some(false) {
                assert_eq!(
                    brute_force_truth(&inst.dqbf, 16),
                    Some(false),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let params = PlantedParams::default();
        let a = planted_true(&params, 42);
        let b = planted_true(&params, 42);
        assert_eq!(a.name, b.name);
        assert_eq!(a.dqbf, b.dqbf);
    }

    #[test]
    fn names_include_seed_and_sizes() {
        let inst = planted_true(&PlantedParams::default(), 5);
        assert!(inst.name.contains("x6"));
        assert!(inst.name.contains("s5"));
    }
}
