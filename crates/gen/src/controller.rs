//! Controller synthesis instances: a request/grant arbiter with partial
//! observation.
//!
//! `k` clients issue requests `r_1..r_k` (universal). The controller must
//! produce grants `g_1..g_k` (existential), but grant `g_i` may only observe
//! a window of `w` request lines starting at its own. The safety/serviceability
//! specification is:
//!
//! * a grant is only given to a requesting client: `g_i → r_i`,
//! * grants are mutually exclusive: `¬g_i ∨ ¬g_j`,
//! * every request is answered by *some* grant: `r_i → (g_1 ∨ … ∨ g_k)`.
//!
//! With full observation (`w = k`) a priority arbiter realizes the
//! specification, so the instance is true. With a strict window the grants
//! cannot coordinate and (for `k ≥ 2`) the specification is unrealizable —
//! the classic "distributed synthesis needs information" phenomenon that
//! DQBF captures and QBF cannot.

use crate::{Family, Instance};
use manthan3_cnf::Var;
use manthan3_dqbf::Dqbf;

/// Parameters of the controller generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerParams {
    /// Number of clients (request/grant pairs).
    pub num_clients: usize,
    /// Number of consecutive request lines each grant can observe (starting
    /// from its own index, wrapping around).
    pub observation_window: usize,
}

impl Default for ControllerParams {
    fn default() -> Self {
        ControllerParams {
            num_clients: 4,
            observation_window: 4,
        }
    }
}

/// Generates a request/grant controller instance.
///
/// The `seed` only influences the instance name (the construction is
/// deterministic given the parameters); it is kept for interface uniformity
/// with the other generators.
pub fn controller(params: &ControllerParams, seed: u64) -> Instance {
    let k = params.num_clients.max(1);
    let w = params.observation_window.clamp(1, k);
    let request = |i: usize| Var::new(i as u32);
    let grant = |i: usize| Var::new((k + i) as u32);

    let mut dqbf = Dqbf::new();
    for i in 0..k {
        dqbf.add_universal(request(i));
    }
    for i in 0..k {
        let deps: Vec<Var> = (0..w).map(|offset| request((i + offset) % k)).collect();
        dqbf.add_existential(grant(i), deps);
    }
    // g_i → r_i
    for i in 0..k {
        dqbf.add_clause([grant(i).negative(), request(i).positive()]);
    }
    // mutual exclusion
    for i in 0..k {
        for j in (i + 1)..k {
            dqbf.add_clause([grant(i).negative(), grant(j).negative()]);
        }
    }
    // every request is answered by some grant
    for i in 0..k {
        let mut clause = vec![request(i).negative()];
        clause.extend((0..k).map(|j| grant(j).positive()));
        dqbf.add_clause(clause);
    }

    let expected = if w == k || k == 1 {
        // A priority arbiter over the full request vector realizes the spec.
        Some(true)
    } else if w == 1 {
        // With purely local observation every requested client must be
        // granted (consider the input where only that client requests), which
        // violates mutual exclusion as soon as two clients request.
        Some(false)
    } else {
        // Intermediate windows: status depends on k and w; left to the
        // engines / the brute-force oracle.
        None
    };
    Instance::new(
        format!("controller_k{k}_w{w}_s{seed}"),
        Family::Controller,
        dqbf,
        expected,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_dqbf::semantics::brute_force_truth;

    #[test]
    fn full_observation_is_realizable() {
        let params = ControllerParams {
            num_clients: 3,
            observation_window: 3,
        };
        let inst = controller(&params, 0);
        assert!(inst.dqbf.validate().is_ok());
        assert_eq!(inst.expected, Some(true));
        assert_eq!(brute_force_truth(&inst.dqbf, 30), Some(true));
    }

    #[test]
    fn partial_observation_is_unrealizable() {
        let params = ControllerParams {
            num_clients: 3,
            observation_window: 1,
        };
        let inst = controller(&params, 0);
        assert_eq!(inst.expected, Some(false));
        assert_eq!(brute_force_truth(&inst.dqbf, 30), Some(false));
    }

    #[test]
    fn intermediate_window_is_left_to_the_oracle() {
        let params = ControllerParams {
            num_clients: 3,
            observation_window: 2,
        };
        let inst = controller(&params, 0);
        assert_eq!(inst.expected, None);
        // Whatever the status is, the brute-force oracle can decide it on
        // this size, and the generator must not contradict it.
        assert!(brute_force_truth(&inst.dqbf, 30).is_some());
    }

    #[test]
    fn single_client_is_trivially_realizable() {
        let params = ControllerParams {
            num_clients: 1,
            observation_window: 1,
        };
        let inst = controller(&params, 0);
        assert_eq!(brute_force_truth(&inst.dqbf, 30), Some(true));
        assert_eq!(inst.expected, Some(true));
    }

    #[test]
    fn grant_dependencies_follow_the_window() {
        let params = ControllerParams {
            num_clients: 4,
            observation_window: 2,
        };
        let inst = controller(&params, 0);
        let g0 = Var::new(4);
        let deps = inst.dqbf.dependencies(g0);
        assert!(deps.contains(&Var::new(0)));
        assert!(deps.contains(&Var::new(1)));
        assert!(!deps.contains(&Var::new(2)));
    }
}
