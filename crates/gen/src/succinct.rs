//! Succinct DQBF encodings of propositional satisfiability.
//!
//! The QBFEval DQBF tracks contain instances that wrap plain propositional
//! satisfiability problems in DQBF form. The simplest such wrapping — used
//! here — makes every propositional variable an existential output with an
//! **empty** dependency set: the DQBF is true iff the underlying CNF is
//! satisfiable, and the Henkin functions are the constants of a satisfying
//! assignment. A handful of universal "environment" variables can be mixed
//! into the clauses as don't-care inputs.

use crate::{Family, Instance};
use manthan3_cnf::{Lit, Var};
use manthan3_dqbf::Dqbf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the succinct-SAT generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SuccinctParams {
    /// Number of propositional (existential, zero-dependency) variables.
    pub num_propositional: usize,
    /// Number of clauses of the underlying random 3-CNF.
    pub num_clauses: usize,
    /// If `true`, the CNF is planted to be satisfiable (clauses are filtered
    /// against a hidden assignment); otherwise the status is whatever the
    /// random CNF happens to be.
    pub planted_satisfiable: bool,
}

impl Default for SuccinctParams {
    fn default() -> Self {
        SuccinctParams {
            num_propositional: 8,
            num_clauses: 24,
            planted_satisfiable: true,
        }
    }
}

/// Generates a succinct-SAT instance.
pub fn succinct(params: &SuccinctParams, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x50CC);
    let n = params.num_propositional.max(2);
    let z = |i: usize| Var::new(i as u32);
    let hidden: Vec<bool> = (0..n).map(|_| rng.gen()).collect();

    let mut dqbf = Dqbf::new();
    for i in 0..n {
        dqbf.add_existential(z(i), []);
    }
    let mut clauses = 0usize;
    let mut guard = 0usize;
    while clauses < params.num_clauses && guard < params.num_clauses * 20 {
        guard += 1;
        let clause: Vec<Lit> = (0..3)
            .map(|_| {
                let v = rng.gen_range(0..n);
                Lit::new(z(v), rng.gen())
            })
            .collect();
        if params.planted_satisfiable {
            let satisfied = clause
                .iter()
                .any(|l| hidden[l.var().index()] == l.is_positive());
            if !satisfied {
                continue;
            }
        }
        dqbf.add_clause(clause);
        clauses += 1;
    }
    let expected = if params.planted_satisfiable {
        Some(true)
    } else {
        None
    };
    Instance::new(
        format!("succinct_n{n}_c{}_s{seed}", params.num_clauses),
        Family::Succinct,
        dqbf,
        expected,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_dqbf::semantics::brute_force_truth;

    #[test]
    fn planted_instances_are_true() {
        let params = SuccinctParams {
            num_propositional: 4,
            num_clauses: 8,
            planted_satisfiable: true,
        };
        for seed in 0..5 {
            let inst = succinct(&params, seed);
            assert!(inst.dqbf.validate().is_ok());
            assert_eq!(inst.expected, Some(true));
            assert_eq!(brute_force_truth(&inst.dqbf, 16), Some(true), "seed {seed}");
        }
    }

    #[test]
    fn dependency_sets_are_empty() {
        let inst = succinct(&SuccinctParams::default(), 1);
        for &y in inst.dqbf.existentials() {
            assert!(inst.dqbf.dependencies(y).is_empty());
        }
        assert!(inst.dqbf.universals().is_empty());
    }

    #[test]
    fn unplanted_instances_have_unknown_status() {
        let params = SuccinctParams {
            planted_satisfiable: false,
            ..SuccinctParams::default()
        };
        assert_eq!(succinct(&params, 0).expected, None);
    }
}
