//! Full-dependency (Skolem) instances.
//!
//! When every dependency set equals the full universal set the DQBF is an
//! ordinary 2-QBF and Henkin synthesis degenerates to Skolem synthesis (the
//! problem solved by the original Manthan). These instances exercise exactly
//! that degenerate path and give the expansion baseline its hardest time
//! (the number of copies per output is `2^|X|`).

use crate::planted::{planted_true, PlantedParams};
use crate::{Family, Instance};

/// Parameters of the Skolem generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SkolemParams {
    /// Number of universal variables.
    pub num_universals: usize,
    /// Number of existential outputs.
    pub num_existentials: usize,
    /// Probability of dropping each gate clause.
    pub drop_probability: f64,
}

impl Default for SkolemParams {
    fn default() -> Self {
        SkolemParams {
            num_universals: 5,
            num_existentials: 3,
            drop_probability: 0.15,
        }
    }
}

/// Generates a guaranteed-true Skolem (full-dependency) instance.
pub fn skolem(params: &SkolemParams, seed: u64) -> Instance {
    let planted = PlantedParams {
        num_universals: params.num_universals,
        num_existentials: params.num_existentials,
        max_dependencies: params.num_universals,
        drop_probability: params.drop_probability,
        extra_universal_implications: 0,
    };
    let base = planted_true(&planted, seed ^ 0x5C01E);
    // Re-declare every output with the full dependency set.
    let mut dqbf = manthan3_dqbf::Dqbf::new();
    for &x in base.dqbf.universals() {
        dqbf.add_universal(x);
    }
    let all: Vec<_> = base.dqbf.universals().to_vec();
    for &y in base.dqbf.existentials() {
        dqbf.add_existential(y, all.iter().copied());
    }
    for clause in base.dqbf.matrix().clauses() {
        dqbf.add_clause(clause.iter().copied());
    }
    Instance::new(
        format!(
            "skolem_x{}_y{}_s{seed}",
            params.num_universals, params.num_existentials
        ),
        Family::Skolem,
        dqbf,
        Some(true),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_skolem_and_true() {
        let inst = skolem(&SkolemParams::default(), 3);
        assert!(inst.dqbf.validate().is_ok());
        assert!(inst.dqbf.is_skolem());
        assert_eq!(inst.expected, Some(true));
        assert_eq!(inst.family, Family::Skolem);
    }

    #[test]
    fn small_instances_verified_by_brute_force() {
        use manthan3_dqbf::semantics::brute_force_truth;
        let params = SkolemParams {
            num_universals: 2,
            num_existentials: 2,
            drop_probability: 0.0,
        };
        for seed in 0..5 {
            let inst = skolem(&params, seed);
            assert_eq!(brute_force_truth(&inst.dqbf, 16), Some(true), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_generation() {
        let params = SkolemParams::default();
        assert_eq!(skolem(&params, 1).dqbf, skolem(&params, 1).dqbf);
    }
}
