//! Synthetic DQBF benchmark instance generators.
//!
//! The paper evaluates Manthan3 on 563 instances from the DQBF tracks of
//! QBFEval'18/'19/'20, which "encompass equivalence checking problems,
//! controller synthesis, and succinct DQBF representations of propositional
//! satisfiability problems". Those archives are not redistributable here, so
//! this crate generates *seeded synthetic instances of the same families*
//! (see DESIGN.md §3 for the substitution rationale):
//!
//! * [`pec`] — equivalence checking of partial circuits: a random AIG-style
//!   circuit with some gates blanked out as black boxes whose outputs are
//!   existential with restricted dependencies,
//! * [`controller`] — request/grant controller synthesis under partial
//!   observation,
//! * [`planted`] — random gate-defined outputs with dropped clauses
//!   (guaranteed-true) and dependency-violating variants (guaranteed-false),
//! * [`succinct`] — propositional satisfiability wrapped as DQBF with empty
//!   dependency sets,
//! * [`skolem`] — full-dependency (2-QBF / Skolem) instances.
//!
//! [`suite::suite`] builds the deterministic mixed benchmark set used by the
//! harness that regenerates the paper's figures.
//!
//! # Examples
//!
//! ```
//! use manthan3_gen::{planted, suite};
//!
//! let instance = planted::planted_true(&planted::PlantedParams::default(), 7);
//! assert_eq!(instance.expected, Some(true));
//! assert!(instance.dqbf.validate().is_ok());
//!
//! let small_suite = suite::suite(1, 1);
//! assert!(!small_suite.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod pec;
pub mod planted;
pub mod skolem;
pub mod succinct;
pub mod suite;

use manthan3_dqbf::Dqbf;
use std::fmt;

/// The benchmark family an instance belongs to (mirrors the instance classes
/// named in the paper's evaluation section).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Equivalence checking of partial circuits.
    PartialEquivalence,
    /// Controller synthesis with partial observation.
    Controller,
    /// Random gate-planted DQBF.
    Planted,
    /// Succinct DQBF encodings of propositional satisfiability.
    Succinct,
    /// Full-dependency (Skolem) instances.
    Skolem,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Family::PartialEquivalence => "pec",
            Family::Controller => "controller",
            Family::Planted => "planted",
            Family::Succinct => "succinct",
            Family::Skolem => "skolem",
        };
        write!(f, "{name}")
    }
}

/// One benchmark instance: a formula plus metadata used by the harness.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Unique, human-readable name (stable across runs for a fixed seed).
    pub name: String,
    /// Family of the instance.
    pub family: Family,
    /// The formula.
    pub dqbf: Dqbf,
    /// Ground-truth status if the generator knows it by construction
    /// (`Some(true)` / `Some(false)`), `None` otherwise.
    pub expected: Option<bool>,
}

impl Instance {
    /// Creates an instance.
    pub fn new(
        name: impl Into<String>,
        family: Family,
        dqbf: Dqbf,
        expected: Option<bool>,
    ) -> Self {
        Instance {
            name: name.into(),
            family,
            dqbf,
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_are_short() {
        assert_eq!(Family::PartialEquivalence.to_string(), "pec");
        assert_eq!(Family::Controller.to_string(), "controller");
        assert_eq!(Family::Planted.to_string(), "planted");
        assert_eq!(Family::Succinct.to_string(), "succinct");
        assert_eq!(Family::Skolem.to_string(), "skolem");
    }

    #[test]
    fn instance_constructor_stores_fields() {
        let i = Instance::new("x", Family::Planted, Dqbf::paper_example(), Some(true));
        assert_eq!(i.name, "x");
        assert_eq!(i.family, Family::Planted);
        assert_eq!(i.expected, Some(true));
    }
}
