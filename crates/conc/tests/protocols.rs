//! The protocol suite as tests: every correct variant passes exhaustively,
//! every broken variant yields a counterexample with a non-empty trace.

use manthan3_conc::protocols::{budget, cancellation, decisive_win, suite, ticket};

#[test]
fn decisive_win_relaxed_swap_has_exactly_one_winner() {
    let report = decisive_win::check_correct().expect("relaxed swap is sufficient");
    assert!(report.executions > 0);
}

#[test]
fn decisive_win_load_then_store_double_wins() {
    let violation = decisive_win::check_broken().expect_err("non-atomic claim must fail");
    assert!(
        violation.message.contains("claimed the decisive win"),
        "{violation}"
    );
    assert!(!violation.trace.is_empty());
}

#[test]
fn cancellation_release_acquire_is_visible_and_eventually_observed() {
    let report = cancellation::check_correct().expect("release/acquire publish is sound");
    assert!(report.executions > 0);
}

#[test]
fn cancellation_relaxed_publish_leaks_stale_result() {
    let violation = cancellation::check_broken().expect_err("relaxed publish must fail");
    assert!(violation.message.contains("stale result"), "{violation}");
}

#[test]
fn budget_fetch_update_admits_exactly_the_limit() {
    let report = budget::check_correct().expect("CAS admission is sound");
    assert!(report.executions > 0);
}

#[test]
fn budget_check_then_add_over_admits() {
    let violation = budget::check_broken().expect_err("check-then-act must fail");
    assert!(violation.message.contains("over-admitted"), "{violation}");
}

#[test]
fn ticket_relaxed_fetch_add_is_unique() {
    let report = ticket::check_correct().expect("relaxed fetch_add tickets are unique");
    assert!(report.executions > 0);
}

#[test]
fn ticket_non_atomic_increment_duplicates() {
    let violation = ticket::check_broken().expect_err("non-atomic increment must fail");
    assert!(violation.message.contains("same ticket"), "{violation}");
}

#[test]
fn suite_outcomes_match_expectations() {
    for check in suite() {
        let outcome = (check.run)();
        assert_eq!(
            outcome.is_err(),
            check.expect_violation,
            "{}: unexpected outcome {:?}",
            check.name,
            outcome.err().map(|v| v.message)
        );
    }
}
