//! manthan3-conc: exhaustive interleaving checker.

#![forbid(unsafe_code)]

pub mod model;
pub mod protocols;
