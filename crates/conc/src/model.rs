//! A small operational model of C11 release/acquire atomics plus an
//! exhaustive DFS explorer over thread interleavings — the loom-style core
//! the protocol checks run on.
//!
//! # Memory model
//!
//! Each atomic location carries a *modification order*: the list of stores
//! ever made to it, oldest first. Each thread carries a *view*: for every
//! location, the index of the newest store it is aware of. The rules:
//!
//! - A **load** may read any store at index `>= view[loc]` (coherence: a
//!   thread never observes a location moving backwards). Reading index `k`
//!   advances `view[loc]` to `k`. An **Acquire** load that reads a store
//!   carrying a release view *joins* that view into the thread's own —
//!   everything the releasing thread had seen becomes visible.
//! - A **store** appends to the modification order. A **Release** store
//!   attaches the storing thread's current view to the new store.
//! - An **RMW** (swap / fetch_add / fetch_update) reads the *latest* store
//!   (atomicity), then appends. Release views propagate through RMWs even
//!   when the RMW itself is Relaxed (release sequences), so an Acquire load
//!   of the final RMW in a chain still synchronizes with the head.
//! - **SeqCst** is modeled as AcqRel: the single total order is *not*
//!   modeled. This makes the checker strictly more permissive than real
//!   hardware, so "protocol passes" remains a sound claim; it cannot verify
//!   protocols that genuinely need SC ordering (none in this workspace do).
//!
//! # Exploration
//!
//! Threads are step functions over a shared [`Exec`]; each step performs at
//! most one atomic operation. The explorer does DFS over (system state,
//! memory state), deduplicating via hashing. Because a load either advances
//! a view (progress) or reproduces an already-visited state (pruned), poll
//! loops like `while !cancelled { … }` yield a *finite* state graph: the
//! stale-read cycle is pruned, which is exactly the fairness assumption
//! "a cancelled flag is eventually observed".

use std::collections::HashSet;
use std::hash::Hash;

/// Atomic memory ordering, mirroring `std::sync::atomic::Ordering`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ord {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Ord {
    fn acquires(self) -> bool {
        matches!(self, Ord::Acquire | Ord::AcqRel | Ord::SeqCst)
    }

    fn releases(self) -> bool {
        matches!(self, Ord::Release | Ord::AcqRel | Ord::SeqCst)
    }
}

/// A thread's view: per location, the index of the newest store it knows of.
pub type View = Vec<u32>;

fn join(a: &mut View, b: &View) {
    for (x, y) in a.iter_mut().zip(b) {
        *x = (*x).max(*y);
    }
}

/// One store in a location's modification order. `view` is the release view
/// readers synchronize with on an Acquire load (None for relaxed stores that
/// continue no release sequence).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Store {
    pub value: u64,
    pub view: Option<View>,
}

/// The shared-memory state: modification orders plus per-thread views.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Exec {
    mods: Vec<Vec<Store>>,
    views: Vec<View>,
}

impl Exec {
    /// `locs` atomics (all initialized to 0) shared by `threads` threads.
    pub fn new(locs: usize, threads: usize) -> Exec {
        Exec {
            mods: vec![
                vec![Store {
                    value: 0,
                    view: None
                }];
                locs
            ],
            views: vec![vec![0; locs]; threads],
        }
    }

    /// The newest value of `loc` — for final-state ("god's eye") assertions
    /// only; threads must go through [`Ctx`].
    pub fn latest(&self, loc: usize) -> u64 {
        // invariant: every location's modification order starts non-empty.
        self.mods[loc]
            .last()
            .expect("modification order is never empty")
            .value
    }
}

/// The handle a thread's step function uses to touch shared memory. Each
/// step may perform at most one atomic operation (the explorer branches on
/// the choices *within* one operation).
pub struct Ctx<'a> {
    exec: &'a mut Exec,
    tid: usize,
    choice: usize,
    options: usize,
}

impl Ctx<'_> {
    fn readable(&self, loc: usize) -> std::ops::Range<usize> {
        self.exec.views[self.tid][loc] as usize..self.exec.mods[loc].len()
    }

    /// An atomic load. This is the model's branch point: every store the
    /// thread may coherently read spawns a schedule.
    pub fn load(&mut self, loc: usize, ord: Ord) -> u64 {
        let range = self.readable(loc);
        self.options = range.len();
        let index = (range.start + self.choice).min(range.end - 1);
        self.read_at(loc, index, ord)
    }

    /// A load forced to see the newest store — the explorer uses this to
    /// model a *fair* final poll (the "eventually observes" assumption) when
    /// a protocol needs it explicitly; normal polls should use [`Ctx::load`].
    pub fn load_latest(&mut self, loc: usize, ord: Ord) -> u64 {
        let index = self.exec.mods[loc].len() - 1;
        self.read_at(loc, index, ord)
    }

    fn read_at(&mut self, loc: usize, index: usize, ord: Ord) -> u64 {
        let store = self.exec.mods[loc][index].clone();
        let view = &mut self.exec.views[self.tid];
        view[loc] = view[loc].max(index as u32);
        if ord.acquires() {
            if let Some(release_view) = &store.view {
                join(view, release_view);
            }
        }
        store.value
    }

    /// An atomic store.
    pub fn store(&mut self, loc: usize, value: u64, ord: Ord) {
        let index = self.exec.mods[loc].len() as u32;
        self.exec.views[self.tid][loc] = index;
        let view = ord.releases().then(|| self.exec.views[self.tid].clone());
        self.exec.mods[loc].push(Store { value, view });
    }

    /// `swap`: an RMW returning the previous value.
    pub fn swap(&mut self, loc: usize, value: u64, ord: Ord) -> u64 {
        // invariant: rmw applies a total function, so it always stores.
        self.rmw(loc, ord, ord, |_| Some(value))
            .expect("unconditional rmw always succeeds")
    }

    /// `fetch_add`: an RMW returning the previous value.
    pub fn fetch_add(&mut self, loc: usize, add: u64, ord: Ord) -> u64 {
        // invariant: rmw applies a total function, so it always stores.
        self.rmw(loc, ord, ord, |v| Some(v + add))
            .expect("unconditional rmw always succeeds")
    }

    /// `fetch_update`: reads the latest store (RMW atomicity), applies `f`,
    /// and stores on `Some`. Returns `Ok(prev)` on success, `Err(prev)` when
    /// `f` declined.
    pub fn rmw(
        &mut self,
        loc: usize,
        success: Ord,
        failure: Ord,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> Result<u64, u64> {
        let index = self.exec.mods[loc].len() - 1;
        let prev = self.exec.mods[loc][index].clone();
        let Some(next) = f(prev.value) else {
            self.read_at(loc, index, failure);
            return Err(prev.value);
        };
        self.read_at(loc, index, success);
        // Release sequence: the new store inherits the chain's release view
        // even if this RMW is relaxed; a releasing RMW joins its own view in.
        let mut release_view = prev.view.clone();
        if success.releases() {
            let own = self.exec.views[self.tid].clone();
            match &mut release_view {
                Some(v) => join(v, &own),
                None => release_view = Some(own),
            }
        }
        let new_index = self.exec.mods[loc].len() as u32;
        self.exec.views[self.tid][loc] = new_index;
        self.exec.mods[loc].push(Store {
            value: next,
            view: release_view,
        });
        Ok(prev.value)
    }
}

/// A model-checked system: per-thread step functions plus assertions. The
/// whole system state (program counters, ghost variables) lives in `Self`,
/// which must be cheap to clone and hash.
pub trait System: Clone + Eq + Hash {
    /// Number of threads.
    fn threads(&self) -> usize;
    /// Number of atomic locations.
    fn locs(&self) -> usize;
    /// `true` when thread `tid` has finished.
    fn done(&self, tid: usize) -> bool;
    /// Advance thread `tid` by one step (at most one atomic operation).
    fn step(&mut self, tid: usize, ctx: &mut Ctx<'_>);
    /// Safety invariant checked in every explored state.
    fn invariant(&self, _exec: &Exec) -> Result<(), String> {
        Ok(())
    }
    /// Assertion checked in every terminal state (all threads done).
    fn finalize(&self, _exec: &Exec) -> Result<(), String> {
        Ok(())
    }
}

/// Exploration statistics for a passing check.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct (system, memory) states visited.
    pub states: usize,
    /// Terminal states (complete executions) reached.
    pub executions: usize,
}

/// A failing check: the violated assertion plus one schedule reaching it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The assertion message.
    pub message: String,
    /// Human-readable schedule: one line per step from the initial state.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.message)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:3}. {step}")?;
        }
        std::fmt::Result::Ok(())
    }
}

/// Exhaustively explores every interleaving (and every coherent load result)
/// of `initial`, checking invariants in every state and `finalize` in every
/// terminal state.
pub fn explore<S: System>(initial: S) -> Result<Report, Violation> {
    let exec = Exec::new(initial.locs(), initial.threads());
    let mut visited: HashSet<(S, Exec)> = HashSet::new();
    let mut stack: Vec<(S, Exec, Vec<String>)> = Vec::new();
    let mut executions = 0usize;
    visited.insert((initial.clone(), exec.clone()));
    stack.push((initial, exec, Vec::new()));
    while let Some((system, exec, trace)) = stack.pop() {
        if let Err(message) = system.invariant(&exec) {
            return Err(Violation { message, trace });
        }
        let runnable: Vec<usize> = (0..system.threads())
            .filter(|&tid| !system.done(tid))
            .collect();
        if runnable.is_empty() {
            executions += 1;
            if let Err(message) = system.finalize(&exec) {
                return Err(Violation { message, trace });
            }
            continue;
        }
        for tid in runnable {
            let mut choice = 0usize;
            loop {
                let mut next_system = system.clone();
                let mut next_exec = exec.clone();
                let mut ctx = Ctx {
                    exec: &mut next_exec,
                    tid,
                    choice,
                    options: 1,
                };
                next_system.step(tid, &mut ctx);
                let options = ctx.options;
                if visited.insert((next_system.clone(), next_exec.clone())) {
                    let mut next_trace = trace.clone();
                    next_trace.push(if options > 1 {
                        format!("thread {tid} steps (read choice {choice}/{options})")
                    } else {
                        format!("thread {tid} steps")
                    });
                    stack.push((next_system, next_exec, next_trace));
                }
                choice += 1;
                if choice >= options {
                    break;
                }
            }
        }
    }
    Ok(Report {
        states: visited.len(),
        executions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Message passing: data (loc 0) then flag (loc 1); reader checks that
    /// acquiring the flag makes the data visible, and that a relaxed flag
    /// does not.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct MessagePassing {
        publish: Ord,
        consume: Ord,
        pc: [u8; 2],
        saw_flag: bool,
        data: Option<u64>,
    }

    impl MessagePassing {
        fn new(publish: Ord, consume: Ord) -> MessagePassing {
            MessagePassing {
                publish,
                consume,
                pc: [0; 2],
                saw_flag: false,
                data: None,
            }
        }
    }

    impl System for MessagePassing {
        fn threads(&self) -> usize {
            2
        }
        fn locs(&self) -> usize {
            2
        }
        fn done(&self, tid: usize) -> bool {
            self.pc[tid] >= 2
        }
        fn step(&mut self, tid: usize, ctx: &mut Ctx<'_>) {
            match (tid, self.pc[tid]) {
                (0, 0) => ctx.store(0, 7, Ord::Relaxed),
                (0, 1) => ctx.store(1, 1, self.publish),
                (1, 0) => {
                    if ctx.load(1, self.consume) == 1 {
                        self.saw_flag = true;
                    } else {
                        // Not yet: finish without reading the data.
                        self.pc[tid] = 1;
                    }
                }
                (1, 1) => {
                    if self.saw_flag {
                        self.data = Some(ctx.load(0, Ord::Relaxed));
                    }
                }
                _ => unreachable!("stepped a finished thread"),
            }
            self.pc[tid] += 1;
        }
        fn finalize(&self, _exec: &Exec) -> Result<(), String> {
            if self.saw_flag && self.data != Some(7) {
                return Err(format!("flag seen but data read {:?}", self.data));
            }
            Ok(())
        }
    }

    #[test]
    fn release_acquire_message_passing_holds() {
        let report = explore(MessagePassing::new(Ord::Release, Ord::Acquire)).expect("passes");
        assert!(report.executions > 0);
    }

    #[test]
    fn relaxed_message_passing_fails() {
        let violation =
            explore(MessagePassing::new(Ord::Relaxed, Ord::Acquire)).expect_err("must fail");
        assert!(violation.message.contains("data read"));
        assert!(!violation.trace.is_empty());
    }

    /// Coherence: after a thread reads the newest store, it can never read
    /// an older one (views are monotone).
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Coherence {
        pc: [u8; 1],
        reads: [u64; 2],
    }

    impl System for Coherence {
        fn threads(&self) -> usize {
            1
        }
        fn locs(&self) -> usize {
            1
        }
        fn done(&self, tid: usize) -> bool {
            self.pc[tid] >= 3
        }
        fn step(&mut self, tid: usize, ctx: &mut Ctx<'_>) {
            match self.pc[tid] {
                0 => ctx.store(0, 5, Ord::Relaxed),
                1 => self.reads[0] = ctx.load(0, Ord::Relaxed),
                2 => self.reads[1] = ctx.load(0, Ord::Relaxed),
                _ => unreachable!("stepped a finished thread"),
            }
            self.pc[tid] += 1;
        }
        fn finalize(&self, _exec: &Exec) -> Result<(), String> {
            if self.reads != [5, 5] {
                return Err(format!("own store not observed: {:?}", self.reads));
            }
            Ok(())
        }
    }

    #[test]
    fn threads_observe_their_own_stores() {
        explore(Coherence {
            pc: [0],
            reads: [0; 2],
        })
        .expect("coherence holds");
    }

    /// RMW atomicity: two relaxed fetch_adds never lose an increment.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Counter {
        pc: [u8; 2],
    }

    impl System for Counter {
        fn threads(&self) -> usize {
            2
        }
        fn locs(&self) -> usize {
            1
        }
        fn done(&self, tid: usize) -> bool {
            self.pc[tid] >= 1
        }
        fn step(&mut self, tid: usize, ctx: &mut Ctx<'_>) {
            ctx.fetch_add(0, 1, Ord::Relaxed);
            self.pc[tid] += 1;
        }
        fn finalize(&self, exec: &Exec) -> Result<(), String> {
            if exec.latest(0) != 2 {
                return Err(format!("lost increment: {}", exec.latest(0)));
            }
            Ok(())
        }
    }

    #[test]
    fn rmw_increments_are_never_lost() {
        explore(Counter { pc: [0; 2] }).expect("atomic");
    }
}
