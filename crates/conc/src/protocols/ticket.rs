//! The job-index dispensers (`next_engine.fetch_add` in the portfolio,
//! `next_ref.fetch_add` in the sharded sampler): workers claim the next
//! job by incrementing a shared counter. The property: tickets are unique
//! and form `0..N` — which a *Relaxed* fetch_add already guarantees, since
//! only RMW atomicity is involved; the claimed job's data is published by
//! the spawning thread *before* the workers start (thread-spawn ordering),
//! not by this counter. This check is the proof cited by the `// ordering:`
//! comments at both fetch_add sites.
//!
//! The broken variant increments non-atomically (load, then store v+1); the
//! checker must find a duplicate-ticket schedule.

use crate::model::{explore, Ctx, Exec, Ord, Report, System, Violation};

const NEXT: usize = 0;
const WORKERS: usize = 3;

#[derive(Clone, PartialEq, Eq, Hash)]
struct Ticket {
    broken: bool,
    pc: [u8; WORKERS],
    staged: [u64; WORKERS],
    ticket: [Option<u64>; WORKERS],
}

impl Ticket {
    fn new(broken: bool) -> Ticket {
        Ticket {
            broken,
            pc: [0; WORKERS],
            staged: [0; WORKERS],
            ticket: [None; WORKERS],
        }
    }
}

impl System for Ticket {
    fn threads(&self) -> usize {
        WORKERS
    }
    fn locs(&self) -> usize {
        1
    }
    fn done(&self, tid: usize) -> bool {
        self.pc[tid] >= 2
    }
    fn step(&mut self, tid: usize, ctx: &mut Ctx<'_>) {
        if !self.broken {
            // let index = next.fetch_add(1, Relaxed)
            self.ticket[tid] = Some(ctx.fetch_add(NEXT, 1, Ord::Relaxed));
            self.pc[tid] = 2;
            return;
        }
        match self.pc[tid] {
            0 => {
                self.staged[tid] = ctx.load(NEXT, Ord::Relaxed);
                self.pc[tid] = 1;
            }
            1 => {
                ctx.store(NEXT, self.staged[tid] + 1, Ord::Relaxed);
                self.ticket[tid] = Some(self.staged[tid]);
                self.pc[tid] = 2;
            }
            _ => unreachable!("stepped a finished worker"),
        }
    }
    fn invariant(&self, _exec: &Exec) -> Result<(), String> {
        for a in 0..WORKERS {
            for b in a + 1..WORKERS {
                if self.ticket[a].is_some() && self.ticket[a] == self.ticket[b] {
                    return Err(format!(
                        "workers {a} and {b} drew the same ticket {:?}",
                        self.ticket[a]
                    ));
                }
            }
        }
        Ok(())
    }
    fn finalize(&self, _exec: &Exec) -> Result<(), String> {
        let mut tickets: Vec<u64> = self.ticket.iter().map(|t| t.unwrap_or(u64::MAX)).collect();
        tickets.sort_unstable();
        let expected: Vec<u64> = (0..WORKERS as u64).collect();
        if tickets != expected {
            return Err(format!(
                "tickets not a permutation of 0..{WORKERS}: {tickets:?}"
            ));
        }
        Ok(())
    }
}

/// Relaxed fetch_add: tickets are exactly `0..N`, no duplicates.
pub fn check_correct() -> Result<Report, Violation> {
    explore(Ticket::new(false))
}

/// Non-atomic increment: the checker must find duplicate tickets.
pub fn check_broken() -> Result<Report, Violation> {
    explore(Ticket::new(true))
}
