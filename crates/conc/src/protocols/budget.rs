//! `CallBudget::try_acquire` admission (`crates/sat/src/cancel.rs`): each
//! oracle call CASes `consumed` upward via
//! `fetch_update(AcqRel, Acquire, |used| (used < limit).then(|| used + 1))`.
//! Properties: the counter never exceeds the limit (no over-admission), a
//! refused caller consumes nothing, and admissions + refusals account for
//! every attempt.
//!
//! The broken variant does the textbook check-then-act: load, compare, then
//! a separate fetch_add. Two threads passing the check simultaneously
//! over-admit, and the checker must find that schedule.

use crate::model::{explore, Ctx, Exec, Ord, Report, System, Violation};

const CONSUMED: usize = 0;
const LIMIT: u64 = 3;
const THREADS: usize = 2;
const ATTEMPTS: u8 = 2;

#[derive(Clone, PartialEq, Eq, Hash)]
struct Budget {
    broken: bool,
    /// Per thread: attempts completed so far.
    attempts: [u8; THREADS],
    /// Broken variant: mid-attempt flag (passed the check, add pending).
    pending_add: [bool; THREADS],
    admitted: [u8; THREADS],
    refused: [u8; THREADS],
}

impl Budget {
    fn new(broken: bool) -> Budget {
        Budget {
            broken,
            attempts: [0; THREADS],
            pending_add: [false; THREADS],
            admitted: [0; THREADS],
            refused: [0; THREADS],
        }
    }
}

impl System for Budget {
    fn threads(&self) -> usize {
        THREADS
    }
    fn locs(&self) -> usize {
        1
    }
    fn done(&self, tid: usize) -> bool {
        self.attempts[tid] >= ATTEMPTS && !self.pending_add[tid]
    }
    fn step(&mut self, tid: usize, ctx: &mut Ctx<'_>) {
        if self.broken {
            if self.pending_add[tid] {
                ctx.fetch_add(CONSUMED, 1, Ord::Relaxed);
                self.admitted[tid] += 1;
                self.pending_add[tid] = false;
                self.attempts[tid] += 1;
            } else if ctx.load(CONSUMED, Ord::Relaxed) < LIMIT {
                self.pending_add[tid] = true; // check passed; add is separate
            } else {
                self.refused[tid] += 1;
                self.attempts[tid] += 1;
            }
            return;
        }
        // try_acquire: one atomic fetch_update, as in CallBudget.
        let result = ctx.rmw(CONSUMED, Ord::AcqRel, Ord::Acquire, |used| {
            (used < LIMIT).then(|| used + 1)
        });
        match result {
            Ok(_) => self.admitted[tid] += 1,
            Err(_) => self.refused[tid] += 1,
        }
        self.attempts[tid] += 1;
    }
    fn invariant(&self, exec: &Exec) -> Result<(), String> {
        let consumed = exec.latest(CONSUMED);
        if consumed > LIMIT {
            return Err(format!(
                "budget over-admitted: consumed {consumed} > limit {LIMIT}"
            ));
        }
        Ok(())
    }
    fn finalize(&self, exec: &Exec) -> Result<(), String> {
        let admitted: u8 = self.admitted.iter().sum();
        let refused: u8 = self.refused.iter().sum();
        // Refusals consume nothing: the final counter equals admissions.
        if exec.latest(CONSUMED) != u64::from(admitted) {
            return Err(format!(
                "refusal consumed budget: counter {} vs {admitted} admissions",
                exec.latest(CONSUMED)
            ));
        }
        if usize::from(admitted + refused) != THREADS * usize::from(ATTEMPTS) {
            return Err("attempt unaccounted for".to_string());
        }
        // 4 attempts against a limit of 3: exactly 3 must be admitted.
        if admitted != LIMIT as u8 {
            return Err(format!("expected {LIMIT} admissions, got {admitted}"));
        }
        Ok(())
    }
}

/// CAS-loop admission: never over the limit, refusals consume nothing.
pub fn check_correct() -> Result<Report, Violation> {
    explore(Budget::new(false))
}

/// Check-then-add admission: the checker must find over-admission.
pub fn check_broken() -> Result<Report, Violation> {
    explore(Budget::new(true))
}
