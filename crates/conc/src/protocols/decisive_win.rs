//! The portfolio's first-decisive-result-wins handshake
//! (`crates/portfolio/src/lib.rs`): every engine that produces a decisive
//! result does `race_claimed.swap(true)` and treats `false` as having won
//! the race. The property: **exactly one** engine ever claims the win, no
//! matter the interleaving.
//!
//! The correct variant uses a *Relaxed* swap — RMW atomicity on the single
//! flag is all the protocol needs, because the winner's identity travels to
//! the caller through the reports mutex, not through this flag. The model
//! check here is the proof cited by the `// ordering:` comment at the
//! `race_claimed.swap` site.
//!
//! The broken variant replaces the swap with a load-then-store claim; the
//! checker must find the double-win schedule.

use crate::model::{explore, Ctx, Exec, Ord, Report, System, Violation};

const RACE: usize = 0;
const ENGINES: usize = 3;

#[derive(Clone, PartialEq, Eq, Hash)]
struct DecisiveWin {
    broken: bool,
    pc: [u8; ENGINES],
    saw_unclaimed: [bool; ENGINES],
    won: [bool; ENGINES],
}

impl DecisiveWin {
    fn new(broken: bool) -> DecisiveWin {
        DecisiveWin {
            broken,
            pc: [0; ENGINES],
            saw_unclaimed: [false; ENGINES],
            won: [false; ENGINES],
        }
    }
}

impl System for DecisiveWin {
    fn threads(&self) -> usize {
        ENGINES
    }
    fn locs(&self) -> usize {
        1
    }
    fn done(&self, tid: usize) -> bool {
        self.pc[tid] >= 2
    }
    fn step(&mut self, tid: usize, ctx: &mut Ctx<'_>) {
        if !self.broken {
            // claimed_win = !race_claimed.swap(true, Relaxed)
            self.won[tid] = ctx.swap(RACE, 1, Ord::Relaxed) == 0;
            self.pc[tid] = 2;
            return;
        }
        match self.pc[tid] {
            0 => {
                self.saw_unclaimed[tid] = ctx.load(RACE, Ord::Relaxed) == 0;
                if !self.saw_unclaimed[tid] {
                    self.pc[tid] = 2; // someone else already claimed
                    return;
                }
                self.pc[tid] = 1;
            }
            1 => {
                ctx.store(RACE, 1, Ord::Relaxed);
                self.won[tid] = true;
                self.pc[tid] = 2;
            }
            _ => unreachable!("stepped a finished engine"),
        }
    }
    fn invariant(&self, _exec: &Exec) -> Result<(), String> {
        let winners = self.won.iter().filter(|w| **w).count();
        if winners > 1 {
            return Err(format!("{winners} engines claimed the decisive win"));
        }
        Ok(())
    }
    fn finalize(&self, _exec: &Exec) -> Result<(), String> {
        let winners = self.won.iter().filter(|w| **w).count();
        if winners != 1 {
            return Err(format!("expected exactly one winner, got {winners}"));
        }
        Ok(())
    }
}

/// Relaxed swap: exactly one winner across all interleavings.
pub fn check_correct() -> Result<Report, Violation> {
    explore(DecisiveWin::new(false))
}

/// Load-then-store claim: the checker must find a two-winner schedule.
pub fn check_broken() -> Result<Report, Violation> {
    explore(DecisiveWin::new(true))
}
