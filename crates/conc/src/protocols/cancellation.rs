//! `CancelToken` publish/observe visibility (`crates/sat/src/cancel.rs`):
//! the winning engine writes its result, then `cancel()`s the token with a
//! *Release* store; losers poll `is_cancelled()` with *Acquire* loads. The
//! property: once a loser observes the flag, the winner's result is visible
//! — and cancellation is eventually observed (the poll loop cannot run
//! forever, modeled by state-dedup pruning the stale-read cycle).
//!
//! The broken variant publishes the flag with a Relaxed store: the flag can
//! be observed while the result write is not yet visible, and the checker
//! must produce that stale-read schedule.

use crate::model::{explore, Ctx, Exec, Ord, Report, System, Violation};

const FLAG: usize = 0;
const RESULT: usize = 1;
const WINNER_RESULT: u64 = 42;

#[derive(Clone, PartialEq, Eq, Hash)]
struct Cancellation {
    publish: Ord,
    /// pc[0]: winner; pc[1..]: pollers.
    pc: [u8; 3],
    observed: [Option<u64>; 2],
}

impl Cancellation {
    fn new(publish: Ord) -> Cancellation {
        Cancellation {
            publish,
            pc: [0; 3],
            observed: [None; 2],
        }
    }
}

impl System for Cancellation {
    fn threads(&self) -> usize {
        3
    }
    fn locs(&self) -> usize {
        2
    }
    fn done(&self, tid: usize) -> bool {
        self.pc[tid] >= 2
    }
    fn step(&mut self, tid: usize, ctx: &mut Ctx<'_>) {
        if tid == 0 {
            match self.pc[0] {
                0 => ctx.store(RESULT, WINNER_RESULT, Ord::Relaxed),
                1 => ctx.store(FLAG, 1, self.publish),
                _ => unreachable!("stepped the finished winner"),
            }
            self.pc[0] += 1;
            return;
        }
        let poller = tid - 1;
        match self.pc[tid] {
            0 => {
                // while !token.is_cancelled() {} — the not-yet branch leaves
                // the state unchanged, so dedup prunes the livelock cycle:
                // every *terminal* state has the flag observed.
                if ctx.load(FLAG, Ord::Acquire) == 1 {
                    self.pc[tid] = 1;
                }
            }
            1 => {
                self.observed[poller] = Some(ctx.load(RESULT, Ord::Relaxed));
                self.pc[tid] = 2;
            }
            _ => unreachable!("stepped a finished poller"),
        }
    }
    fn invariant(&self, _exec: &Exec) -> Result<(), String> {
        for (i, observed) in self.observed.iter().enumerate() {
            if let Some(value) = observed {
                if *value != WINNER_RESULT {
                    return Err(format!(
                        "poller {i} observed the cancel flag but read stale result {value}"
                    ));
                }
            }
        }
        Ok(())
    }
    fn finalize(&self, exec: &Exec) -> Result<(), String> {
        // Terminal ⇒ every poller left its loop ⇒ cancellation was observed.
        if self.observed.iter().any(Option::is_none) {
            return Err("poller finished without observing cancellation".to_string());
        }
        if exec.latest(FLAG) != 1 {
            return Err("terminal state without the flag set".to_string());
        }
        Ok(())
    }
}

/// Release publish / Acquire poll: observed flag ⇒ visible result, and the
/// flag is eventually observed on every terminating schedule.
pub fn check_correct() -> Result<Report, Violation> {
    explore(Cancellation::new(Ord::Release))
}

/// Relaxed publish: the checker must find a stale-result schedule.
pub fn check_broken() -> Result<Report, Violation> {
    explore(Cancellation::new(Ord::Relaxed))
}
