//! Model-checked protocols from the workspace, each in a *correct* variant
//! (must pass exhaustively) and a deliberately *broken* variant (the checker
//! must produce a counterexample trace — this is the checker's own test).

pub mod budget;
pub mod cancellation;
pub mod decisive_win;
pub mod ticket;

use crate::model::{Report, Violation};

/// One checkable protocol variant.
pub struct Check {
    /// `protocol/variant` identifier.
    pub name: &'static str,
    /// What the variant demonstrates.
    pub description: &'static str,
    /// `true` if this variant is expected to yield a counterexample.
    pub expect_violation: bool,
    /// Runs the exhaustive exploration.
    pub run: fn() -> Result<Report, Violation>,
}

/// Every registered protocol check, correct and broken variants alike.
pub fn suite() -> Vec<Check> {
    vec![
        Check {
            name: "decisive-win/relaxed-swap",
            description: "portfolio race: relaxed swap admits exactly one winner",
            expect_violation: false,
            run: decisive_win::check_correct,
        },
        Check {
            name: "decisive-win/load-then-store",
            description: "broken: non-atomic claim admits two winners",
            expect_violation: true,
            run: decisive_win::check_broken,
        },
        Check {
            name: "cancellation/release-acquire",
            description: "cancel publish: result visible once the flag is observed",
            expect_violation: false,
            run: cancellation::check_correct,
        },
        Check {
            name: "cancellation/relaxed-publish",
            description: "broken: relaxed flag store lets a stale result be read",
            expect_violation: true,
            run: cancellation::check_broken,
        },
        Check {
            name: "budget/fetch-update",
            description: "CallBudget admission: never over the limit, no use after refusal",
            expect_violation: false,
            run: budget::check_correct,
        },
        Check {
            name: "budget/load-then-add",
            description: "broken: check-then-add admits past the limit",
            expect_violation: true,
            run: budget::check_broken,
        },
        Check {
            name: "ticket/relaxed-fetch-add",
            description: "engine-index dispenser: relaxed fetch_add tickets are unique",
            expect_violation: false,
            run: ticket::check_correct,
        },
        Check {
            name: "ticket/load-then-store",
            description: "broken: non-atomic increment hands out duplicate tickets",
            expect_violation: true,
            run: ticket::check_broken,
        },
    ]
}
