//! CLI driver: `cargo run -p manthan3-conc --release` runs every protocol
//! check. Correct variants must pass exhaustively; broken variants must
//! yield a counterexample (whose trace is printed). Any unexpected outcome
//! exits 1.

#![forbid(unsafe_code)]

use manthan3_conc::protocols::suite;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut failed = 0usize;
    for check in suite() {
        print!("{:36} ", check.name);
        match ((check.run)(), check.expect_violation) {
            (Ok(report), false) => {
                println!(
                    "ok: {} states, {} executions, no violation",
                    report.states, report.executions
                );
            }
            (Err(violation), true) => {
                println!("ok: counterexample found, {} steps", violation.trace.len());
                for line in violation.to_string().lines() {
                    println!("    {line}");
                }
            }
            (Ok(report), true) => {
                println!(
                    "FAILED: expected a counterexample, but {} states / {} executions passed",
                    report.states, report.executions
                );
                failed += 1;
            }
            (Err(violation), false) => {
                println!("FAILED: unexpected violation");
                for line in violation.to_string().lines() {
                    println!("    {line}");
                }
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} protocol check(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
