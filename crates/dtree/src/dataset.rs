/// A supervised binary dataset: rows of Boolean feature vectors with Boolean
/// labels.
///
/// All rows must have the same number of features.
///
/// # Examples
///
/// ```
/// use manthan3_dtree::Dataset;
/// let d = Dataset::from_rows(vec![(vec![true, false], true), (vec![false, false], false)]);
/// assert_eq!(d.num_rows(), 2);
/// assert_eq!(d.num_features(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dataset {
    features: Vec<Vec<bool>>,
    labels: Vec<bool>,
}

impl Dataset {
    /// Creates an empty dataset with the given number of features.
    pub fn new(num_features: usize) -> Self {
        let _ = num_features;
        Dataset {
            features: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Builds a dataset from `(features, label)` rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent feature counts.
    pub fn from_rows(rows: Vec<(Vec<bool>, bool)>) -> Self {
        let mut d = Dataset::default();
        for (f, l) in rows {
            d.push(f, l);
        }
        d
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `features` has a different length from earlier rows.
    pub fn push(&mut self, features: Vec<bool>, label: bool) {
        if let Some(first) = self.features.first() {
            assert_eq!(
                first.len(),
                features.len(),
                "inconsistent feature count in dataset"
            );
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.features.len()
    }

    /// Returns `true` if the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per row (0 for an empty dataset).
    pub fn num_features(&self) -> usize {
        self.features.first().map_or(0, |f| f.len())
    }

    /// Feature vector of row `i`.
    pub fn features(&self, i: usize) -> &[bool] {
        &self.features[i]
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// Number of rows with a positive label.
    pub fn num_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Gini impurity of the label distribution of the rows indexed by `rows`.
    pub fn gini(&self, rows: &[usize]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let pos = rows.iter().filter(|&&i| self.labels[i]).count() as f64;
        let n = rows.len() as f64;
        let p = pos / n;
        2.0 * p * (1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new(2);
        d.push(vec![true, false], true);
        d.push(vec![false, false], false);
        assert_eq!(d.num_rows(), 2);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.features(0), &[true, false]);
        assert!(d.label(0));
        assert_eq!(d.num_positive(), 1);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature count")]
    fn inconsistent_rows_panic() {
        let mut d = Dataset::new(2);
        d.push(vec![true, false], true);
        d.push(vec![true], false);
    }

    #[test]
    fn gini_extremes() {
        let d = Dataset::from_rows(vec![
            (vec![true], true),
            (vec![false], true),
            (vec![true], false),
            (vec![false], false),
        ]);
        let all: Vec<usize> = (0..4).collect();
        assert!((d.gini(&all) - 0.5).abs() < 1e-9);
        assert_eq!(d.gini(&[0, 1]), 0.0);
        assert_eq!(d.gini(&[]), 0.0);
    }
}
