//! A binary decision-tree learner (ID3 with the Gini impurity measure).
//!
//! This crate plays the role of scikit-learn's `DecisionTreeClassifier` in
//! the original Manthan3 toolchain. Manthan3 learns, for every existentially
//! quantified variable, a decision tree whose features are the valuations of
//! the variable's Henkin dependencies (and of compatible `Y` variables) in
//! the sampled data, and whose labels are the valuations of the variable
//! itself. The candidate function is then the disjunction of all root→leaf
//! paths that end in a leaf labelled `1`
//! ([`DecisionTree::paths_to`]).
//!
//! # Examples
//!
//! ```
//! use manthan3_dtree::{Dataset, DecisionTree, DecisionTreeConfig};
//!
//! // Label is the XOR of the two features.
//! let rows = vec![
//!     (vec![false, false], false),
//!     (vec![false, true], true),
//!     (vec![true, false], true),
//!     (vec![true, true], false),
//! ];
//! let dataset = Dataset::from_rows(rows);
//! let tree = DecisionTree::learn(&dataset, &DecisionTreeConfig::default());
//! assert!(tree.predict(&[true, false]));
//! assert!(!tree.predict(&[true, true]));
//! assert_eq!(tree.training_accuracy(&dataset), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod tree;

pub use dataset::Dataset;
pub use tree::{DecisionTree, DecisionTreeConfig, PathLiteral};
