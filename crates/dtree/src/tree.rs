use crate::Dataset;

/// One condition along a root→leaf path: the feature at `feature` must have
/// the value `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathLiteral {
    /// Index of the feature tested by the decision node.
    pub feature: usize,
    /// Required value of the feature along this path.
    pub value: bool,
}

/// Hyper-parameters for [`DecisionTree::learn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (number of decision nodes on a path).
    pub max_depth: usize,
    /// Minimum number of rows required to split a node further.
    pub min_samples_split: usize,
    /// Minimum number of rows in a leaf.
    pub min_samples_leaf: usize,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        label: bool,
    },
    Split {
        feature: usize,
        /// Subtree for `feature == false`.
        low: Box<Node>,
        /// Subtree for `feature == true`.
        high: Box<Node>,
    },
}

/// A learned binary decision tree.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    num_features: usize,
}

impl DecisionTree {
    /// Learns a tree from `dataset` using the ID3 procedure with the Gini
    /// impurity measure (the configuration used by the Manthan3 paper).
    ///
    /// An empty dataset produces a single all-`false` leaf.
    pub fn learn(dataset: &Dataset, config: &DecisionTreeConfig) -> Self {
        let rows: Vec<usize> = (0..dataset.num_rows()).collect();
        let root = Self::build(dataset, &rows, config, 0);
        DecisionTree {
            root,
            num_features: dataset.num_features(),
        }
    }

    fn majority_label(dataset: &Dataset, rows: &[usize]) -> bool {
        let pos = rows.iter().filter(|&&i| dataset.label(i)).count();
        2 * pos >= rows.len().max(1) && !rows.is_empty() && pos * 2 >= rows.len()
    }

    fn build(dataset: &Dataset, rows: &[usize], config: &DecisionTreeConfig, depth: usize) -> Node {
        let label = Self::majority_label(dataset, rows);
        if rows.is_empty()
            || depth >= config.max_depth
            || rows.len() < config.min_samples_split
            || dataset.gini(rows) == 0.0
        {
            return Node::Leaf { label };
        }
        // Pick the feature with the best Gini gain.
        let parent_impurity = dataset.gini(rows);
        let mut best: Option<(usize, f64, Vec<usize>, Vec<usize>)> = None;
        for feature in 0..dataset.num_features() {
            let (low, high): (Vec<usize>, Vec<usize>) =
                rows.iter().partition(|&&i| !dataset.features(i)[feature]);
            if low.len() < config.min_samples_leaf || high.len() < config.min_samples_leaf {
                continue;
            }
            let n = rows.len() as f64;
            let weighted = dataset.gini(&low) * low.len() as f64 / n
                + dataset.gini(&high) * high.len() as f64 / n;
            // Gini is concave, so the gain is always >= 0; like CART we keep
            // the best split even when the gain is zero (needed e.g. to learn
            // XOR, where no single split reduces the impurity at the root).
            let gain = parent_impurity - weighted;
            if best.as_ref().is_none_or(|(_, g, _, _)| gain > *g + 1e-12) {
                best = Some((feature, gain, low, high));
            }
        }
        match best {
            None => Node::Leaf { label },
            Some((feature, _gain, low, high)) => {
                let low_node = Self::build(dataset, &low, config, depth + 1);
                let high_node = Self::build(dataset, &high, config, depth + 1);
                Node::Split {
                    feature,
                    low: Box::new(low_node),
                    high: Box::new(high_node),
                }
            }
        }
    }

    /// Number of features the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Predicts the label of a feature vector.
    ///
    /// Missing features (indices beyond `features.len()`) are treated as
    /// `false`.
    pub fn predict(&self, features: &[bool]) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split { feature, low, high } => {
                    let v = features.get(*feature).copied().unwrap_or(false);
                    node = if v { high } else { low };
                }
            }
        }
    }

    /// Fraction of training rows the tree classifies correctly.
    pub fn training_accuracy(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 1.0;
        }
        let correct = (0..dataset.num_rows())
            .filter(|&i| self.predict(dataset.features(i)) == dataset.label(i))
            .count();
        correct as f64 / dataset.num_rows() as f64
    }

    /// Number of decision (split) nodes.
    pub fn num_splits(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { low, high, .. } => 1 + count(low) + count(high),
            }
        }
        count(&self.root)
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { low, high, .. } => 1 + depth(low).max(depth(high)),
            }
        }
        depth(&self.root)
    }

    /// Returns every root→leaf path whose leaf carries the label `label`,
    /// as a list of conjunctions of [`PathLiteral`]s.
    ///
    /// This is the "disjunction over all paths with class label 1" operation
    /// that Manthan3 uses to turn a learned tree into a candidate Boolean
    /// function: `f = ⋁_{paths to 1} ⋀ PathLiteral`.
    ///
    /// A tree that is a single leaf with the requested label yields one empty
    /// path (the constant-true cube).
    pub fn paths_to(&self, label: bool) -> Vec<Vec<PathLiteral>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        fn walk(
            node: &Node,
            target: bool,
            prefix: &mut Vec<PathLiteral>,
            out: &mut Vec<Vec<PathLiteral>>,
        ) {
            match node {
                Node::Leaf { label } => {
                    if *label == target {
                        out.push(prefix.clone());
                    }
                }
                Node::Split { feature, low, high } => {
                    prefix.push(PathLiteral {
                        feature: *feature,
                        value: false,
                    });
                    walk(low, target, prefix, out);
                    prefix.pop();
                    prefix.push(PathLiteral {
                        feature: *feature,
                        value: true,
                    });
                    walk(high, target, prefix, out);
                    prefix.pop();
                }
            }
        }
        walk(&self.root, label, &mut prefix, &mut out);
        out
    }

    /// Set of feature indices used by some decision node.
    pub fn used_features(&self) -> Vec<usize> {
        fn collect(n: &Node, out: &mut Vec<usize>) {
            if let Node::Split { feature, low, high } = n {
                out.push(*feature);
                collect(low, out);
                collect(high, out);
            }
        }
        let mut out = Vec::new();
        collect(&self.root, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        Dataset::from_rows(vec![
            (vec![false, false], false),
            (vec![false, true], true),
            (vec![true, false], true),
            (vec![true, true], false),
        ])
    }

    #[test]
    fn learns_xor_exactly() {
        let d = xor_dataset();
        let t = DecisionTree::learn(&d, &DecisionTreeConfig::default());
        assert_eq!(t.training_accuracy(&d), 1.0);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.used_features(), vec![0, 1]);
    }

    #[test]
    fn learns_constant_function() {
        let d = Dataset::from_rows(vec![(vec![false], true), (vec![true], true)]);
        let t = DecisionTree::learn(&d, &DecisionTreeConfig::default());
        assert_eq!(t.num_splits(), 0);
        assert!(t.predict(&[false]));
        assert!(t.predict(&[true]));
        // A constant-true leaf yields a single empty path (the "true" cube).
        assert_eq!(t.paths_to(true), vec![Vec::<PathLiteral>::new()]);
        assert!(t.paths_to(false).is_empty());
    }

    #[test]
    fn empty_dataset_defaults_to_false() {
        let d = Dataset::new(3);
        let t = DecisionTree::learn(&d, &DecisionTreeConfig::default());
        assert!(!t.predict(&[true, true, true]));
        assert!(t.paths_to(true).is_empty());
    }

    #[test]
    fn depth_limit_is_respected() {
        let d = xor_dataset();
        let cfg = DecisionTreeConfig {
            max_depth: 1,
            ..DecisionTreeConfig::default()
        };
        let t = DecisionTree::learn(&d, &cfg);
        assert!(t.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_splits() {
        let d = xor_dataset();
        let cfg = DecisionTreeConfig {
            min_samples_leaf: 3,
            ..DecisionTreeConfig::default()
        };
        let t = DecisionTree::learn(&d, &cfg);
        assert_eq!(t.num_splits(), 0);
    }

    #[test]
    fn paths_reconstruct_the_function() {
        let d = xor_dataset();
        let t = DecisionTree::learn(&d, &DecisionTreeConfig::default());
        let paths = t.paths_to(true);
        // Evaluate the DNF given by the paths and compare with predict().
        let eval_dnf = |features: &[bool]| {
            paths
                .iter()
                .any(|path| path.iter().all(|pl| features[pl.feature] == pl.value))
        };
        for bits in 0..4u32 {
            let f = vec![bits & 1 == 1, bits & 2 == 2];
            assert_eq!(eval_dnf(&f), t.predict(&f));
            assert_eq!(t.predict(&f), f[0] ^ f[1]);
        }
    }

    #[test]
    fn irrelevant_features_are_ignored() {
        // Label depends only on feature 1.
        let rows = (0..16u32)
            .map(|bits| {
                let f: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                let label = f[1];
                (f, label)
            })
            .collect();
        let d = Dataset::from_rows(rows);
        let t = DecisionTree::learn(&d, &DecisionTreeConfig::default());
        assert_eq!(t.used_features(), vec![1]);
        assert_eq!(t.training_accuracy(&d), 1.0);
    }

    #[test]
    fn majority_vote_on_noisy_leaf() {
        // Three positive rows, one negative row, no features to split on.
        let d = Dataset::from_rows(vec![
            (vec![], true),
            (vec![], true),
            (vec![], true),
            (vec![], false),
        ]);
        let t = DecisionTree::learn(&d, &DecisionTreeConfig::default());
        assert!(t.predict(&[]));
        assert_eq!(t.training_accuracy(&d), 0.75);
    }
}
