//! A crate root that forgot its `#![forbid(unsafe_code)]` header.

pub fn fine() -> u32 {
    1
}
