//! ClauseRef locals held across (and not across) GC-trigger calls.

pub struct ClauseRef(u32);

pub struct Solver;

impl Solver {
    fn maybe_collect_garbage(&mut self) {}

    fn lookup(&self, _r: &ClauseRef) -> u32 {
        0
    }

    fn fresh(&self) -> ClauseRef {
        ClauseRef(0)
    }

    pub fn stale_use(&mut self) -> u32 {
        let cref = self.fresh();
        self.maybe_collect_garbage();
        self.lookup(&cref)
    }

    pub fn safe_use(&mut self) -> u32 {
        let cref = self.fresh();
        let value = self.lookup(&cref);
        self.maybe_collect_garbage();
        value
    }

    pub fn rebound_use(&mut self) -> u32 {
        let cref = self.fresh();
        self.lookup(&cref);
        self.maybe_collect_garbage();
        let cref = self.fresh();
        self.lookup(&cref)
    }
}
