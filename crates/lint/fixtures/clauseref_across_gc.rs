//! ClauseRef locals held across (and not across) GC-trigger calls.

pub struct ClauseRef(u32);

pub struct Solver;

impl Solver {
    fn maybe_collect_garbage(&mut self) {}

    fn lookup(&self, _r: &ClauseRef) -> u32 {
        0
    }

    fn fresh(&self) -> ClauseRef {
        ClauseRef(0)
    }

    pub fn stale_use(&mut self) -> u32 {
        let cref = self.fresh();
        self.maybe_collect_garbage();
        self.lookup(&cref)
    }

    pub fn safe_use(&mut self) -> u32 {
        let cref = self.fresh();
        let value = self.lookup(&cref);
        self.maybe_collect_garbage();
        value
    }

    pub fn rebound_use(&mut self) -> u32 {
        let cref = self.fresh();
        self.lookup(&cref);
        self.maybe_collect_garbage();
        let cref = self.fresh();
        self.lookup(&cref)
    }

    fn forward(&self, r: ClauseRef) -> ClauseRef {
        r
    }

    // The remap idiom: reading the stale value to translate it is the
    // rebind itself, so the use afterwards is clean.
    pub fn remapped_use(&mut self) -> u32 {
        let mut cref = self.fresh();
        self.maybe_collect_garbage();
        cref = self.forward(cref);
        self.lookup(&cref)
    }

    // Flow-sensitive case the lexical v1 missed: the use precedes the GC
    // call in token order, but the loop back edge carries the staleness
    // into the next iteration.
    pub fn loop_stale(&mut self) -> u32 {
        let cref = self.fresh();
        let mut total = 0;
        loop {
            total += self.lookup(&cref);
            if total > 3 {
                return total;
            }
            self.maybe_collect_garbage();
        }
    }
}
