//! A stats struct with one fully wired field, one field the merge fn never
//! touches, and one field no CSV scope names.

pub struct OracleStats {
    pub merged_and_exported: u64,
    pub never_merged: u64,
    pub never_exported: u64,
}

impl OracleStats {
    pub fn absorb(&mut self, other: &OracleStats) {
        self.merged_and_exported += other.merged_and_exported;
        self.never_exported += other.never_exported;
    }
}
