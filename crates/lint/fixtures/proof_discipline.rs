//! Proof discipline: emit-covered and uncovered clause-arena mutations.

pub struct Solver;

impl Solver {
    fn emit_add(&mut self, _lits: &[i32]) {}

    fn emit_delete(&mut self, _lits: &[i32]) {}

    fn alloc(&mut self, _lits: &[i32]) -> u32 {
        0
    }

    fn delete(&mut self, _cref: u32) {}

    // Clean: the emit precedes the allocation on every path.
    pub fn learn_logged(&mut self, lits: &[i32]) -> u32 {
        self.emit_add(lits);
        self.alloc(lits)
    }

    // Clean: the emit follows the deletion on every path.
    pub fn retire_logged(&mut self, cref: u32, lits: &[i32]) {
        self.delete(cref);
        self.emit_delete(lits);
    }

    // Fires: no emit anywhere around the allocation.
    pub fn learn_unlogged(&mut self, lits: &[i32]) -> u32 {
        self.alloc(lits)
    }

    // Fires: the emit happens on the `verbose` branch only; the
    // fall-through path retires the clause with no log entry.
    pub fn retire_branchy(&mut self, cref: u32, lits: &[i32], verbose: bool) {
        self.delete(cref);
        if verbose {
            self.emit_delete(lits);
        }
    }

    // Clean: `retire_logged` is safe (its own event is covered), so the
    // call needs no emit here.
    pub fn maintain(&mut self, cref: u32, lits: &[i32]) {
        self.retire_logged(cref, lits);
    }

    // Fires (indirectly): `learn_unlogged` may mutate the arena and is not
    // safe, and no emit covers the call.
    pub fn maintain_unlogged(&mut self, lits: &[i32]) {
        self.learn_unlogged(lits);
    }
}
