//! Atomic orderings with and without justification comments.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn justified(flag: &AtomicBool) -> bool {
    // ordering: Acquire pairs with the Release store in `publish`.
    flag.load(Ordering::Acquire)
}

pub fn unjustified(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}

pub fn compare(a: u32, b: u32) -> std::cmp::Ordering {
    // `cmp::Ordering` variants must never fire this rule.
    a.cmp(&b)
}
