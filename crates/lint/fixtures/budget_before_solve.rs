//! Budget admission before solver invocations: checked and unchecked paths.

pub struct Engine;

impl Engine {
    fn exhausted(&self) -> bool {
        false
    }

    fn solve_with_assumptions(&mut self, _assumptions: &[i32]) -> bool {
        true
    }

    // Fires: the solver invocation is reachable with no admission check on
    // any path.
    pub fn solve_unchecked(&mut self) -> bool {
        self.solve_with_assumptions(&[])
    }

    // Clean: the check dominates the invocation.
    pub fn solve_checked(&mut self) -> bool {
        if self.exhausted() {
            return false;
        }
        self.solve_with_assumptions(&[])
    }

    // Fires: the check happens on the `retry` branch only; the fall-through
    // path reaches the solver unchecked.
    pub fn solve_branchy(&mut self, retry: bool) -> bool {
        if retry {
            self.exhausted();
        }
        self.solve_with_assumptions(&[])
    }
}
