//! unwrap/expect in library code, with a test module that is exempt.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("always set")
}

pub fn good_expect(v: Option<u32>) -> u32 {
    // invariant: callers only pass Some; enforced by construction.
    v.expect("always set")
}

pub fn good_fallback(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
