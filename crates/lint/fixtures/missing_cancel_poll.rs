//! Entry points with and without a reachable cancellation poll.

pub struct Token;

impl Token {
    pub fn is_cancelled(&self) -> bool {
        false
    }
}

fn helper_that_polls(token: &Token) -> bool {
    token.is_cancelled()
}

pub fn solve_with_poll(token: &Token) -> bool {
    helper_that_polls(token)
}

pub fn solve_without_poll(iterations: u64) -> u64 {
    let mut acc = 0;
    for i in 0..iterations {
        acc += i;
    }
    acc
}

pub fn solver_config() -> u32 {
    // Not an entry point: `solver` does not word-boundary-match `solve`.
    0
}
