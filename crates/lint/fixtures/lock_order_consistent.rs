//! Consistent Mutex nesting: every function takes jobs before results, so
//! the observed order is total and no cycle exists.

use std::sync::Mutex;

pub struct Shared {
    jobs: Mutex<u32>,
    results: Mutex<u32>,
}

impl Shared {
    pub fn ab(&self) -> u32 {
        let guard = self.jobs.lock().unwrap();
        let results = self.results.lock().unwrap();
        *guard + *results
    }

    pub fn ab_again(&self) -> u32 {
        let guard = self.jobs.lock().unwrap();
        let results = self.results.lock().unwrap();
        *guard * *results
    }
}
