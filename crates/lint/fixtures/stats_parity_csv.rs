//! The CSV layer of the parity fixture: names `merged_and_exported` as an
//! identifier and `never_merged` in a header literal — but never mentions
//! `never_exported` under any spelling.

pub fn rows(merged_and_exported: u64) -> Vec<(String, String)> {
    vec![
        ("merged_and_exported".into(), merged_and_exported.to_string()),
        ("never_merged".into(), "0".into()),
    ]
}
