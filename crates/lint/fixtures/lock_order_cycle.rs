//! Conflicting Mutex nesting: `ab` takes jobs then results, `ba` takes
//! results then (through a call) jobs — a deadlock candidate cycle.

use std::sync::Mutex;

pub struct Shared {
    jobs: Mutex<u32>,
    results: Mutex<u32>,
}

impl Shared {
    fn lock_jobs(&self) -> u32 {
        *self.jobs.lock().unwrap()
    }

    pub fn ab(&self) -> u32 {
        let guard = self.jobs.lock().unwrap();
        let results = self.results.lock().unwrap();
        *guard + *results
    }

    pub fn ba(&self) -> u32 {
        let guard = self.results.lock().unwrap();
        *guard + self.lock_jobs()
    }
}
