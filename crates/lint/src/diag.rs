//! Machine-readable diagnostics: `file:line: [rule] message`.

use std::fmt;

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// The enclosing function's name, when the rule knows it; allowlist
    /// entries of the form `file::function` match on this.
    pub symbol: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// `true` if the allowlist entry `entry` suppresses `diag`. Three forms:
/// a whole file (`crates/x/src/lib.rs`), a specific line
/// (`crates/x/src/lib.rs:120`), or a function (`crates/x/src/lib.rs::solve`).
pub fn allow_matches(entry: &str, diag: &Diagnostic) -> bool {
    if let Some((file, sym)) = entry.split_once("::") {
        return file == diag.file && diag.symbol.as_deref() == Some(sym);
    }
    if let Some((file, line)) = entry.rsplit_once(':') {
        if let Ok(line) = line.parse::<u32>() {
            return file == diag.file && line == diag.line;
        }
    }
    entry == diag.file
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "r",
            file: "crates/x/src/lib.rs".into(),
            line: 12,
            symbol: Some("solve".into()),
            message: "m".into(),
        }
    }

    #[test]
    fn display_is_machine_readable() {
        assert_eq!(diag().to_string(), "crates/x/src/lib.rs:12: [r] m");
    }

    #[test]
    fn allow_forms() {
        let d = diag();
        assert!(allow_matches("crates/x/src/lib.rs", &d));
        assert!(allow_matches("crates/x/src/lib.rs:12", &d));
        assert!(allow_matches("crates/x/src/lib.rs::solve", &d));
        assert!(!allow_matches("crates/x/src/lib.rs:13", &d));
        assert!(!allow_matches("crates/x/src/lib.rs::other", &d));
        assert!(!allow_matches("crates/y/src/lib.rs", &d));
    }
}
