//! `lock-order`: a workspace-wide total order over `Mutex`/`RwLock`
//! acquisition, derived from observed nesting. If lock B is ever acquired
//! while lock A is held, the pair (A, B) is an ordering constraint; a cycle
//! in the constraint graph is a deadlock candidate — two threads taking the
//! cycle's locks in opposite orders can each hold one and wait forever for
//! the other. Landing this before the synthesis-as-a-service daemon exists
//! means its worker/janitor/store lock discipline is born checked.
//!
//! Mechanics, all token-level and name-based:
//!
//! * **Lock names** are harvested from declarations: a binding or field
//!   whose type or initializer mentions `Mutex`/`RwLock` (`finished:
//!   Mutex<…>`, `slots: Vec<Mutex<…>>`, `= Mutex::new(…)`).
//! * An **acquisition site** is `name.lock(…)`, `name.read(…)`, or
//!   `name.write(…)` (optionally through an index `name[i].lock(…)`) where
//!   `name` is a harvested lock name — gating on harvested names keeps
//!   `io::Read::read` and friends out.
//! * A guard is assumed **held until the end of its enclosing block** (the
//!   RAII default; an early `drop` only over-approximates the held range,
//!   which can only add constraints, never hide one).
//! * While held, a direct acquisition adds an edge, and a call to a
//!   function that (transitively, over the name-union call graph) acquires
//!   locks adds an edge per acquired lock.
//!
//! Distinct locks sharing a field name are merged by design: a name-level
//! cycle is worth human eyes even when the runtime instances differ, and
//! the allowlist takes the false positives.

use super::support::is_call_at;
use super::{Rule, Workspace};
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

pub struct LockOrder;

/// One observed nesting: `held` was held at `site` when `acquired` was
/// taken (directly or through the call named `via`).
#[derive(Debug, Clone)]
struct Nesting {
    held: String,
    acquired: String,
    file: String,
    line: u32,
    symbol: String,
    via: Option<String>,
}

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "Mutex/RwLock acquisition nesting must admit a workspace-wide total order (no cycles)"
    }

    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic> {
        let methods_default = ["lock".to_string(), "read".to_string(), "write".to_string()];
        let methods = config.list_or(self.name(), "acquire-methods", &methods_default);

        let lock_names = harvest_lock_names(workspace);
        if lock_names.is_empty() {
            return Vec::new();
        }

        // Per-function direct acquisitions, and the transitive closure over
        // the name-union call graph.
        let mut direct: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        let mut calls: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for file in &workspace.files {
            for f in &file.functions {
                if f.in_test {
                    continue;
                }
                let body = &file.tokens()[f.body.clone()];
                let acquired: BTreeSet<String> = acquisition_sites(body, &lock_names, methods)
                    .into_iter()
                    .map(|(_, name)| name)
                    .collect();
                direct.entry(f.name.as_str()).or_default().extend(acquired);
                calls
                    .entry(f.name.as_str())
                    .or_default()
                    .extend(f.calls.iter().map(String::as_str));
            }
        }
        let transitive = transitive_acquires(&direct, &calls);

        // Observed nestings.
        let mut nestings: Vec<Nesting> = Vec::new();
        for file in &workspace.files {
            for f in &file.functions {
                if f.in_test {
                    continue;
                }
                let body = &file.tokens()[f.body.clone()];
                let sites = acquisition_sites(body, &lock_names, methods);
                for &(at, ref held) in &sites {
                    let held_until = enclosing_block_end(body, at);
                    // Direct acquisitions inside the held range.
                    for &(at2, ref acquired) in &sites {
                        if at2 > at && at2 < held_until {
                            nestings.push(Nesting {
                                held: held.clone(),
                                acquired: acquired.clone(),
                                file: file.rel_path.clone(),
                                line: body[at2].line,
                                symbol: f.name.clone(),
                                via: None,
                            });
                        }
                    }
                    // Calls that transitively acquire, inside the held range.
                    for i in at + 1..held_until.min(body.len()) {
                        if !is_call_at(body, i) {
                            continue;
                        }
                        let callee = body[i].text.as_str();
                        if methods.iter().any(|m| m == callee) {
                            continue; // the acquisitions themselves
                        }
                        if let Some(acquires) = transitive.get(callee) {
                            for acquired in acquires {
                                nestings.push(Nesting {
                                    held: held.clone(),
                                    acquired: acquired.clone(),
                                    file: file.rel_path.clone(),
                                    line: body[i].line,
                                    symbol: f.name.clone(),
                                    via: Some(callee.to_string()),
                                });
                            }
                        }
                    }
                }
            }
        }

        report_cycles(self.name(), &nestings)
    }
}

/// Harvests the names of bindings/fields declared with a `Mutex`/`RwLock`
/// type or initializer anywhere in the workspace (tests included — a lock
/// is a lock).
fn harvest_lock_names(workspace: &Workspace) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in &workspace.files {
        let tokens = file.tokens();
        for (i, t) in tokens.iter().enumerate() {
            if !(t.is_ident("Mutex") || t.is_ident("RwLock")) {
                continue;
            }
            // Walk back over type/initializer tokens to the introducing
            // `name :` or `name =`, bounded by the statement start.
            let mut j = i;
            let mut guard = 0;
            while j > 0 && guard < 24 {
                j -= 1;
                guard += 1;
                let t = &tokens[j];
                if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") || t.is_ident("let") {
                    break;
                }
                if (t.is_punct(":") || t.is_punct("=")) && j > 0 {
                    let prev = &tokens[j - 1];
                    if prev.kind == TokenKind::Ident {
                        names.insert(prev.text.clone());
                    }
                    break;
                }
            }
        }
    }
    names
}

/// `(token index of the lock name, lock name)` for every acquisition in a
/// body: `name.lock(`, `name.read(`, `name.write(`, `name[…].lock(`.
fn acquisition_sites(
    body: &[Token],
    lock_names: &BTreeSet<String>,
    methods: &[String],
) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident || !lock_names.contains(&t.text) {
            continue;
        }
        let mut j = i + 1;
        // Optional index: `name[…]`.
        if body.get(j).is_some_and(|t| t.is_punct("[")) {
            let mut depth = 0i32;
            while j < body.len() {
                if body[j].is_punct("[") {
                    depth += 1;
                } else if body[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if body.get(j).is_some_and(|t| t.is_punct("."))
            && body
                .get(j + 1)
                .is_some_and(|t| methods.iter().any(|m| t.is_ident(m)))
            && body.get(j + 2).is_some_and(|t| t.is_punct("("))
        {
            out.push((i, t.text.clone()));
        }
    }
    out
}

/// The token index one past the end of the block enclosing `at` (where a
/// guard taken at `at` is dropped).
fn enclosing_block_end(body: &[Token], at: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in body.iter().enumerate().skip(at) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        }
    }
    body.len()
}

/// For every function name, the set of lock names it may acquire,
/// transitively over the name-union call graph.
fn transitive_acquires<'m>(
    direct: &'m BTreeMap<&str, BTreeSet<String>>,
    calls: &'m BTreeMap<&str, BTreeSet<&str>>,
) -> BTreeMap<&'m str, BTreeSet<String>> {
    let mut out: BTreeMap<&str, BTreeSet<String>> =
        direct.iter().map(|(&k, v)| (k, v.clone())).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (name, callees) in calls {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for callee in callees {
                if let Some(acquires) = out.get(callee) {
                    add.extend(acquires.iter().cloned());
                }
            }
            let entry = out.entry(name).or_default();
            let before = entry.len();
            entry.extend(add);
            if entry.len() != before {
                changed = true;
            }
        }
    }
    out.retain(|_, v| !v.is_empty());
    out
}

/// Builds the constraint graph and reports one diagnostic per edge that
/// participates in a cycle (including self-edges: re-acquiring a held
/// non-reentrant lock deadlocks on the spot).
fn report_cycles(rule: &'static str, nestings: &[Nesting]) -> Vec<Diagnostic> {
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for n in nestings {
        edges.entry(&n.held).or_default().insert(&n.acquired);
    }
    // A node set; detect which ordered pairs lie on a cycle: edge (a, b) is
    // cyclic iff b reaches a.
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut queue = vec![from];
        while let Some(v) = queue.pop() {
            if !seen.insert(v) {
                continue;
            }
            if v == to {
                return true;
            }
            if let Some(next) = edges.get(v) {
                queue.extend(next.iter().copied());
            }
        }
        false
    };
    let mut out = Vec::new();
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for n in nestings {
        if !reaches(&n.acquired, &n.held) {
            continue; // edge not on a cycle; consistent with a total order
        }
        if !reported.insert((n.held.clone(), n.acquired.clone())) {
            continue; // one report per ordered pair
        }
        let via = match &n.via {
            Some(callee) => format!(" via call to `{callee}`"),
            None => String::new(),
        };
        let detail = if n.held == n.acquired {
            format!(
                "lock `{}` may be re-acquired while already held{via}; \
                 non-reentrant locks deadlock on the spot",
                n.held
            )
        } else {
            format!(
                "lock `{}` is acquired while `{}` is held{via}, but the reverse \
                 nesting also exists — deadlock candidate; pick one global order",
                n.acquired, n.held
            )
        };
        out.push(Diagnostic {
            rule,
            file: n.file.clone(),
            line: n.line,
            symbol: Some(n.symbol.clone()),
            message: detail,
        });
    }
    out
}
