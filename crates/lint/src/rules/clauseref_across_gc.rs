//! `clauseref-across-gc` (v2): no `ClauseRef` local may be used after a
//! call that can run clause-arena garbage collection, unless it is rebound
//! first. GC compacts the arena and remaps every *tracked* reference
//! through the relocation table — but a stale local still indexes the old
//! layout, silently reading a different clause (or freed space) afterwards.
//! This is the classic arena bug class; the solver hit exactly this shape
//! before the arena landed its forwarding headers.
//!
//! v1 was a lexical heuristic (binding … trigger … use, in token order),
//! which both missed uses reached only through control flow and flagged
//! code that rebinds on every path after the GC. v2 is a forward
//! may-analysis over the function's CFG with one "may be stale" bit per
//! tracked variable:
//!
//! * a **definition** — `let` pattern, `for` pattern, `match` arm binding,
//!   or assignment (including the remap idiom
//!   `*cref = reloc.forward(*cref)`) — *kills* the bit: the variable now
//!   holds a post-GC value;
//! * a call to a configured **GC trigger** *gens* the bit for every
//!   tracked variable: whatever they held may have moved;
//! * a **use** of a variable whose bit may be set is a violation.
//!
//! "May" is the right polarity: a use is flagged iff *some* path reaches it
//! through a GC trigger with no intervening rebind — exactly the stale-ref
//! condition. Code that remaps on every path (e.g. `collect_garbage`'s own
//! relocation loops) comes out clean with no allowlist entry.
//!
//! Tracked variables are the configured ref-idents plus any identifier with
//! an explicit `: ClauseRef` ascription. Field accesses (`self.cref`) are
//! not tracked — only locals go stale silently; fields are the remapper's
//! own responsibility and have their own tracked-refs discipline.

use super::support::{body_token_line, CfgCache};
use super::{Rule, Workspace};
use crate::config::LintConfig;
use crate::dataflow::{forward, BitSet, Meet};
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::source::{FnItem, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

pub struct ClauseRefAcrossGc;

impl Rule for ClauseRefAcrossGc {
    fn name(&self) -> &'static str {
        "clauseref-across-gc"
    }

    fn description(&self) -> &'static str {
        "no ClauseRef local may be used after arena GC on any path without being rebound"
    }

    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic> {
        let scopes_default = ["crates/sat/src".to_string()];
        let scopes = config.list_or(self.name(), "scopes", &scopes_default);
        let triggers_default = [
            "maybe_collect_garbage".to_string(),
            "collect_garbage".to_string(),
            "reduce_db".to_string(),
            "reduce_learnt_db".to_string(),
            "simplify".to_string(),
            "inprocess".to_string(),
        ];
        let triggers = config.list_or(self.name(), "gc-triggers", &triggers_default);
        let idents_default = [
            "cref".to_string(),
            "confl".to_string(),
            "clause_ref".to_string(),
        ];
        let ref_idents = config.list_or(self.name(), "ref-idents", &idents_default);

        let mut cfgs = CfgCache::default();
        let mut out = Vec::new();
        for file in &workspace.files {
            if !scopes.iter().any(|s| file.rel_path.starts_with(s.as_str())) {
                continue;
            }
            for f in &file.functions {
                if f.in_test || f.body.is_empty() {
                    continue;
                }
                check_fn(
                    self.name(),
                    file,
                    f,
                    triggers,
                    ref_idents,
                    &mut cfgs,
                    &mut out,
                );
            }
        }
        out
    }
}

/// The per-function token model: tracked variables, definition sites, GC
/// trigger sites.
struct FnModel {
    vars: Vec<String>,
    /// body-relative token index of a defined variable -> var number.
    defs: BTreeMap<usize, usize>,
    /// body-relative token indices of GC-trigger call names.
    triggers: BTreeSet<usize>,
    trigger_names: BTreeSet<String>,
}

fn check_fn(
    rule: &'static str,
    file: &SourceFile,
    f: &FnItem,
    triggers: &[String],
    ref_idents: &[String],
    cfgs: &mut CfgCache,
    out: &mut Vec<Diagnostic>,
) {
    let body = &file.tokens()[f.body.clone()];
    let model = build_model(body, triggers, ref_idents);
    if model.vars.is_empty() || model.triggers.is_empty() {
        return;
    }

    let cfg = cfgs.cfg(file, f).clone();
    let replay = |state: &mut BitSet, i: usize, model: &FnModel| {
        if let Some(&v) = model.defs.get(&i) {
            state.remove(v);
        } else if model.triggers.contains(&i) {
            for v in 0..model.vars.len() {
                state.insert(v);
            }
        }
    };
    let mut transfer = |id: usize, input: &BitSet| {
        let mut state = input.clone();
        for i in cfg.nodes[id].tokens.clone() {
            replay(&mut state, i, &model);
        }
        state
    };
    let sol = forward(
        &cfg,
        model.vars.len(),
        Meet::Union,
        BitSet::empty(model.vars.len()),
        &mut transfer,
    );

    // Report the first may-stale use of each variable.
    let mut reported: BTreeSet<usize> = BTreeSet::new();
    for (id, node) in cfg.nodes.iter().enumerate() {
        let mut state = sol.input[id].clone();
        for i in node.tokens.clone() {
            if let Some(v) = use_at(body, i, &model) {
                if state.contains(v) && reported.insert(v) {
                    out.push(Diagnostic {
                        rule,
                        file: file.rel_path.clone(),
                        line: body_token_line(file, f, i),
                        symbol: Some(f.name.clone()),
                        message: format!(
                            "ClauseRef `{}` may be used after a GC-triggering call ({}) \
                             on some path without being rebound; the arena may have been \
                             compacted under it",
                            model.vars[v],
                            model
                                .trigger_names
                                .iter()
                                .cloned()
                                .collect::<Vec<_>>()
                                .join("/"),
                        ),
                    });
                }
            }
            replay(&mut state, i, &model);
        }
    }
}

/// `Some(var)` if body token `i` is a *use* of a tracked variable: a
/// tracked identifier that is not a definition site and not a field access
/// (`.name`).
fn use_at(body: &[Token], i: usize, model: &FnModel) -> Option<usize> {
    if model.defs.contains_key(&i) {
        return None;
    }
    let t = &body[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    if i > 0 && (body[i - 1].is_punct(".") || body[i - 1].is_punct("::")) {
        return None;
    }
    model.vars.iter().position(|v| t.is_ident(v))
}

/// Builds the [`FnModel`]: which identifiers are tracked, where they are
/// defined, and where the GC triggers are called.
fn build_model(body: &[Token], triggers: &[String], ref_idents: &[String]) -> FnModel {
    // Pass 1: tracked variable names — configured idents that occur, plus
    // anything locally ascribed `: ClauseRef`.
    let mut names: BTreeSet<String> = BTreeSet::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let configured = ref_idents.iter().any(|r| t.is_ident(r));
        let ascribed = body.get(i + 1).is_some_and(|t| t.is_punct(":"))
            && body.get(i + 2).is_some_and(|t| t.is_ident("ClauseRef"));
        if configured || ascribed {
            names.insert(t.text.clone());
        }
    }
    let vars: Vec<String> = names.into_iter().collect();
    let var_of = |t: &Token| -> Option<usize> {
        (t.kind == TokenKind::Ident).then(|| vars.iter().position(|v| t.is_ident(v)))?
    };

    let mut defs: BTreeMap<usize, usize> = BTreeMap::new();
    let mut trigger_sites: BTreeSet<usize> = BTreeSet::new();
    let mut trigger_names: BTreeSet<String> = BTreeSet::new();
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.is_ident("let") {
            // Every tracked ident in the pattern (up to the initializing `=`
            // or the terminating `;`) is a definition.
            let mut j = i + 1;
            while j < body.len() {
                let t = &body[j];
                if t.is_punct(";") {
                    break;
                }
                if t.is_punct("=")
                    && !body.get(j + 1).is_some_and(|n| n.is_punct("="))
                    && !body.get(j + 1).is_some_and(|n| n.is_punct(">"))
                {
                    break;
                }
                if let Some(v) = var_of(t) {
                    defs.insert(j, v);
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if t.is_ident("for") {
            // `for <pattern> in …`: pattern idents are definitions.
            let mut j = i + 1;
            while j < body.len() && !body[j].is_ident("in") {
                if let Some(v) = var_of(&body[j]) {
                    defs.insert(j, v);
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if t.kind == TokenKind::Ident
            && triggers.iter().any(|g| t.is_ident(g))
            && body.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            trigger_sites.insert(i);
            trigger_names.insert(t.text.clone());
            i += 1;
            continue;
        }
        if let Some(v) = var_of(t) {
            let not_field = i == 0 || !(body[i - 1].is_punct(".") || body[i - 1].is_punct("::"));
            // Assignment `x = …` (not `==`, not `=>`): a rebind.
            let assigned = body.get(i + 1).is_some_and(|n| n.is_punct("="))
                && !body.get(i + 2).is_some_and(|n| n.is_punct("="))
                && !body.get(i + 2).is_some_and(|n| n.is_punct(">"));
            // Match-arm binding `x => …` or `Some(x) => …`.
            let mut j = i + 1;
            while body.get(j).is_some_and(|t| t.is_punct(")")) {
                j += 1;
            }
            let arm_bound = body.get(j).is_some_and(|t| t.is_punct("="))
                && body.get(j + 1).is_some_and(|t| t.is_punct(">"));
            if not_field && (assigned || arm_bound) {
                defs.insert(i, v);
            }
        }
        i += 1;
    }

    FnModel {
        vars,
        defs,
        triggers: trigger_sites,
        trigger_names,
    }
}
