//! `clauseref-across-gc`: a `ClauseRef` local must not be used after a call
//! that may run clause-arena garbage collection. GC compacts the arena and
//! remaps every *tracked* reference through the relocation table — but a
//! stale local still indexes the old layout, silently reading a different
//! clause (or freed space) afterwards. This is the classic arena bug class;
//! the solver hit exactly this shape before the arena landed its forwarding
//! headers.
//!
//! Detection is textual within one function body: a binding of a known
//! ClauseRef-typed local (by configured name, or by explicit `: ClauseRef`
//! ascription), followed by a call to a configured GC-trigger function,
//! followed by another use of that local. Bindings are superseded by
//! re-`let`s of the same name. Functions that legitimately hold refs across
//! GC because they *perform* the remap (e.g. `collect_garbage` itself)
//! belong in the allowlist.

use super::{Rule, Workspace};
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::source::FnItem;

pub struct ClauseRefAcrossGc;

impl Rule for ClauseRefAcrossGc {
    fn name(&self) -> &'static str {
        "clauseref-across-gc"
    }

    fn description(&self) -> &'static str {
        "no ClauseRef local may live across a call that can GC the clause arena"
    }

    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic> {
        let scopes_default = ["crates/sat/src".to_string()];
        let scopes = config.list_or(self.name(), "scopes", &scopes_default);
        let triggers_default = [
            "maybe_collect_garbage".to_string(),
            "collect_garbage".to_string(),
            "reduce_db".to_string(),
            "reduce_learnt_db".to_string(),
            "simplify".to_string(),
            "inprocess".to_string(),
        ];
        let triggers = config.list_or(self.name(), "gc-triggers", &triggers_default);
        let idents_default = [
            "cref".to_string(),
            "confl".to_string(),
            "clause_ref".to_string(),
        ];
        let ref_idents = config.list_or(self.name(), "ref-idents", &idents_default);

        let mut out = Vec::new();
        for file in &workspace.files {
            if !scopes.iter().any(|s| file.rel_path.starts_with(s.as_str())) {
                continue;
            }
            for f in &file.functions {
                if f.in_test {
                    continue;
                }
                check_fn(self.name(), file, f, triggers, ref_idents, &mut out);
            }
        }
        out
    }
}

/// A ClauseRef binding and its live range within the body token slice. The
/// range ends at the next re-`let` of the same name (or the body end), so
/// rebinding after GC starts a fresh, valid reference.
struct Binding {
    name: String,
    token: usize,
    end: usize,
    line: u32,
}

fn check_fn(
    rule: &'static str,
    file: &crate::source::SourceFile,
    f: &FnItem,
    triggers: &[String],
    ref_idents: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let tokens = file.tokens();
    let body = &tokens[f.body.clone()];
    let mut bindings: Vec<Binding> = Vec::new();
    let mut trigger_calls: Vec<(usize, u32, String)> = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if t.is_ident("let") {
            if let Some((name, at)) = binding_name(body, i, ref_idents) {
                // A re-`let` closes the previous binding's live range.
                for b in bindings.iter_mut().filter(|b| b.name == name) {
                    b.end = b.end.min(i);
                }
                bindings.push(Binding {
                    name,
                    token: at,
                    end: body.len(),
                    line: body[at].line,
                });
            }
        } else if t.kind == TokenKind::Ident
            && triggers.iter().any(|g| t.is_ident(g))
            && body.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            trigger_calls.push((i, t.line, t.text.clone()));
        }
    }
    // For each binding, find the first use after the first in-range trigger
    // that follows the binding.
    for b in &bindings {
        let Some((t_idx, t_line, t_name)) = trigger_calls
            .iter()
            .find(|(i, _, _)| *i > b.token && *i < b.end)
        else {
            continue;
        };
        let Some(use_tok) = body
            .iter()
            .enumerate()
            .take(b.end)
            .skip(t_idx + 1)
            .find(|(_, t)| t.is_ident(&b.name))
        else {
            continue;
        };
        out.push(Diagnostic {
            rule,
            file: file.rel_path.clone(),
            line: use_tok.1.line,
            symbol: Some(f.name.clone()),
            message: format!(
                "ClauseRef `{}` (bound line {}) is used after `{}` (line {}), \
                 which may compact the clause arena and invalidate it",
                b.name, b.line, t_name, t_line
            ),
        });
    }
}

/// Recognises `let [mut] x`, `let Some([mut] x)`, and `let x: ClauseRef`
/// starting at the `let` token `i`; returns the bound name and its token
/// index when it is a ClauseRef binding.
fn binding_name(body: &[Token], i: usize, ref_idents: &[String]) -> Option<(String, usize)> {
    let mut j = i + 1;
    if body.get(j).is_some_and(|t| t.is_ident("Some"))
        && body.get(j + 1).is_some_and(|t| t.is_punct("("))
    {
        j += 2;
    }
    if body.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let tok = body.get(j)?;
    if tok.kind != TokenKind::Ident {
        return None;
    }
    let by_name = ref_idents.iter().any(|r| tok.is_ident(r));
    let by_type = body.get(j + 1).is_some_and(|t| t.is_punct(":"))
        && body.get(j + 2).is_some_and(|t| t.is_ident("ClauseRef"));
    (by_name || by_type).then(|| (tok.text.clone(), j))
}
