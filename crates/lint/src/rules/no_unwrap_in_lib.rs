//! `no-unwrap-in-lib`: library (non-test) code in the solver-critical crates
//! must not call `.unwrap()`, and every `.expect(…)` must carry an adjacent
//! `// invariant:` comment stating why the value cannot be absent. Panics in
//! the solve path abort a whole synthesis run; failures must either be
//! impossible-by-invariant (and say so) or flow through typed errors.

use super::{Rule, Workspace};
use crate::config::LintConfig;
use crate::diag::Diagnostic;

pub struct NoUnwrapInLib;

impl Rule for NoUnwrapInLib {
    fn name(&self) -> &'static str {
        "no-unwrap-in-lib"
    }

    fn description(&self) -> &'static str {
        "no unwrap(), and expect() only with an `// invariant:` comment, in lib code"
    }

    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic> {
        let crates_default = [
            "crates/sat/src".to_string(),
            "crates/cnf/src".to_string(),
            "crates/maxsat/src".to_string(),
            "crates/core/src".to_string(),
        ];
        let scopes = config.list_or(self.name(), "scopes", &crates_default);
        let marker_default = ["invariant:".to_string()];
        let marker = &config.list_or(self.name(), "marker", &marker_default)[0];
        let mut out = Vec::new();
        for file in &workspace.files {
            if !scopes.iter().any(|s| file.rel_path.starts_with(s.as_str())) {
                continue;
            }
            let tokens = file.tokens();
            for i in 0..tokens.len() {
                if file.in_test.get(i).copied().unwrap_or(false) {
                    continue;
                }
                // Method-call shape only: `. name (`. Free fns named
                // `unwrap`/`expect` don't exist here, and this keeps
                // `unwrap_or`-family names (distinct idents) unmatched.
                let is_call = |name: &str| {
                    tokens[i].is_punct(".")
                        && tokens.get(i + 1).is_some_and(|t| t.is_ident(name))
                        && tokens.get(i + 2).is_some_and(|t| t.is_punct("("))
                };
                let symbol = || Workspace::enclosing_fn(file, i).map(|f| f.name.clone());
                if is_call("unwrap") {
                    out.push(Diagnostic {
                        rule: self.name(),
                        file: file.rel_path.clone(),
                        line: tokens[i + 1].line,
                        symbol: symbol(),
                        message: "`.unwrap()` in library code; use a typed error or \
                                  `.expect(…)` with an `// invariant:` comment"
                            .to_string(),
                    });
                } else if is_call("expect") {
                    let line = tokens[i + 1].line;
                    if !file.has_adjacent_marker(marker, line) {
                        out.push(Diagnostic {
                            rule: self.name(),
                            file: file.rel_path.clone(),
                            line,
                            symbol: symbol(),
                            message: format!(
                                "`.expect(…)` without an adjacent `// {marker}` comment \
                                 stating why the value is always present"
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}
