//! Shared helpers for the CFG/dataflow rules: call-site detection, per-
//! function CFG construction, and line mapping.

use crate::cfg::Cfg;
use crate::lexer::{Token, TokenKind};
use crate::source::{FnItem, SourceFile};
use std::collections::BTreeMap;

/// `true` if the identifier token at `i` is used as a call: directly
/// followed by `(`, or by a turbofish `::<…>(`.
pub fn is_call_at(tokens: &[Token], i: usize) -> bool {
    if tokens[i].kind != TokenKind::Ident {
        return false;
    }
    match tokens.get(i + 1) {
        Some(t) if t.is_punct("(") => true,
        Some(t) if t.is_punct("::") => tokens.get(i + 2).is_some_and(|t| t.is_punct("<")),
        _ => false,
    }
}

/// A per-file cache of function CFGs keyed by the function's body range, so
/// rules sharing the workspace don't rebuild graphs.
#[derive(Default)]
pub struct CfgCache {
    by_fn: BTreeMap<(String, usize, usize), Cfg>,
}

impl CfgCache {
    /// The CFG of `f`'s body within `file` (built on first request).
    pub fn cfg(&mut self, file: &SourceFile, f: &FnItem) -> &Cfg {
        self.by_fn
            .entry((file.rel_path.clone(), f.body.start, f.body.end))
            .or_insert_with(|| Cfg::build(&file.tokens()[f.body.clone()]))
    }
}

/// The source line of body-relative token `i` of `f` (falling back to the
/// `fn` line for empty bodies).
pub fn body_token_line(file: &SourceFile, f: &FnItem, i: usize) -> u32 {
    file.tokens()
        .get(f.body.start + i)
        .map(|t| t.line)
        .unwrap_or(f.line)
}

/// All `(body-relative index, called name)` pairs in `f`'s body.
pub fn call_sites<'a>(file: &'a SourceFile, f: &FnItem) -> Vec<(usize, &'a str)> {
    let body = &file.tokens()[f.body.clone()];
    (0..body.len())
        .filter(|&i| is_call_at(body, i))
        .map(|i| (i, body[i].text.as_str()))
        .collect()
}
