//! `proof-discipline`: every function in the proof-logged crates that
//! appends to or deletes from the clause arena must reach a `ProofTracer`
//! emit on all paths through the mutation. The DRAT certificate is only as
//! sound as the log's completeness — an arena write the tracer never sees
//! is a clause the checker never propagates, and the proof it would have
//! carried silently vanishes. This rule makes the invariant survive future
//! solver work by construction instead of by review.
//!
//! The analysis mirrors `budget-before-solve`: intra-procedural over each
//! function's CFG with interprocedural summaries over the name-union call
//! graph:
//!
//! * **may-mutate** (least fixpoint): names that (transitively) reach a
//!   mutation marker — a call to such a name is itself a mutation event
//!   unless the callee is safe.
//! * **always-emits** (least fixpoint): a function that performs a tracer
//!   emit on *every* entry-to-exit path summarizes as a gen at its call
//!   sites.
//! * **safe** (greatest fixpoint): a function whose own mutation events are
//!   all emit-covered needs no emit around calls to it — its logging is
//!   internal (this is how `reduce_db`/`simplify` callers stay clean).
//!
//! A mutation event is *covered* when a tracer emit happens before it on
//! all paths from the entry, or after it on all paths to the exit — the
//! two-sided must-form of "every path through the mutation logs". This is
//! slightly stronger than the per-path disjunction (a function emitting
//! before the mutation on one path and after it on another would be
//! flagged), which biases toward reporting only shapes where some path
//! plausibly skips the log entirely; in the solver the emit is adjacent to
//! the mutation, so the gap never bites. The one deliberate exception — the
//! original-formula load, whose clauses enter the certificate CNF verbatim
//! rather than through the proof — is allowlisted in `lint.toml`.

use super::support::{body_token_line, call_sites, is_call_at, CfgCache};
use super::{Rule, Workspace};
use crate::cfg::{Cfg, Node};
use crate::config::LintConfig;
use crate::dataflow::{forward, BitSet, Meet};
use crate::diag::Diagnostic;
use crate::source::{FnItem, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

pub struct ProofDiscipline;

impl Rule for ProofDiscipline {
    fn name(&self) -> &'static str {
        "proof-discipline"
    }

    fn description(&self) -> &'static str {
        "every clause-arena mutation reaches a ProofTracer emit on all paths"
    }

    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic> {
        let scopes_default = [
            "crates/sat/src".to_string(),
            "crates/maxsat/src".to_string(),
        ];
        let scopes = config.list_or(self.name(), "scopes", &scopes_default);
        let emits_default = [
            "emit_add".to_string(),
            "emit_delete".to_string(),
            "emit_original".to_string(),
        ];
        let emits = config.list_or(self.name(), "emit-markers", &emits_default);
        let mutations_default = [
            "alloc".to_string(),
            "delete".to_string(),
            "remove_lit".to_string(),
        ];
        let mutations = config.list_or(self.name(), "mutation-markers", &mutations_default);

        let mut analysis = Analysis {
            workspace,
            cfgs: CfgCache::default(),
            emits,
            mutations,
            may_mutate: BTreeSet::new(),
            always_emits: BTreeSet::new(),
            safe: BTreeSet::new(),
        };
        analysis.compute_summaries();

        let mut out = Vec::new();
        for file in &workspace.files {
            if !scopes.iter().any(|s| file.rel_path.starts_with(s.as_str())) {
                continue;
            }
            for f in &file.functions {
                if f.in_test {
                    continue;
                }
                for event in analysis.uncovered_events(file, f) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        file: file.rel_path.clone(),
                        line: event.line,
                        symbol: Some(f.name.clone()),
                        message: event.message,
                    });
                }
            }
        }
        out
    }
}

/// An emit-uncovered mutation event, ready to report.
struct UncoveredEvent {
    line: u32,
    message: String,
}

struct Analysis<'a> {
    workspace: &'a Workspace,
    cfgs: CfgCache,
    emits: &'a [String],
    mutations: &'a [String],
    /// Names that may (transitively) mutate the clause arena.
    may_mutate: BTreeSet<String>,
    /// Names whose every fn emits on every entry-to-exit path.
    always_emits: BTreeSet<String>,
    /// Names whose every fn has all its mutation events emit-covered.
    safe: BTreeSet<String>,
}

impl<'a> Analysis<'a> {
    fn compute_summaries(&mut self) {
        let ws = self.workspace;
        let mut fns_by_name: BTreeMap<&'a str, Vec<(&'a SourceFile, &'a FnItem)>> = BTreeMap::new();
        for file in &ws.files {
            for f in &file.functions {
                if !f.in_test {
                    fns_by_name
                        .entry(f.name.as_str())
                        .or_default()
                        .push((file, f));
                }
            }
        }

        // may_mutate: least fixpoint over the name-union call graph.
        let mut changed = true;
        while changed {
            changed = false;
            for (name, fns) in &fns_by_name {
                if self.may_mutate.contains(*name) {
                    continue;
                }
                let hits = fns.iter().any(|(_, f)| {
                    f.calls.iter().any(|c| {
                        self.mutations.iter().any(|m| m == c) || self.may_mutate.contains(c)
                    })
                });
                if hits {
                    self.may_mutate.insert((*name).to_string());
                    changed = true;
                }
            }
        }

        // always_emits: least fixpoint; every fn of the name must emit at
        // exit on all paths, given the current gen set.
        let mut changed = true;
        while changed {
            changed = false;
            for (name, fns) in &fns_by_name {
                if self.always_emits.contains(*name) {
                    continue;
                }
                let all =
                    !fns.is_empty() && fns.iter().all(|(file, f)| self.emits_at_exit(file, f));
                if all {
                    self.always_emits.insert((*name).to_string());
                    changed = true;
                }
            }
        }

        // safe: greatest fixpoint; start optimistic, strike out functions
        // with uncovered events until stable.
        self.safe = fns_by_name.keys().map(|n| n.to_string()).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for (name, fns) in &fns_by_name {
                if !self.safe.contains(*name) {
                    continue;
                }
                let bad = fns
                    .iter()
                    .any(|(file, f)| !self.uncovered_events(file, f).is_empty());
                if bad {
                    self.safe.remove(*name);
                    changed = true;
                }
            }
        }
    }

    /// `true` if an emit-marker call (or an always-emits callee call)
    /// happens on every path from `f`'s entry to its exit.
    fn emits_at_exit(&mut self, file: &SourceFile, f: &FnItem) -> bool {
        if f.body.is_empty() {
            return false;
        }
        let body = &file.tokens()[f.body.clone()];
        let gens = self.gen_positions(body);
        if gens.is_empty() {
            return false; // cheap cut: no gen anywhere
        }
        let cfg = self.cfgs.cfg(file, f).clone();
        let mut transfer = |id: usize, input: &BitSet| {
            let mut out = input.clone();
            if cfg.nodes[id].tokens.clone().any(|i| gens.contains(&i)) {
                out.insert(0);
            }
            out
        };
        let sol = forward(&cfg, 1, Meet::Intersect, BitSet::empty(1), &mut transfer);
        sol.input[cfg.exit].contains(0)
    }

    /// Body-relative positions of gen calls: emit markers and calls to
    /// always-emits names.
    fn gen_positions(&self, body: &[crate::lexer::Token]) -> BTreeSet<usize> {
        (0..body.len())
            .filter(|&i| {
                is_call_at(body, i)
                    && (self.emits.iter().any(|e| body[i].is_ident(e))
                        || self.always_emits.contains(&body[i].text))
            })
            .collect()
    }

    /// The mutation events of `f` not emit-covered, with report lines.
    fn uncovered_events(&mut self, file: &SourceFile, f: &FnItem) -> Vec<UncoveredEvent> {
        if f.body.is_empty() {
            return Vec::new();
        }
        let body = &file.tokens()[f.body.clone()];
        let gens = self.gen_positions(body);
        let events: Vec<(usize, String, bool)> = call_sites(file, f)
            .into_iter()
            .filter_map(|(i, name)| {
                if self.mutations.iter().any(|m| m == name) {
                    Some((i, name.to_string(), true))
                } else if self.may_mutate.contains(name)
                    && !self.safe.contains(name)
                    && !self.always_emits.contains(name)
                {
                    Some((i, name.to_string(), false))
                } else {
                    None
                }
            })
            .collect();
        if events.is_empty() {
            return Vec::new();
        }
        let cfg = self.cfgs.cfg(file, f).clone();
        let mut transfer = |id: usize, input: &BitSet| {
            let mut out = input.clone();
            if cfg.nodes[id].tokens.clone().any(|i| gens.contains(&i)) {
                out.insert(0);
            }
            out
        };
        // Forward must "emitted already" and (via the reversed graph)
        // backward must "emits later": the node-boundary halves of the
        // two-sided coverage check. Token order inside the event's own node
        // is resolved per event below.
        let fwd = forward(&cfg, 1, Meet::Intersect, BitSet::empty(1), &mut transfer);
        let rev_cfg = reversed(&cfg);
        let mut rev_transfer = |id: usize, input: &BitSet| {
            let mut out = input.clone();
            if rev_cfg.nodes[id].tokens.clone().any(|i| gens.contains(&i)) {
                out.insert(0);
            }
            out
        };
        let bwd = forward(
            &rev_cfg,
            1,
            Meet::Intersect,
            BitSet::empty(1),
            &mut rev_transfer,
        );
        let mut out = Vec::new();
        for (node_id, node) in cfg.nodes.iter().enumerate() {
            for i in node.tokens.clone() {
                let Some((_, name, direct)) = events.iter().find(|(e, _, _)| *e == i) else {
                    continue;
                };
                let before = fwd.input[node_id].contains(0)
                    || node.tokens.clone().any(|j| j < i && gens.contains(&j));
                let after = bwd.input[node_id].contains(0)
                    || node.tokens.clone().any(|j| j > i && gens.contains(&j));
                if before || after {
                    continue;
                }
                let line = body_token_line(file, f, i);
                let message = if *direct {
                    format!(
                        "clause-arena mutation `{}` is not covered by a ProofTracer \
                         emit ({}) on some path",
                        name,
                        self.emits.join("/"),
                    )
                } else {
                    format!(
                        "call to `{}` may mutate the clause arena, and no ProofTracer \
                         emit ({}) covers it on some path",
                        name,
                        self.emits.join("/"),
                    )
                };
                out.push(UncoveredEvent { line, message });
            }
        }
        out
    }
}

/// The edge-reversed CFG: running the forward must-solver over it yields the
/// backward "on all paths to the exit" analysis the coverage check needs.
fn reversed(cfg: &Cfg) -> Cfg {
    Cfg {
        nodes: cfg
            .nodes
            .iter()
            .map(|n| Node {
                tokens: n.tokens.clone(),
                succs: n.preds.clone(),
                preds: n.succs.clone(),
                loop_head: false,
            })
            .collect(),
        entry: cfg.exit,
        exit: cfg.entry,
        back_edges: Vec::new(),
    }
}
