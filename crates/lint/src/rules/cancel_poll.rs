//! `cancel-poll`: every public solve/sample/probe entry point in the
//! cancellation-aware crates must reach a `CancelToken` poll. A long-running
//! entry point that never polls turns cooperative cancellation into a dead
//! letter: the portfolio's losers keep burning CPU after a winner cancelled
//! them.
//!
//! Reachability is a name-union approximation: the workspace-wide map
//! `fn name → names it calls` is walked transitively from each entry point.
//! Distinct functions sharing a name are merged, which biases the analysis
//! toward *passing* — a miss therefore means no function of any reached name
//! polls, which is a real finding. Entry points that are legitimately
//! poll-free (e.g. pure accessors that merely match a prefix) belong in the
//! allowlist with a justification comment in `lint.toml`.

use super::{Rule, Workspace};
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

pub struct CancelPoll;

impl Rule for CancelPoll {
    fn name(&self) -> &'static str {
        "cancel-poll"
    }

    fn description(&self) -> &'static str {
        "pub solve/sample/probe entry points must reach a CancelToken poll"
    }

    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic> {
        let prefixes_default = [
            "solve".to_string(),
            "sample".to_string(),
            "probe".to_string(),
        ];
        let prefixes = config.list_or(self.name(), "entry-prefixes", &prefixes_default);
        let scopes_default = [
            "crates/sat/src".to_string(),
            "crates/maxsat/src".to_string(),
            "crates/sampler/src".to_string(),
            "crates/core/src/oracle".to_string(),
        ];
        let scopes = config.list_or(self.name(), "scopes", &scopes_default);
        let polls_default = ["is_cancelled".to_string()];
        let polls = config.list_or(self.name(), "poll-markers", &polls_default);

        // Workspace-wide call map: name → union of called names over every
        // function bearing that name.
        let mut call_map: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for file in &workspace.files {
            for f in &file.functions {
                let entry = call_map.entry(f.name.as_str()).or_default();
                entry.extend(f.calls.iter().map(String::as_str));
            }
        }

        let mut out = Vec::new();
        for file in &workspace.files {
            if !scopes.iter().any(|s| file.rel_path.starts_with(s.as_str())) {
                continue;
            }
            for f in &file.functions {
                if !f.is_pub || f.in_test || !matches_prefix(&f.name, prefixes) {
                    continue;
                }
                if reaches_poll(&f.name, &call_map, polls) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: self.name(),
                    file: file.rel_path.clone(),
                    line: f.line,
                    symbol: Some(f.name.clone()),
                    message: format!(
                        "pub fn `{}` never reaches a cancellation poll ({}); \
                         wire a poll or allowlist with a justification",
                        f.name,
                        polls.join("/")
                    ),
                });
            }
        }
        out
    }
}

/// Word-boundary prefix match: `solve` matches `solve` and
/// `solve_with_assumptions` but not `solver_config`.
fn matches_prefix(name: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        name.strip_prefix(p.as_str())
            .is_some_and(|rest| rest.is_empty() || rest.starts_with('_'))
    })
}

/// BFS over the name-union call graph from `entry`, looking for any poll
/// marker name.
fn reaches_poll(entry: &str, call_map: &BTreeMap<&str, BTreeSet<&str>>, polls: &[String]) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut queue: Vec<&str> = vec![entry];
    while let Some(name) = queue.pop() {
        if !seen.insert(name) {
            continue;
        }
        let Some(calls) = call_map.get(name) else {
            continue;
        };
        for callee in calls {
            if polls.iter().any(|p| p == callee) {
                return true;
            }
            if !seen.contains(callee) {
                queue.push(callee);
            }
        }
    }
    false
}
