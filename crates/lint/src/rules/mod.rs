//! The rule registry. Every rule scans the [`Workspace`] token model and
//! emits [`Diagnostic`]s; `lint.toml` allowlists are applied by the driver,
//! not the rules, so rule output is always the ground truth.

mod atomic_ordering;
mod budget_before_solve;
mod cancel_poll;
mod clauseref_across_gc;
mod forbid_unsafe_header;
mod lock_order;
mod no_unwrap_in_lib;
mod proof_discipline;
mod stats_counter_parity;
pub(crate) mod support;

pub use atomic_ordering::AtomicOrdering;
pub use budget_before_solve::BudgetBeforeSolve;
pub use cancel_poll::CancelPoll;
pub use clauseref_across_gc::ClauseRefAcrossGc;
pub use forbid_unsafe_header::ForbidUnsafeHeader;
pub use lock_order::LockOrder;
pub use no_unwrap_in_lib::NoUnwrapInLib;
pub use proof_discipline::ProofDiscipline;
pub use stats_counter_parity::StatsCounterParity;

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::{FnItem, SourceFile};

/// The scanned workspace: every source file the linter looks at.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Scanned files in path order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// The enclosing function of token `idx` in `file`, if any (innermost
    /// when functions nest).
    pub fn enclosing_fn(file: &SourceFile, idx: usize) -> Option<&FnItem> {
        file.functions
            .iter()
            .filter(|f| f.body.contains(&idx))
            .min_by_key(|f| f.body.len())
    }
}

/// A linter rule.
pub trait Rule {
    /// The rule's registry name (the `[section]` key in `lint.toml`).
    fn name(&self) -> &'static str;
    /// One-line description for `manthan3-lint rules`.
    fn description(&self) -> &'static str;
    /// Scans the workspace and returns every violation (pre-allowlist).
    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic>;
}

/// Every registered rule, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ForbidUnsafeHeader),
        Box::new(AtomicOrdering),
        Box::new(NoUnwrapInLib),
        Box::new(CancelPoll),
        Box::new(ClauseRefAcrossGc),
        Box::new(BudgetBeforeSolve),
        Box::new(ProofDiscipline),
        Box::new(LockOrder),
        Box::new(StatsCounterParity),
    ]
}
