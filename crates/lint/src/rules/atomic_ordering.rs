//! `atomic-ordering`: every `Ordering::<variant>` use on an atomic must carry
//! an adjacent `// ordering:` comment stating the contract the ordering
//! provides (what it publishes or what it may observe). `SeqCst` without a
//! justification is called out specifically: it is almost always either a
//! missing proof or a missing downgrade.

use super::{Rule, Workspace};
use crate::config::LintConfig;
use crate::diag::Diagnostic;

/// The `std::sync::atomic::Ordering` variants. `std::cmp::Ordering` paths
/// (`Ordering::Less` etc.) never match, so comparison code is untouched.
const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

pub struct AtomicOrdering;

impl Rule for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn description(&self) -> &'static str {
        "atomic Ordering uses need an adjacent `// ordering:` justification"
    }

    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic> {
        let marker_default = ["ordering:".to_string()];
        let marker = &config.list_or(self.name(), "marker", &marker_default)[0];
        let mut out = Vec::new();
        for file in &workspace.files {
            let tokens = file.tokens();
            for i in 0..tokens.len() {
                if file.in_test.get(i).copied().unwrap_or(false) {
                    continue;
                }
                let [a, b, c] = [tokens.get(i), tokens.get(i + 1), tokens.get(i + 2)];
                let (Some(a), Some(b), Some(c)) = (a, b, c) else {
                    continue;
                };
                if !(a.is_ident("Ordering") && b.is_punct("::")) {
                    continue;
                }
                let Some(variant) = ATOMIC_VARIANTS.iter().find(|v| c.is_ident(v)) else {
                    continue;
                };
                if file.has_adjacent_marker(marker, c.line) {
                    continue;
                }
                let symbol = Workspace::enclosing_fn(file, i).map(|f| f.name.clone());
                let detail = if *variant == "SeqCst" {
                    "; SeqCst in particular needs a proof it cannot be weakened"
                } else {
                    ""
                };
                out.push(Diagnostic {
                    rule: self.name(),
                    file: file.rel_path.clone(),
                    line: c.line,
                    symbol,
                    message: format!(
                        "`Ordering::{variant}` without an adjacent `// {marker}` \
                         justification comment{detail}"
                    ),
                });
            }
        }
        out
    }
}
