//! `budget-before-solve`: every path from a public `solve*`/`sample*`/
//! `probe*` entry point to an underlying solver invocation must pass a
//! budget admission check (`exhausted()` / `try_acquire`) first. This is the
//! path-sensitive upgrade of `cancel-poll`: the CEGIS loop is only as cheap
//! as its *refused* calls, so a branch that reaches the solver without
//! consulting the shared [`Budget`]/`CallBudget` silently burns work the
//! budget already said no to.
//!
//! The analysis is intra-procedural over each function's CFG, with two
//! interprocedural summaries over the name-union call graph:
//!
//! * **always-checks** (least fixpoint): a function that performs an
//!   admission check on *every* path from entry to exit summarizes as a gen
//!   — a call to it counts as a check at the call site.
//! * **safe** (greatest fixpoint): a function whose own solver invocations
//!   are all dominated by checks needs no check before calls to it — its
//!   admission is internal (this is how `Oracle::sample` delegating to the
//!   per-sample-admitting `Sampler::sample` stays clean).
//!
//! A *solve event* is a direct call to a configured solve marker (the
//! low-level `solve`/`solve_with_assumptions`/`solve_under_assumptions`
//! invocation names), or a call to a function that may (transitively) solve
//! and is not itself safe. The rule reports every event in an entry
//! function where the one-bit "checked" must-analysis does not hold.
//!
//! Like every rule here, imprecision biases toward passing: the check is
//! only required to be *performed* on the path, not proven to gate the
//! solve, and name-union merges same-named functions. A miss is therefore a
//! real path with no admission check anywhere on it.

use super::support::{body_token_line, call_sites, is_call_at, CfgCache};
use super::{Rule, Workspace};
use crate::config::LintConfig;
use crate::dataflow::{forward, BitSet, Meet};
use crate::diag::Diagnostic;
use crate::source::{FnItem, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

pub struct BudgetBeforeSolve;

impl Rule for BudgetBeforeSolve {
    fn name(&self) -> &'static str {
        "budget-before-solve"
    }

    fn description(&self) -> &'static str {
        "every path from a pub solve/sample/probe entry to a solver invocation checks the budget"
    }

    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic> {
        let prefixes_default = [
            "solve".to_string(),
            "sample".to_string(),
            "probe".to_string(),
        ];
        let prefixes = config.list_or(self.name(), "entry-prefixes", &prefixes_default);
        let scopes_default = [
            "crates/core/src/oracle.rs".to_string(),
            "crates/maxsat/src".to_string(),
            "crates/sampler/src".to_string(),
        ];
        let scopes = config.list_or(self.name(), "scopes", &scopes_default);
        let checks_default = ["exhausted".to_string(), "try_acquire".to_string()];
        let checks = config.list_or(self.name(), "check-markers", &checks_default);
        let solves_default = [
            "solve".to_string(),
            "solve_with_assumptions".to_string(),
            "solve_under_assumptions".to_string(),
        ];
        let solves = config.list_or(self.name(), "solve-markers", &solves_default);

        let mut analysis = Analysis {
            workspace,
            cfgs: CfgCache::default(),
            checks,
            solves,
            may_solve: BTreeSet::new(),
            always_checks: BTreeSet::new(),
            safe: BTreeSet::new(),
        };
        analysis.compute_summaries();

        let mut out = Vec::new();
        for file in &workspace.files {
            if !scopes.iter().any(|s| file.rel_path.starts_with(s.as_str())) {
                continue;
            }
            for f in &file.functions {
                if !f.is_pub || f.in_test || !matches_prefix(&f.name, prefixes) {
                    continue;
                }
                for event in analysis.unchecked_events(file, f) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        file: file.rel_path.clone(),
                        line: event.line,
                        symbol: Some(f.name.clone()),
                        message: event.message,
                    });
                }
            }
        }
        out
    }
}

/// Word-boundary prefix match (shared convention with `cancel-poll`).
fn matches_prefix(name: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        name.strip_prefix(p.as_str())
            .is_some_and(|rest| rest.is_empty() || rest.starts_with('_'))
    })
}

/// An unchecked solve event, ready to report.
struct UncheckedEvent {
    line: u32,
    message: String,
}

struct Analysis<'a> {
    workspace: &'a Workspace,
    cfgs: CfgCache,
    checks: &'a [String],
    solves: &'a [String],
    /// Names that may (transitively) invoke a solver.
    may_solve: BTreeSet<String>,
    /// Names whose every fn checks the budget on every entry-to-exit path.
    always_checks: BTreeSet<String>,
    /// Names whose every fn has all its solve events dominated by checks.
    safe: BTreeSet<String>,
}

impl<'a> Analysis<'a> {
    fn compute_summaries(&mut self) {
        // may_solve: least fixpoint over the name-union call graph.
        let ws = self.workspace;
        let mut fns_by_name: BTreeMap<&'a str, Vec<(&'a SourceFile, &'a FnItem)>> = BTreeMap::new();
        for file in &ws.files {
            for f in &file.functions {
                if !f.in_test {
                    fns_by_name
                        .entry(f.name.as_str())
                        .or_default()
                        .push((file, f));
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for (name, fns) in &fns_by_name {
                if self.may_solve.contains(*name) {
                    continue;
                }
                let hits = fns.iter().any(|(_, f)| {
                    f.calls
                        .iter()
                        .any(|c| self.solves.iter().any(|s| s == c) || self.may_solve.contains(c))
                });
                if hits {
                    self.may_solve.insert((*name).to_string());
                    changed = true;
                }
            }
        }

        // always_checks: least fixpoint; every fn of the name must check at
        // exit on all paths, given the current gen set.
        let mut changed = true;
        while changed {
            changed = false;
            for (name, fns) in &fns_by_name {
                if self.always_checks.contains(*name) {
                    continue;
                }
                let all =
                    !fns.is_empty() && fns.iter().all(|(file, f)| self.checks_at_exit(file, f));
                if all {
                    self.always_checks.insert((*name).to_string());
                    changed = true;
                }
            }
        }

        // safe: greatest fixpoint; start optimistic, strike out functions
        // with unchecked events until stable.
        self.safe = fns_by_name.keys().map(|n| n.to_string()).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for (name, fns) in &fns_by_name {
                if !self.safe.contains(*name) {
                    continue;
                }
                let bad = fns
                    .iter()
                    .any(|(file, f)| !self.unchecked_events(file, f).is_empty());
                if bad {
                    self.safe.remove(*name);
                    changed = true;
                }
            }
        }
    }

    /// `true` if a check-marker call (or an always-checks callee call)
    /// happens on every path from `f`'s entry to its exit.
    fn checks_at_exit(&mut self, file: &SourceFile, f: &FnItem) -> bool {
        if f.body.is_empty() {
            return false;
        }
        let body = &file.tokens()[f.body.clone()];
        let gens = self.gen_positions(body);
        if gens.is_empty() {
            return false; // cheap cut: no gen anywhere
        }
        let cfg = self.cfgs.cfg(file, f).clone();
        let mut transfer = |id: usize, input: &BitSet| {
            let mut out = input.clone();
            if cfg.nodes[id].tokens.clone().any(|i| gens.contains(&i)) {
                out.insert(0);
            }
            out
        };
        let sol = forward(&cfg, 1, Meet::Intersect, BitSet::empty(1), &mut transfer);
        sol.input[cfg.exit].contains(0)
    }

    /// Body-relative positions of gen calls: check markers and calls to
    /// always-checks names.
    fn gen_positions(&self, body: &[crate::lexer::Token]) -> BTreeSet<usize> {
        (0..body.len())
            .filter(|&i| {
                is_call_at(body, i)
                    && (self.checks.iter().any(|c| body[i].is_ident(c))
                        || self.always_checks.contains(&body[i].text))
            })
            .collect()
    }

    /// The solve events of `f` not dominated by a check, with report lines.
    fn unchecked_events(&mut self, file: &SourceFile, f: &FnItem) -> Vec<UncheckedEvent> {
        if f.body.is_empty() {
            return Vec::new();
        }
        let body = &file.tokens()[f.body.clone()];
        let gens = self.gen_positions(body);
        let events: Vec<(usize, String, bool)> = call_sites(file, f)
            .into_iter()
            .filter_map(|(i, name)| {
                if self.solves.iter().any(|s| s == name) {
                    Some((i, name.to_string(), true))
                } else if self.may_solve.contains(name)
                    && !self.safe.contains(name)
                    && !self.always_checks.contains(name)
                {
                    Some((i, name.to_string(), false))
                } else {
                    None
                }
            })
            .collect();
        if events.is_empty() {
            return Vec::new();
        }
        let cfg = self.cfgs.cfg(file, f).clone();
        let mut transfer = |id: usize, input: &BitSet| {
            let mut out = input.clone();
            if cfg.nodes[id].tokens.clone().any(|i| gens.contains(&i)) {
                out.insert(0);
            }
            out
        };
        let sol = forward(&cfg, 1, Meet::Intersect, BitSet::empty(1), &mut transfer);
        let mut out = Vec::new();
        for (node_id, node) in cfg.nodes.iter().enumerate() {
            let mut checked = sol.input[node_id].contains(0);
            for i in node.tokens.clone() {
                if gens.contains(&i) {
                    checked = true;
                }
                if let Some((_, name, direct)) = events.iter().find(|(e, _, _)| *e == i) {
                    if !checked {
                        let line = body_token_line(file, f, i);
                        let message = if *direct {
                            format!(
                                "solver invocation `{}` is reachable without a budget \
                                 admission check ({}) on some path",
                                name,
                                self.checks.join("/"),
                            )
                        } else {
                            format!(
                                "call to `{}` may reach a solver invocation, and no budget \
                                 admission check ({}) dominates it on some path",
                                name,
                                self.checks.join("/"),
                            )
                        };
                        out.push(UncheckedEvent { line, message });
                    }
                }
            }
        }
        out
    }
}
