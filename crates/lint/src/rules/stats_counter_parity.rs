//! `stats-counter-parity`: every field of the configured stats structs
//! (`OracleStats`, `SolverStats`) must (a) be reachable in a portfolio merge
//! function and (b) be named in a harness CSV scope. A counter that is
//! incremented but never merged vanishes when portfolio workers are
//! absorbed into the winning oracle's totals; one that is merged but never
//! exported is invisible to the benchmark CSVs the paper-reproduction
//! tables are built from. Both failure modes have already happened once —
//! this rule makes the third time a CI failure instead of a silent zero.
//!
//! Mechanics:
//!
//! * Struct fields are parsed token-level from `struct <Name> { … }`
//!   (attributes and `pub`/`pub(crate)` skipped; nested angle/paren/bracket
//!   depth tracked so generic field types don't desynchronize the scan).
//! * **Merge reachability**: the field's name appears as an identifier in
//!   the body of at least one configured merge function (`absorb`,
//!   `bill_solver_delta`), anywhere in the workspace.
//! * **CSV presence**: the field's name appears in a configured CSV scope
//!   (`crates/bench/src`) as an identifier or inside a string literal
//!   (covering both `stats.field` pushes and `"field"` header rows).
//!
//! Name-level matching biases toward passing: a same-named field in another
//! struct can mask a miss, but a diagnostic here is always a field that no
//! merge fn or CSV mentions under any spelling.

use super::{Rule, Workspace};
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

pub struct StatsCounterParity;

/// One parsed stats-struct field.
struct Field {
    strukt: String,
    name: String,
    file: String,
    line: u32,
}

impl Rule for StatsCounterParity {
    fn name(&self) -> &'static str {
        "stats-counter-parity"
    }

    fn description(&self) -> &'static str {
        "every stats struct field is merged by the portfolio and exported to a harness CSV"
    }

    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic> {
        let structs_default = ["OracleStats".to_string(), "SolverStats".to_string()];
        let structs = config.list_or(self.name(), "structs", &structs_default);
        let merge_default = ["absorb".to_string(), "bill_solver_delta".to_string()];
        let merge_fns = config.list_or(self.name(), "merge-fns", &merge_default);
        let csv_default = ["crates/bench/src".to_string()];
        let csv_scopes = config.list_or(self.name(), "csv-scopes", &csv_default);

        let fields = collect_fields(workspace, structs);
        let merged = merge_fn_idents(workspace, merge_fns);
        let exported = csv_scope_names(workspace, csv_scopes);

        let mut out = Vec::new();
        for field in &fields {
            let in_merge = merged.contains(&field.name);
            let in_csv = exported.iter().any(|name| name == &field.name)
                || exported_literals(workspace, csv_scopes, &field.name);
            if in_merge && in_csv {
                continue;
            }
            let mut missing = Vec::new();
            if !in_merge {
                missing.push(format!("any merge fn ({})", merge_fns.join("/")));
            }
            if !in_csv {
                missing.push(format!("any CSV scope ({})", csv_scopes.join(", ")));
            }
            out.push(Diagnostic {
                rule: self.name(),
                file: field.file.clone(),
                line: field.line,
                symbol: Some(format!("{}::{}", field.strukt, field.name)),
                message: format!(
                    "stats counter `{}::{}` is not referenced in {}; it will read \
                     as zero in portfolio totals or benchmark reports",
                    field.strukt,
                    field.name,
                    missing.join(" or ")
                ),
            });
        }
        out
    }
}

/// Parses the fields of every configured struct, wherever it is declared.
fn collect_fields(workspace: &Workspace, structs: &[String]) -> Vec<Field> {
    let mut out = Vec::new();
    for file in &workspace.files {
        let tokens = file.tokens();
        for i in 0..tokens.len() {
            if !tokens[i].is_ident("struct") {
                continue;
            }
            let Some(name_tok) = tokens.get(i + 1) else {
                continue;
            };
            if !structs.iter().any(|s| name_tok.is_ident(s)) {
                continue;
            }
            let Some(open) = (i + 2..tokens.len()).find(|&j| tokens[j].is_punct("{")) else {
                continue;
            };
            // Unit/tuple structs or a trait bound sneaking a `{` in: require
            // the brace to directly follow the name (no generics on stats
            // structs in this workspace).
            if open != i + 2 {
                continue;
            }
            let mut j = open + 1;
            let mut brace_depth = 1i32;
            while j < tokens.len() && brace_depth > 0 {
                let t = &tokens[j];
                if t.is_punct("{") {
                    brace_depth += 1;
                    j += 1;
                    continue;
                }
                if t.is_punct("}") {
                    brace_depth -= 1;
                    j += 1;
                    continue;
                }
                if brace_depth != 1 {
                    j += 1;
                    continue;
                }
                // At a field start: skip attributes and visibility.
                if t.is_punct("#") {
                    j = skip_attr(tokens.len(), file, j);
                    continue;
                }
                if t.is_ident("pub") {
                    j += 1;
                    if file.tokens().get(j).is_some_and(|t| t.is_punct("(")) {
                        j = skip_balanced(file, j, "(", ")");
                    }
                    continue;
                }
                if t.kind == TokenKind::Ident && tokens.get(j + 1).is_some_and(|t| t.is_punct(":"))
                {
                    out.push(Field {
                        strukt: name_tok.text.clone(),
                        name: t.text.clone(),
                        file: file.rel_path.clone(),
                        line: t.line,
                    });
                    // Skip the type to the separating `,` (or the struct's
                    // closing brace, handled at loop top).
                    j += 2;
                    let mut depth = 0i32;
                    while j < tokens.len() {
                        let t = &tokens[j];
                        if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
                            depth += 1;
                        } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
                            depth -= 1;
                        } else if t.is_punct(",") && depth <= 0 {
                            j += 1;
                            break;
                        } else if t.is_punct("}") && depth <= 0 {
                            break;
                        }
                        j += 1;
                    }
                    continue;
                }
                j += 1;
            }
        }
    }
    out
}

/// Skips an attribute `#[…]` starting at the `#`.
fn skip_attr(len: usize, file: &SourceFile, at: usize) -> usize {
    let tokens = file.tokens();
    let mut j = at + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct("[")) {
        return skip_balanced(file, j, "[", "]");
    }
    j = j.min(len);
    j
}

/// Skips a balanced `open…close` group starting at `open`; returns the index
/// one past the closer.
fn skip_balanced(file: &SourceFile, at: usize, open: &str, close: &str) -> usize {
    let tokens = file.tokens();
    let mut depth = 0i32;
    let mut j = at;
    while j < tokens.len() {
        if tokens[j].is_punct(open) {
            depth += 1;
        } else if tokens[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Every identifier appearing in the body of any configured merge function.
fn merge_fn_idents(workspace: &Workspace, merge_fns: &[String]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in &workspace.files {
        for f in &file.functions {
            if f.in_test || !merge_fns.iter().any(|m| m == &f.name) {
                continue;
            }
            for t in &file.tokens()[f.body.clone()] {
                if t.kind == TokenKind::Ident {
                    out.insert(t.text.clone());
                }
            }
        }
    }
    out
}

/// Every identifier appearing anywhere in the CSV scopes.
fn csv_scope_names(workspace: &Workspace, scopes: &[String]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in &workspace.files {
        if !scopes.iter().any(|s| file.rel_path.starts_with(s.as_str())) {
            continue;
        }
        for t in file.tokens() {
            if t.kind == TokenKind::Ident {
                out.insert(t.text.clone());
            }
        }
    }
    out
}

/// `true` if `name` occurs inside any string literal in the CSV scopes
/// (header rows name counters as `"field"` literals).
fn exported_literals(workspace: &Workspace, scopes: &[String], name: &str) -> bool {
    for file in &workspace.files {
        if !scopes.iter().any(|s| file.rel_path.starts_with(s.as_str())) {
            continue;
        }
        for t in file.tokens() {
            if t.kind == TokenKind::Literal && t.text.contains(name) {
                return true;
            }
        }
    }
    false
}
