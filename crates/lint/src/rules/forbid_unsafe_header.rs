//! `forbid-unsafe-header`: every crate root (`lib.rs` / `main.rs`) must carry
//! `#![forbid(unsafe_code)]` so unsafety can only enter the workspace through
//! an explicit, reviewed lint-policy change.

use super::{Rule, Workspace};
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

pub struct ForbidUnsafeHeader;

impl Rule for ForbidUnsafeHeader {
    fn name(&self) -> &'static str {
        "forbid-unsafe-header"
    }

    fn description(&self) -> &'static str {
        "crate roots must declare #![forbid(unsafe_code)]"
    }

    fn check(&self, workspace: &Workspace, config: &LintConfig) -> Vec<Diagnostic> {
        let roots_default = ["lib.rs".to_string(), "main.rs".to_string()];
        let roots = config.list_or(self.name(), "roots", &roots_default);
        let mut out = Vec::new();
        for file in &workspace.files {
            let is_root = roots
                .iter()
                .any(|r| file.rel_path.ends_with(&format!("/{r}")));
            if is_root && !has_forbid_unsafe(file) {
                out.push(Diagnostic {
                    rule: self.name(),
                    file: file.rel_path.clone(),
                    line: 1,
                    symbol: None,
                    message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
                });
            }
        }
        out
    }
}

/// Scans for the token sequence `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let tokens = file.tokens();
    tokens.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    })
}
