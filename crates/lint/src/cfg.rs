//! Per-function control-flow graphs built from the token stream.
//!
//! The builder is a recursive-descent walk over a function body's tokens. It
//! recognises the control constructs that matter for path sensitivity —
//! `if`/`else if`/`else`, `match` arms, `loop`/`while`/`for` with labelled
//! `break`/`continue`, early `return`, and the `?` operator — and leaves
//! everything else (plain blocks, struct literals, closures) as straight-line
//! code. Each node covers one contiguous token range of the body; edges are
//! the possible successions of control.
//!
//! Deliberate approximations, chosen so that imprecision biases the analyses
//! toward *passing* (the same convention as the token-level rules):
//!
//! * closure bodies are treated as executing inline at their definition
//!   point (they usually do, and a closure that never runs only adds paths);
//! * `match` is assumed exhaustive — the arms are the only successors;
//! * nested `fn` items are skipped entirely (they get their own CFG via
//!   their own [`FnItem`](crate::source::FnItem));
//! * a `let` in an `if let`/`while let` condition is attributed to the
//!   condition node, which also flows to the else branch.
//!
//! The graph always has a dedicated entry node (id 0) and exit node (id 1).
//! `return` and `?` edge to the exit; falling off the end of the body edges
//! to the exit. After construction, nodes unreachable from the entry (dead
//! code after unconditional jumps, the continuation of a `loop` with no
//! `break`) are pruned — except the exit node, which is always kept so every
//! function, including `fn f() { loop {} }`, has a well-defined exit id.

use crate::lexer::{Token, TokenKind};
use std::ops::Range;

/// Node identifier: an index into [`Cfg::nodes`].
pub type NodeId = usize;

/// One control-flow node: a contiguous (possibly empty) token range of the
/// function body, executed straight-line.
#[derive(Debug, Clone, Default)]
pub struct Node {
    /// Body-relative token range covered by this node. Join nodes and the
    /// entry/exit markers are empty.
    pub tokens: Range<usize>,
    /// Successor node ids, deduplicated, in creation order.
    pub succs: Vec<NodeId>,
    /// Predecessor node ids (computed when the graph is sealed).
    pub preds: Vec<NodeId>,
    /// `true` for loop-header nodes (`loop`/`while`/`for`); every back edge
    /// targets a loop header.
    pub loop_head: bool,
}

/// A per-function control-flow graph over body-relative token indices.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; ids are indices.
    pub nodes: Vec<Node>,
    /// The entry node (always id 0, always empty).
    pub entry: NodeId,
    /// The exit node (always id 1, always empty). All `return`s, `?`
    /// propagations, and the fall-off-the-end path lead here.
    pub exit: NodeId,
    /// Loop back edges `(from, to)`; each `to` is a loop header. A subset of
    /// the edges in [`Node::succs`].
    pub back_edges: Vec<(NodeId, NodeId)>,
}

impl Cfg {
    /// Builds the CFG of a function body (the token slice *between* the
    /// outer braces, as recorded in [`FnItem::body`](crate::source::FnItem)).
    pub fn build(body: &[Token]) -> Cfg {
        let mut b = Builder {
            tokens: body,
            nodes: vec![Node::default(), Node::default()],
            back_edges: Vec::new(),
            loops: Vec::new(),
        };
        let first = b.fresh();
        b.edge(ENTRY, first);
        let last = b.walk(0..body.len(), first);
        b.edge(last, EXIT);
        b.seal()
    }

    /// Node ids in reverse postorder from the entry (a good worklist order
    /// for forward dataflow).
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut state = vec![0u8; self.nodes.len()]; // 0 unvisited, 1 open, 2 done
        let mut post = Vec::with_capacity(self.nodes.len());
        // Iterative DFS with an explicit stack of (node, next-succ-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(self.entry, 0)];
        state[self.entry] = 1;
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            if *i < self.nodes[n].succs.len() {
                let s = self.nodes[n].succs[*i];
                *i += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[n] = 2;
                post.push(n);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

const ENTRY: NodeId = 0;
const EXIT: NodeId = 1;

/// An enclosing loop during construction: where `continue` and `break` go.
struct LoopCtx {
    label: Option<String>,
    head: NodeId,
    after: NodeId,
}

struct Builder<'a> {
    tokens: &'a [Token],
    nodes: Vec<Node>,
    back_edges: Vec<(NodeId, NodeId)>,
    loops: Vec<LoopCtx>,
}

impl<'a> Builder<'a> {
    fn fresh(&mut self) -> NodeId {
        self.nodes.push(Node::default());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
        }
    }

    fn back_edge(&mut self, from: NodeId, to: NodeId) {
        self.edge(from, to);
        if !self.back_edges.contains(&(from, to)) {
            self.back_edges.push((from, to));
        }
    }

    /// Appends token `i` to `cur`, returning the node that now ends at
    /// `i + 1` (a fresh successor if `cur`'s range is not adjacent — which
    /// happens when a join node resumes after a gap).
    fn append(&mut self, cur: NodeId, i: usize) -> NodeId {
        let node = &mut self.nodes[cur];
        if node.tokens.is_empty() && node.tokens.start == 0 {
            node.tokens = i..i + 1;
            cur
        } else if node.tokens.end == i {
            node.tokens.end = i + 1;
            cur
        } else {
            let next = self.fresh();
            self.edge(cur, next);
            self.nodes[next].tokens = i..i + 1;
            next
        }
    }

    /// Walks `range` starting in node `cur`; returns the node where control
    /// continues after the range.
    fn walk(&mut self, range: Range<usize>, mut cur: NodeId) -> NodeId {
        let mut i = range.start;
        while i < range.end {
            let t = &self.tokens[i];
            if t.is_ident("if") {
                let (next_i, join) = self.parse_if(i, range.end, cur);
                i = next_i;
                cur = join;
            } else if t.is_ident("match") {
                let (next_i, join) = self.parse_match(i, range.end, cur);
                i = next_i;
                cur = join;
            } else if t.is_ident("loop") || t.is_ident("while") || t.is_ident("for") {
                let (next_i, after) = self.parse_loop(i, range.end, cur);
                i = next_i;
                cur = after;
            } else if t.is_ident("break") || t.is_ident("continue") {
                let is_break = t.is_ident("break");
                cur = self.append(cur, i);
                i += 1;
                // Optional loop label.
                let label = self.tokens.get(i).filter(|t| t.kind == TokenKind::Lifetime);
                let label_text = label.map(|t| t.text.clone());
                if label.is_some() {
                    cur = self.append(cur, i);
                    i += 1;
                }
                // `break expr`: the value tokens still execute.
                while i < range.end
                    && !(self.tokens[i].is_punct(";")
                        || self.tokens[i].is_punct(",")
                        || self.tokens[i].is_punct("}"))
                {
                    cur = self.append(cur, i);
                    i += 1;
                }
                let ctx = self
                    .loops
                    .iter()
                    .rev()
                    .find(|c| label_text.is_none() || c.label == label_text);
                if let Some(ctx) = ctx {
                    let (head, after) = (ctx.head, ctx.after);
                    if is_break {
                        self.edge(cur, after);
                    } else {
                        self.back_edge(cur, head);
                    }
                } else {
                    // `break` outside any loop (malformed source): treat as
                    // an early exit so the walk stays total.
                    self.edge(cur, EXIT);
                }
                cur = self.fresh(); // dead continuation, pruned later
            } else if t.is_ident("return") {
                cur = self.append(cur, i);
                i += 1;
                let mut depth = 0i32;
                while i < range.end {
                    let t = &self.tokens[i];
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if t.is_punct(";") && depth == 0 {
                        break;
                    }
                    cur = self.append(cur, i);
                    i += 1;
                }
                self.edge(cur, EXIT);
                cur = self.fresh(); // dead continuation
            } else if t.is_punct("?") {
                // `expr?`: either propagates the error to the caller (exit)
                // or continues. Close the node at the `?` so facts computed
                // before it are what reaches both paths.
                cur = self.append(cur, i);
                i += 1;
                self.edge(cur, EXIT);
                let next = self.fresh();
                self.edge(cur, next);
                cur = next;
            } else if t.is_ident("fn")
                && self
                    .tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Ident)
            {
                // Nested fn item: skip it; it gets its own CFG.
                i = self.skip_fn_item(i, range.end);
            } else {
                cur = self.append(cur, i);
                i += 1;
            }
        }
        cur
    }

    /// Parses `if cond { … } [else if …]* [else { … }]` starting at the `if`
    /// token; returns (index after the construct, join node).
    fn parse_if(&mut self, i: usize, limit: usize, mut cur: NodeId) -> (usize, NodeId) {
        // Condition tokens (including any `let` pattern) stay in `cur`.
        cur = self.append(cur, i);
        let open = self.find_body_open(i + 1, limit);
        let Some(open) = open else {
            return (limit, cur); // malformed; swallow
        };
        let mut j = i + 1;
        while j < open {
            cur = self.walk_cond_token(j, cur);
            j += 1;
        }
        let close = self.matching_brace(open, limit);
        let join = self.fresh();
        let then_entry = self.fresh();
        self.edge(cur, then_entry);
        let then_exit = self.walk(open + 1..close, then_entry);
        self.edge(then_exit, join);
        let mut next_i = close + 1;
        if self.tokens.get(next_i).is_some_and(|t| t.is_ident("else")) {
            match self.tokens.get(next_i + 1) {
                Some(t) if t.is_punct("{") => {
                    let eopen = next_i + 1;
                    let eclose = self.matching_brace(eopen, limit);
                    let else_entry = self.fresh();
                    self.edge(cur, else_entry);
                    let else_exit = self.walk(eopen + 1..eclose, else_entry);
                    self.edge(else_exit, join);
                    next_i = eclose + 1;
                }
                Some(t) if t.is_ident("if") => {
                    let else_entry = self.fresh();
                    self.edge(cur, else_entry);
                    let (after, inner_join) = self.parse_if(next_i + 1, limit, else_entry);
                    self.edge(inner_join, join);
                    next_i = after;
                }
                _ => {
                    // Malformed `else`: fall through.
                    self.edge(cur, join);
                    next_i += 1;
                }
            }
        } else {
            // No else: the false path skips straight to the join.
            self.edge(cur, join);
        }
        (next_i, join)
    }

    /// Walks one condition token, handling `?` inside conditions; other
    /// control flow inside a condition (closures, nested blocks) is treated
    /// as straight-line.
    fn walk_cond_token(&mut self, i: usize, cur: NodeId) -> NodeId {
        if self.tokens[i].is_punct("?") {
            let cur = self.append(cur, i);
            self.edge(cur, EXIT);
            let next = self.fresh();
            self.edge(cur, next);
            next
        } else {
            self.append(cur, i)
        }
    }

    /// Parses `match scrutinee { arms }`; returns (index after, join node).
    fn parse_match(&mut self, i: usize, limit: usize, mut cur: NodeId) -> (usize, NodeId) {
        cur = self.append(cur, i);
        let Some(open) = self.find_body_open(i + 1, limit) else {
            return (limit, cur);
        };
        let mut j = i + 1;
        while j < open {
            cur = self.walk_cond_token(j, cur);
            j += 1;
        }
        let close = self.matching_brace(open, limit);
        let join = self.fresh();
        let mut arm_start = open + 1;
        let mut any_arm = false;
        while arm_start < close {
            // Find this arm's `=>` (lexed as `=` `>`) at depth 0.
            let Some(arrow) = self.find_arrow(arm_start, close) else {
                break;
            };
            any_arm = true;
            // Pattern + guard tokens: their own node so guard-side effects
            // stay ordered, branching from the scrutinee.
            let arm_node = self.fresh();
            self.edge(cur, arm_node);
            let mut pat_node = arm_node;
            let mut k = arm_start;
            while k < arrow {
                pat_node = self.walk_cond_token(k, pat_node);
                k += 1;
            }
            // Arm body: a brace block, or tokens up to the top-level comma.
            let body_first = arrow + 2;
            let (body_range, next_arm) =
                if self.tokens.get(body_first).is_some_and(|t| t.is_punct("{")) {
                    let bclose = self.matching_brace(body_first, close);
                    let mut na = bclose + 1;
                    if self.tokens.get(na).is_some_and(|t| t.is_punct(",")) {
                        na += 1;
                    }
                    (body_first + 1..bclose, na)
                } else {
                    let end = self.find_arm_end(body_first, close);
                    let mut na = end;
                    if self.tokens.get(na).is_some_and(|t| t.is_punct(",")) {
                        na += 1;
                    }
                    (body_first..end, na)
                };
            let arm_exit = self.walk(body_range, pat_node);
            self.edge(arm_exit, join);
            arm_start = next_arm;
        }
        if !any_arm {
            // `match x {}`: diverges in real Rust; keep the walk total.
            self.edge(cur, join);
        }
        (close + 1, join)
    }

    /// Parses `loop { … }`, `while cond { … }`, or `for pat in iter { … }`
    /// starting at the keyword; returns (index after, after-loop node).
    fn parse_loop(&mut self, i: usize, limit: usize, cur: NodeId) -> (usize, NodeId) {
        // A label is `'name :` immediately before the keyword.
        let label = if i >= 2
            && self.tokens[i - 1].is_punct(":")
            && self.tokens[i - 2].kind == TokenKind::Lifetime
        {
            Some(self.tokens[i - 2].text.clone())
        } else {
            None
        };
        let head = self.fresh();
        self.nodes[head].loop_head = true;
        self.edge(cur, head);
        // Condition / iterator tokens belong to the header node (they are
        // re-evaluated on every iteration).
        let mut h = self.append(head, i);
        let Some(open) = self.find_body_open(i + 1, limit) else {
            return (limit, h);
        };
        let mut j = i + 1;
        while j < open {
            h = self.walk_cond_token(j, h);
            j += 1;
        }
        let close = self.matching_brace(open, limit);
        let after = self.fresh();
        if !self.tokens[i].is_ident("loop") {
            // `while`/`for` exit from the header when the condition fails /
            // the iterator is exhausted.
            self.edge(h, after);
        }
        self.loops.push(LoopCtx { label, head, after });
        let body_entry = self.fresh();
        self.edge(h, body_entry);
        let body_exit = self.walk(open + 1..close, body_entry);
        self.back_edge(body_exit, head);
        self.loops.pop();
        (close + 1, after)
    }

    /// Finds the `{` opening the body of an `if`/`match`/`while`/`for`
    /// construct: the first `{` at paren/bracket depth 0 (struct literals in
    /// conditions require parentheses in Rust, so this is exact).
    fn find_body_open(&self, from: usize, limit: usize) -> Option<usize> {
        let mut depth = 0i32;
        for (j, t) in self.tokens.iter().enumerate().take(limit).skip(from) {
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth <= 0 {
                return Some(j);
            } else if t.is_punct(";") && depth <= 0 {
                return None; // statement ended without a body (malformed)
            }
        }
        None
    }

    /// Index of the `}` matching the `{` at `open`, clamped to `limit`.
    fn matching_brace(&self, open: usize, limit: usize) -> usize {
        let mut depth = 0i32;
        for (j, t) in self.tokens.iter().enumerate().take(limit).skip(open) {
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        limit.saturating_sub(1).max(open)
    }

    /// Finds the `=` of the `=>` introducing a match arm body, at brace /
    /// paren / bracket depth 0 relative to `from`.
    fn find_arrow(&self, from: usize, limit: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = from;
        while j < limit {
            let t = &self.tokens[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth == 0
                && t.is_punct("=")
                && self.tokens.get(j + 1).is_some_and(|t| t.is_punct(">"))
            {
                return Some(j);
            }
            j += 1;
        }
        None
    }

    /// Finds the end of an expression arm body: the `,` at depth 0, or the
    /// match's closing brace.
    fn find_arm_end(&self, from: usize, limit: usize) -> usize {
        let mut depth = 0i32;
        let mut j = from;
        while j < limit {
            let t = &self.tokens[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            } else if t.is_punct(",") && depth == 0 {
                return j;
            }
            j += 1;
        }
        limit
    }

    /// Skips a nested `fn` item starting at its `fn` keyword; returns the
    /// index after its body (or after `;` for a bodyless declaration).
    fn skip_fn_item(&self, i: usize, limit: usize) -> usize {
        let mut j = i + 1;
        let mut angle = 0i32;
        while j < limit {
            let t = &self.tokens[j];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if t.is_punct(";") && angle <= 0 {
                return j + 1;
            } else if t.is_punct("{") && angle <= 0 {
                return self.matching_brace(j, limit) + 1;
            }
            j += 1;
        }
        limit
    }

    /// Computes predecessors, prunes nodes unreachable from the entry (the
    /// exit is always kept), and remaps ids.
    fn seal(mut self) -> Cfg {
        let n = self.nodes.len();
        let mut reach = vec![false; n];
        let mut queue = vec![ENTRY];
        reach[ENTRY] = true;
        while let Some(v) = queue.pop() {
            for &s in &self.nodes[v].succs {
                if !reach[s] {
                    reach[s] = true;
                    queue.push(s);
                }
            }
        }
        reach[EXIT] = true; // the exit survives even when unreachable
        let mut remap = vec![usize::MAX; n];
        let mut kept = 0usize;
        for (id, r) in reach.iter().enumerate() {
            if *r {
                remap[id] = kept;
                kept += 1;
            }
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(kept);
        for (id, node) in self.nodes.drain(..).enumerate() {
            if !reach[id] {
                continue;
            }
            let succs: Vec<NodeId> = node
                .succs
                .iter()
                .filter(|&&s| reach[s])
                .map(|&s| remap[s])
                .collect();
            nodes.push(Node {
                tokens: node.tokens,
                succs,
                preds: Vec::new(),
                loop_head: node.loop_head,
            });
        }
        for id in 0..nodes.len() {
            let succs = nodes[id].succs.clone();
            for s in succs {
                if !nodes[s].preds.contains(&id) {
                    nodes[s].preds.push(id);
                }
            }
        }
        let back_edges = self
            .back_edges
            .iter()
            .filter(|(f, t)| reach[*f] && reach[*t])
            .map(|&(f, t)| (remap[f], remap[t]))
            .collect();
        Cfg {
            nodes,
            entry: remap[ENTRY],
            exit: remap[EXIT],
            back_edges,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg_of(body_src: &str) -> (Cfg, Vec<Token>) {
        let tokens = lex(body_src).tokens;
        (Cfg::build(&tokens), tokens)
    }

    /// The token texts covered by each non-empty node, for shape assertions.
    fn node_texts(cfg: &Cfg, tokens: &[Token]) -> Vec<String> {
        cfg.nodes
            .iter()
            .filter(|n| !n.tokens.is_empty())
            .map(|n| {
                tokens[n.tokens.clone()]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    }

    #[test]
    fn straight_line_is_one_node() {
        let (cfg, tokens) = cfg_of("let a = 1; f(a); g(a);");
        let texts = node_texts(&cfg, &tokens);
        assert_eq!(texts.len(), 1, "{texts:?}");
        assert!(texts[0].starts_with("let a"));
        assert!(cfg.back_edges.is_empty());
    }

    #[test]
    fn if_else_is_a_diamond() {
        let (cfg, _) = cfg_of("pre(); if c { a(); } else { b(); } post();");
        // entry, exit, cond, then, else, join(+post) — all reachable.
        let exit_preds = &cfg.nodes[cfg.exit].preds;
        assert_eq!(exit_preds.len(), 1);
        // The join node has two predecessors (then, else).
        let join = exit_preds[0];
        assert_eq!(cfg.nodes[join].preds.len(), 2, "{cfg:?}");
    }

    #[test]
    fn if_without_else_has_a_skip_edge() {
        let (cfg, tokens) = cfg_of("if c { a(); } post();");
        // The condition node must edge both into the then-branch and past it.
        let cond = cfg
            .nodes
            .iter()
            .position(|n| {
                !n.tokens.is_empty() && tokens[n.tokens.clone()].iter().any(|t| t.is_ident("c"))
            })
            .unwrap();
        assert_eq!(cfg.nodes[cond].succs.len(), 2, "{cfg:?}");
    }

    #[test]
    fn else_if_chains_nest() {
        let (cfg, _) = cfg_of("if a { x(); } else if b { y(); } else { z(); } post();");
        // All three branch bodies reach the exit.
        assert!(cfg.nodes.len() >= 7);
        assert!(cfg.back_edges.is_empty());
    }

    #[test]
    fn loop_with_break_has_back_edge_and_after() {
        let (cfg, tokens) = cfg_of("loop { step(); if done { break; } } post();");
        assert_eq!(cfg.back_edges.len(), 1);
        let (_, head) = cfg.back_edges[0];
        assert!(cfg.nodes[head].loop_head);
        // `post` is reachable (via the break).
        let post = cfg.nodes.iter().position(|n| {
            !n.tokens.is_empty() && tokens[n.tokens.clone()].iter().any(|t| t.is_ident("post"))
        });
        assert!(post.is_some(), "{cfg:?}");
    }

    #[test]
    fn infinite_loop_prunes_continuation_but_keeps_exit() {
        let (cfg, tokens) = cfg_of("loop { step(); } post();");
        // `post` is dead code and pruned.
        let post = cfg.nodes.iter().position(|n| {
            !n.tokens.is_empty() && tokens[n.tokens.clone()].iter().any(|t| t.is_ident("post"))
        });
        assert!(post.is_none(), "{cfg:?}");
        assert!(cfg.exit < cfg.nodes.len());
        assert_eq!(cfg.back_edges.len(), 1);
    }

    #[test]
    fn while_loop_exits_from_header() {
        let (cfg, tokens) = cfg_of("while c { body(); } post();");
        let head = cfg.nodes.iter().position(|n| n.loop_head).unwrap();
        assert_eq!(cfg.nodes[head].succs.len(), 2, "{cfg:?}");
        let post = cfg.nodes.iter().position(|n| {
            !n.tokens.is_empty() && tokens[n.tokens.clone()].iter().any(|t| t.is_ident("post"))
        });
        assert!(post.is_some());
        assert_eq!(cfg.back_edges.len(), 1);
    }

    #[test]
    fn for_loop_with_continue() {
        let (cfg, _) = cfg_of("for x in xs { if skip(x) { continue; } work(x); } post();");
        // Two back edges: the continue and the body fall-through.
        assert_eq!(cfg.back_edges.len(), 2, "{cfg:?}");
        for &(_, to) in &cfg.back_edges {
            assert!(cfg.nodes[to].loop_head);
        }
    }

    #[test]
    fn labelled_break_targets_the_outer_loop() {
        let (cfg, tokens) = cfg_of("'outer: loop { loop { break 'outer; } } post();");
        let post = cfg.nodes.iter().position(|n| {
            !n.tokens.is_empty() && tokens[n.tokens.clone()].iter().any(|t| t.is_ident("post"))
        });
        assert!(post.is_some(), "{cfg:?}");
    }

    #[test]
    fn return_edges_to_exit_and_prunes_dead_code() {
        let (cfg, tokens) = cfg_of("if c { return early(); } late();");
        let late = cfg.nodes.iter().position(|n| {
            !n.tokens.is_empty() && tokens[n.tokens.clone()].iter().any(|t| t.is_ident("late"))
        });
        assert!(late.is_some(), "late() is reachable when c is false");
        // The return node edges to exit.
        let ret = cfg
            .nodes
            .iter()
            .position(|n| {
                !n.tokens.is_empty()
                    && tokens[n.tokens.clone()]
                        .iter()
                        .any(|t| t.is_ident("return"))
            })
            .unwrap();
        assert!(cfg.nodes[ret].succs.contains(&cfg.exit), "{cfg:?}");
    }

    #[test]
    fn question_mark_splits_the_node() {
        let (cfg, tokens) = cfg_of("let x = f()?; g(x);");
        let q = cfg
            .nodes
            .iter()
            .position(|n| {
                !n.tokens.is_empty() && tokens[n.tokens.clone()].iter().any(|t| t.is_punct("?"))
            })
            .unwrap();
        assert!(cfg.nodes[q].succs.contains(&cfg.exit));
        assert_eq!(cfg.nodes[q].succs.len(), 2);
    }

    #[test]
    fn match_arms_branch_and_join() {
        let (cfg, tokens) =
            cfg_of("match v { A => a(), B(x) if g(x) => { b(x); } _ => {} } post();");
        let post = cfg
            .nodes
            .iter()
            .position(|n| {
                !n.tokens.is_empty() && tokens[n.tokens.clone()].iter().any(|t| t.is_ident("post"))
            })
            .unwrap();
        // The node before post (the join) has three arm predecessors.
        let join_preds = cfg.nodes[post].preds.len().max(
            cfg.nodes[post]
                .preds
                .first()
                .map(|&p| cfg.nodes[p].preds.len())
                .unwrap_or(0),
        );
        assert!(join_preds >= 3, "{cfg:?}");
        assert!(cfg.back_edges.is_empty());
    }

    #[test]
    fn nested_fn_items_are_skipped() {
        let (cfg, tokens) = cfg_of("fn helper() { loop {} } outer();");
        assert!(cfg.back_edges.is_empty(), "{cfg:?}");
        let outer = cfg.nodes.iter().position(|n| {
            !n.tokens.is_empty() && tokens[n.tokens.clone()].iter().any(|t| t.is_ident("outer"))
        });
        assert!(outer.is_some());
    }

    #[test]
    fn every_node_reachable_and_edges_consistent() {
        let (cfg, _) = cfg_of(
            "if a { while b { if c { break; } step()?; } } else { match v { X => r(), _ => {} } } tail();",
        );
        crate::cfg::tests::assert_well_formed(&cfg);
    }

    /// Shared well-formedness assertions (also used by the proptest suite).
    pub(crate) fn assert_well_formed(cfg: &Cfg) {
        // Entry/exit ids are valid and distinct.
        assert!(cfg.entry < cfg.nodes.len());
        assert!(cfg.exit < cfg.nodes.len());
        assert_ne!(cfg.entry, cfg.exit);
        // Every node except possibly the exit is reachable from the entry.
        let mut reach = vec![false; cfg.nodes.len()];
        let mut queue = vec![cfg.entry];
        reach[cfg.entry] = true;
        while let Some(v) = queue.pop() {
            for &s in &cfg.nodes[v].succs {
                assert!(s < cfg.nodes.len(), "edge to out-of-range node");
                if !reach[s] {
                    reach[s] = true;
                    queue.push(s);
                }
            }
        }
        for (id, r) in reach.iter().enumerate() {
            assert!(*r || id == cfg.exit, "node {id} unreachable from entry");
        }
        // succ/pred lists mirror each other exactly.
        for (id, node) in cfg.nodes.iter().enumerate() {
            for &s in &node.succs {
                assert!(
                    cfg.nodes[s].preds.contains(&id),
                    "edge {id}->{s} missing from preds"
                );
            }
            for &p in &node.preds {
                assert!(
                    cfg.nodes[p].succs.contains(&id),
                    "pred {p} of {id} missing the succ edge"
                );
            }
        }
        // Back edges are real edges targeting loop headers.
        for &(f, t) in &cfg.back_edges {
            assert!(
                cfg.nodes[f].succs.contains(&t),
                "back edge {f}->{t} not an edge"
            );
            assert!(
                cfg.nodes[t].loop_head,
                "back edge target {t} not a loop head"
            );
        }
        // The exit has no successors.
        assert!(cfg.nodes[cfg.exit].succs.is_empty());
    }
}
