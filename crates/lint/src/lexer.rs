//! A hand-rolled token-level lexer for Rust source files.
//!
//! The linter deliberately avoids `syn` (crates.io is unreachable from the
//! build environment) and instead scans source at the token level: enough to
//! see identifiers, punctuation, and brace structure, while correctly
//! skipping the places naive text search goes wrong — string literals, raw
//! strings, char literals vs. lifetimes, and (nested) block comments.
//!
//! Comments are not discarded: rules like `atomic-ordering` and
//! `no-unwrap-in-lib` look for justification comments (`// ordering:`,
//! `// invariant:`) adjacent to the flagged line, so the lexer returns them
//! as a separate side channel keyed by line number.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `Ordering`, `unwrap`, …).
    Ident,
    /// A string, char, byte, or numeric literal (content not interpreted).
    Literal,
    /// A lifetime (`'a`); kept distinct so char literals are not confused.
    Lifetime,
    /// Punctuation. Multi-character operators are split into single
    /// characters except `::`, which rules match on.
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (for [`TokenKind::Literal`], the raw source slice).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// `true` if the token is the identifier `ident`.
    pub fn is_ident(&self, ident: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == ident
    }

    /// `true` if the token is the punctuation `punct`.
    pub fn is_punct(&self, punct: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == punct
    }
}

/// A comment with its source position (one entry per `//` line comment, one
/// per `/* … */` block regardless of how many lines it spans).
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character (equal to `line` for
    /// line comments).
    pub end_line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// `true` if any comment whose text contains `marker` touches one of the
    /// lines in `lines` (inclusive range).
    pub fn comment_with_marker_on(&self, marker: &str, first: u32, last: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line >= first && c.line <= last && c.text.contains(marker))
    }
}

/// Lexes `src` into tokens and comments. The lexer is total: malformed
/// source never panics, it just degrades into best-effort tokens.
pub fn lex(src: &str) -> LexedFile {
    let bytes = src.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    end_line: line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: src[start..end].to_string(),
                    line: start_line,
                    end_line: line,
                });
            }
            b'"' => {
                let (end, newlines) = scan_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let (end, newlines) = scan_raw_or_byte_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Disambiguate char literal from lifetime: `'x'` is a char,
                // `'x` (no closing quote after one ident) is a lifetime.
                if is_lifetime(bytes, i) {
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let end = scan_char_literal(bytes, i);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: src[i..end].to_string(),
                        line,
                    });
                    i = end;
                }
            }
            b if b.is_ascii_digit() => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let c = bytes[j];
                    // Stop a float scan at `..` so ranges stay punctuation.
                    if c == b'.' && bytes.get(j + 1) == Some(&b'.') {
                        break;
                    }
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: "::".to_string(),
                    line,
                });
                i += 2;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scans a `"…"` string starting at the opening quote; returns the index one
/// past the closing quote and the number of newlines inside.
fn scan_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (bytes.len(), newlines)
}

/// `true` if the source at `i` starts a raw string (`r"`, `r#"`) or byte
/// string (`b"`, `br"`, `br#"`) rather than a plain identifier.
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    // `b"…"`, `r"…"`, `br##"…"`: the prefix must end in a quote. A raw
    // identifier `r#foo` has an ident char here instead and falls through to
    // identifier lexing.
    j > i && bytes.get(j) == Some(&b'"')
}

/// Scans a raw/byte string starting at its prefix; returns the index one past
/// the terminator and the number of newlines inside.
fn scan_raw_or_byte_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !raw => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => {
                let mut j = i + 1;
                let mut seen = 0usize;
                while seen < hashes && bytes.get(j) == Some(&b'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return (j, newlines);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (bytes.len(), newlines)
}

/// `true` if the `'` at `i` begins a lifetime rather than a char literal.
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    let Some(&next) = bytes.get(i + 1) else {
        return false;
    };
    if !(next.is_ascii_alphabetic() || next == b'_') {
        return false; // `'\n'`, `'0'` etc. are char literals
    }
    // `'a'` is a char literal; `'a` followed by anything else is a lifetime.
    // Multi-character contents (`'ab'` is not valid Rust anyway) are treated
    // as lifetimes, which is the safe direction for a scanner.
    bytes.get(i + 2) != Some(&b'\'')
}

/// Scans a char literal starting at the opening quote; returns the index one
/// past the closing quote.
fn scan_char_literal(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => return i, // malformed; stop at the line end
            _ => i += 1,
        }
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts_with_lines() {
        let lexed = lex("fn main() {\n    let x = 1;\n}\n");
        let idents: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(idents, vec![("fn", 1), ("main", 1), ("let", 2), ("x", 2)]);
        assert!(!lexed.tokens.iter().any(|t| t.is_punct("::")));
    }

    #[test]
    fn double_colon_is_one_token() {
        let lexed = lex("Ordering::SeqCst");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Ordering", "::", "SeqCst"]);
    }

    #[test]
    fn strings_and_chars_hide_their_contents() {
        let lexed = lex("let s = \"fn unwrap() {\"; let c = '{'; let l: &'a str;");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        // The brace inside the char literal is not punctuation.
        let braces = lexed.tokens.iter().filter(|t| t.is_punct("{")).count();
        assert_eq!(braces, 0);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r####"let s = r#"quote " inside"#; let t = 1;"####);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("t")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("quote")));
    }

    #[test]
    fn comments_are_collected_with_positions() {
        let lexed =
            lex("let a = 1; // ordering: Relaxed is enough\n/* block\nspans */ let b = 2;\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comment_with_marker_on("ordering:", 1, 1));
        assert!(!lexed.comment_with_marker_on("ordering:", 2, 3));
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[1].end_line, 3);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("b")));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lexed = lex("/* outer /* inner */ still outer */ let x = 1;");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("x")));
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn numeric_range_does_not_swallow_dots() {
        let lexed = lex("for i in 0..16 {}");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"16"));
        assert_eq!(texts.iter().filter(|&&t| t == ".").count(), 2);
    }
}
