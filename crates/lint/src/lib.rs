//! manthan3-lint: the workspace invariant linter.
//!
//! A dependency-free, token-level scanner that enforces the cross-cutting
//! invariants `rustc` and `clippy` cannot see: ClauseRef lifetimes across
//! arena GC, cancellation-poll reachability from public entry points,
//! justified atomic orderings, panic-free library code, and
//! `#![forbid(unsafe_code)]` crate headers. Run it as
//! `cargo run -p manthan3-lint -- check`; configuration and allowlists live
//! in `lint.toml` at the workspace root.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use config::LintConfig;
use diag::{allow_matches, Diagnostic};
use rules::Workspace;
use source::SourceFile;
use std::path::Path;

/// The outcome of a full workspace check.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that survived the allowlists, in file/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by allowlist entries.
    pub suppressed: usize,
}

/// Scans the workspace rooted at `root` and runs every registered rule.
pub fn check_workspace(root: &Path, config: &LintConfig) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    for rel in source::workspace_sources(root)? {
        files.push(SourceFile::load(root, &rel)?);
    }
    Ok(check_files(files, config))
}

/// Runs every rule over an already-built file set (used by fixture tests).
pub fn check_files(files: Vec<SourceFile>, config: &LintConfig) -> LintReport {
    let workspace = Workspace { files };
    let mut report = LintReport {
        files_scanned: workspace.files.len(),
        ..LintReport::default()
    };
    for rule in rules::registry() {
        let allow = config.allowlist(rule.name());
        for diag in rule.check(&workspace, config) {
            if allow.iter().any(|entry| allow_matches(entry, &diag)) {
                report.suppressed += 1;
            } else {
                report.diagnostics.push(diag);
            }
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}
