//! manthan3-lint: the workspace invariant linter.
//!
//! A dependency-free, token-level scanner that enforces the cross-cutting
//! invariants `rustc` and `clippy` cannot see: ClauseRef lifetimes across
//! arena GC, budget admission before solver invocations, lock-acquisition
//! ordering, stats-counter parity between the portfolio merge and the
//! benchmark CSVs, cancellation-poll reachability from public entry points,
//! justified atomic orderings, panic-free library code, and
//! `#![forbid(unsafe_code)]` crate headers. The flow-sensitive rules run a
//! gen/kill worklist analysis (see [`dataflow`]) over per-function CFGs
//! built straight from the token stream (see [`cfg`]). Run it as
//! `cargo run -p manthan3-lint -- check`; configuration and allowlists live
//! in `lint.toml` at the workspace root, and every allowlist entry must
//! still suppress something — stale entries are themselves violations.

#![forbid(unsafe_code)]

pub mod cfg;
#[cfg(test)]
mod cfg_props;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod source;

use config::LintConfig;
use diag::{allow_matches, Diagnostic};
use rules::Workspace;
use source::SourceFile;
use std::path::Path;

/// The outcome of a full workspace check.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that survived the allowlists, in file/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by allowlist entries.
    pub suppressed: usize,
}

/// Scans the workspace rooted at `root` and runs every registered rule.
pub fn check_workspace(root: &Path, config: &LintConfig) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    for rel in source::workspace_sources(root)? {
        files.push(SourceFile::load(root, &rel)?);
    }
    Ok(check_files(files, config))
}

/// Runs every rule over an already-built file set (used by fixture tests).
///
/// Allowlist entries are themselves checked: an entry that suppresses
/// nothing is reported as a `stale-allowlist` violation, so suppressions
/// cannot outlive the code they excused.
pub fn check_files(files: Vec<SourceFile>, config: &LintConfig) -> LintReport {
    let workspace = Workspace { files };
    let mut report = LintReport {
        files_scanned: workspace.files.len(),
        ..LintReport::default()
    };
    for rule in rules::registry() {
        let allow = config.allowlist(rule.name());
        let mut matched = vec![false; allow.len()];
        for diag in rule.check(&workspace, config) {
            let mut suppressed = false;
            for (i, entry) in allow.iter().enumerate() {
                if allow_matches(entry, &diag) {
                    matched[i] = true;
                    suppressed = true;
                }
            }
            if suppressed {
                report.suppressed += 1;
            } else {
                report.diagnostics.push(diag);
            }
        }
        for (entry, _) in allow.iter().zip(&matched).filter(|(_, &m)| !m) {
            report.diagnostics.push(Diagnostic {
                rule: "stale-allowlist",
                file: "lint.toml".to_string(),
                line: 0,
                symbol: None,
                message: format!(
                    "allowlist entry \"{entry}\" for rule `{}` suppresses nothing; \
                     delete it (the code it excused no longer violates the rule)",
                    rule.name()
                ),
            });
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}
