//! The source model the rules run against: lexed files plus a light
//! structural pass recognising test regions and function items.
//!
//! The structural pass is token-level, not a parse: it tracks brace depth,
//! attaches `#[cfg(test)]` / `#[test]` attributes to the block that follows
//! them, and records for every `fn` item its name, visibility, body token
//! range, and the names it calls. That is deliberately an approximation —
//! rules that consume it (`cancel-poll`, `clauseref-across-gc`) are designed
//! so that imprecision shows up as a diagnostic to allowlist, never as a
//! silently skipped file.

use crate::lexer::{lex, LexedFile, Token, TokenKind};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with forward slashes.
    pub rel_path: String,
    /// The lexed token/comment streams.
    pub lexed: LexedFile,
    /// For each token index, `true` if the token lies inside a test region
    /// (`#[cfg(test)] mod …` or a `#[test]` fn).
    pub in_test: Vec<bool>,
    /// Function items found by the structural pass, in source order.
    pub functions: Vec<FnItem>,
}

/// One `fn` item recognised by the structural pass.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// `true` for `pub` / `pub(crate)` / `pub(super)` functions.
    pub is_pub: bool,
    /// `true` if the item lies in a test region.
    pub in_test: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, **exclusive** of the outer braces; empty for
    /// bodyless items (trait methods, extern decls).
    pub body: std::ops::Range<usize>,
    /// Names of functions/methods invoked in the body: every identifier
    /// directly followed by `(`, plus generic calls `name::<…>(`.
    pub calls: BTreeSet<String>,
}

impl SourceFile {
    /// Loads and scans the file at `root.join(rel_path)`.
    pub fn load(root: &Path, rel_path: &str) -> std::io::Result<SourceFile> {
        let src = std::fs::read_to_string(root.join(rel_path))?;
        Ok(SourceFile::from_source(rel_path, &src))
    }

    /// Scans in-memory source, for fixture tests.
    pub fn from_source(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let in_test = mark_test_regions(&lexed.tokens);
        let functions = collect_functions(&lexed.tokens, &in_test);
        SourceFile {
            rel_path: rel_path.replace('\\', "/"),
            lexed,
            in_test,
            functions,
        }
    }

    /// The tokens of the file.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// `true` if a justification comment containing `marker` is adjacent to
    /// `line`: the marker may sit anywhere in a contiguous comment block
    /// (consecutive comment lines) that ends on the line itself or within
    /// the two lines above it, so multi-line justifications count in full.
    pub fn has_adjacent_marker(&self, marker: &str, line: u32) -> bool {
        let comments = &self.lexed.comments;
        for (i, comment) in comments.iter().enumerate() {
            if comment.line > line || !comment.text.contains(marker) {
                continue;
            }
            // Extend through the contiguous block this comment belongs to.
            let mut end = comment.end_line;
            for later in &comments[i + 1..] {
                if later.line <= end + 1 {
                    end = end.max(later.end_line);
                } else {
                    break;
                }
            }
            if end + 2 >= line {
                return true;
            }
        }
        false
    }
}

/// Marks, for every token, whether it lies inside a `#[cfg(test)]` block or
/// a `#[test]` function body.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_test_attribute(tokens, i) {
            // Find the block the attribute governs: the first `{` before the
            // next `;` (a `#[cfg(test)] use …;` governs no block).
            let mut j = i;
            let mut open = None;
            while j < tokens.len() {
                if tokens[j].is_punct("{") {
                    open = Some(j);
                    break;
                }
                if tokens[j].is_punct(";") {
                    break;
                }
                j += 1;
            }
            if let Some(open) = open {
                let close = matching_brace(tokens, open);
                for flag in in_test.iter_mut().take(close + 1).skip(i) {
                    *flag = true;
                }
                // Continue after the attribute itself; nested attributes
                // inside the region are already covered.
            }
        }
        i += 1;
    }
    in_test
}

/// `true` if tokens at `i` begin `#[cfg(test)]` or `#[test]` (also matching
/// composite forms like `#[cfg(all(test, …))]`).
fn is_test_attribute(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].is_punct("#") || !tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
        return false;
    }
    // Scan the attribute's bracket group for the `test` identifier.
    let mut depth = 0usize;
    for t in &tokens[i + 1..] {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_ident("test") {
            return true;
        }
    }
    false
}

/// Index of the `}` matching the `{` at `open` (or the last token on
/// imbalance).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Collects `fn` items: name, visibility, body range, called names.
fn collect_functions(tokens: &[Token], in_test: &[bool]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident) {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // Visibility: `pub` within the few tokens before `fn`, stopping
            // at the previous item boundary so a neighbouring item's
            // visibility is never picked up.
            let is_pub = tokens[..i]
                .iter()
                .rev()
                .take(6)
                .take_while(|t| !(t.is_punct(";") || t.is_punct("{") || t.is_punct("}")))
                .any(|t| t.is_ident("pub"));
            // The body is the first `{` before a `;` at signature level.
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut body = 0..0;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle -= 1;
                } else if t.is_punct(";") && angle <= 0 {
                    break; // bodyless declaration
                } else if t.is_punct("{") && angle <= 0 {
                    let close = matching_brace(tokens, j);
                    body = j + 1..close;
                    break;
                }
                j += 1;
            }
            let calls = called_names(&tokens[body.clone()]);
            out.push(FnItem {
                name,
                is_pub,
                in_test: in_test.get(i).copied().unwrap_or(false),
                line,
                body: body.clone(),
                calls,
            });
            // Do not skip the body: nested fns are items too.
        }
        i += 1;
    }
    out
}

/// Every identifier in `body` directly followed by `(` or by `::` `<` … `(`
/// (turbofish). Keywords that syntactically precede `(` are excluded.
fn called_names(body: &[Token]) -> BTreeSet<String> {
    const NOT_CALLS: &[&str] = &[
        "if", "while", "for", "match", "return", "in", "as", "loop", "else", "move", "fn", "let",
        "ref", "mut", "box", "unsafe", "await",
    ];
    let mut out = BTreeSet::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident || NOT_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        match body.get(i + 1) {
            Some(next) if next.is_punct("(") => {
                out.insert(t.text.clone());
            }
            Some(next) if next.is_punct("!") => {
                // Macro invocation: record the macro name too; reachability
                // treats it like a call (e.g. `debug_assert!`).
                out.insert(t.text.clone());
            }
            // Turbofish `name::<T>(…)`.
            Some(next)
                if next.is_punct("::") && body.get(i + 2).is_some_and(|t| t.is_punct("<")) =>
            {
                out.insert(t.text.clone());
            }
            _ => {}
        }
    }
    out
}

/// Recursively collects the workspace's `.rs` files the linter scans:
/// everything under `crates/*/src` and the root `src/`, excluding `vendor/`,
/// `target/`, and the linter's own `fixtures/`.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let mut rel: Vec<String> = files
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .filter(|r| !r.contains("/fixtures/"))
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_are_collected_with_bodies_and_calls() {
        let file = SourceFile::from_source(
            "x.rs",
            "pub fn outer(a: u32) -> u32 { helper(a); a.method() }\nfn helper(a: u32) {}\n",
        );
        assert_eq!(file.functions.len(), 2);
        let outer = &file.functions[0];
        assert_eq!(outer.name, "outer");
        assert!(outer.is_pub);
        assert!(outer.calls.contains("helper"));
        assert!(outer.calls.contains("method"));
        assert!(!file.functions[1].is_pub);
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { live(); }\n}\n";
        let file = SourceFile::from_source("x.rs", src);
        let live = file.functions.iter().find(|f| f.name == "live").unwrap();
        let t = file.functions.iter().find(|f| f.name == "t").unwrap();
        assert!(!live.in_test);
        assert!(t.in_test);
    }

    #[test]
    fn test_attribute_on_fn_marks_only_that_fn() {
        let src = "#[test]\nfn t() {}\nfn live() {}\n";
        let file = SourceFile::from_source("x.rs", src);
        assert!(
            file.functions
                .iter()
                .find(|f| f.name == "t")
                .unwrap()
                .in_test
        );
        assert!(
            !file
                .functions
                .iter()
                .find(|f| f.name == "live")
                .unwrap()
                .in_test
        );
    }

    #[test]
    fn generic_signatures_do_not_derail_body_detection() {
        let src = "pub fn generic<C>(c: C) -> bool where C: IntoIterator<Item = u32> { c.into_iter().count() > 0 }";
        let file = SourceFile::from_source("x.rs", src);
        assert_eq!(file.functions.len(), 1);
        assert!(file.functions[0].calls.contains("into_iter"));
    }
}
