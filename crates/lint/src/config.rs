//! `lint.toml`: per-rule configuration and allowlists.
//!
//! The parser is a hand-rolled TOML subset (crates.io is unreachable, so no
//! `toml` crate): `[section]` headers, `key = "string"` and
//! `key = ["array", "of", "strings"]` values (arrays may span lines), and
//! `#` comments. That is exactly the shape the linter's configuration needs.

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed `lint.toml`: section name → key → list of string values (a scalar
/// string is a one-element list).
#[derive(Debug, Default, Clone)]
pub struct LintConfig {
    sections: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

/// A malformed `lint.toml` line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the offending construct.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl LintConfig {
    /// Loads `path`, or returns the empty configuration if it does not exist.
    pub fn load(path: &Path) -> Result<LintConfig, Box<dyn std::error::Error>> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(LintConfig::parse(&text)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(LintConfig::default()),
            Err(e) => Err(e.into()),
        }
    }

    /// Parses configuration text.
    pub fn parse(text: &str) -> Result<LintConfig, ConfigError> {
        let mut config = LintConfig::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((num, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                config.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: num + 1,
                    message: format!("expected `[section]` or `key = value`, got `{line}`"),
                });
            };
            let key = key.trim().to_string();
            let mut value = value.trim().to_string();
            // Multiline arrays: keep consuming until the brackets balance.
            while value.starts_with('[') && !value.ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(ConfigError {
                        line: num + 1,
                        message: "unterminated array".to_string(),
                    });
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            let values = parse_value(&value).map_err(|message| ConfigError {
                line: num + 1,
                message,
            })?;
            config
                .sections
                .entry(section.clone())
                .or_default()
                .insert(key, values);
        }
        Ok(config)
    }

    /// The string list at `section.key` (empty if absent).
    pub fn list(&self, section: &str, key: &str) -> &[String] {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Like [`LintConfig::list`], but falls back to `default` when the key
    /// is absent (so rules have sensible behaviour without a lint.toml).
    pub fn list_or<'a>(&'a self, section: &str, key: &str, default: &'a [String]) -> &'a [String] {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(values) => values,
            None => default,
        }
    }

    /// The allowlist of `section` (key `allow`).
    pub fn allowlist(&self, section: &str) -> &[String] {
        self.list(section, "allow")
    }
}

/// Removes a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"string"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push(parse_string(part)?);
        }
        return Ok(out);
    }
    Ok(vec![parse_string(value)?])
}

/// Splits an array body on commas (strings in this config never contain
/// commas that matter, but quoted commas are still respected).
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    out.push(current);
    out
}

fn parse_string(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keys_and_arrays() {
        let config = LintConfig::parse(
            "# top comment\n[cancel-poll]\nentry-prefixes = [\"solve\", \"sample\"]\nallow = [\n    \"crates/x/src/lib.rs::solve_cnf\", # trailing comment\n]\n\n[atomic-ordering]\nmarker = \"ordering:\"\n",
        )
        .expect("parses");
        assert_eq!(
            config.list("cancel-poll", "entry-prefixes"),
            ["solve", "sample"]
        );
        assert_eq!(
            config.allowlist("cancel-poll"),
            ["crates/x/src/lib.rs::solve_cnf"]
        );
        assert_eq!(config.list("atomic-ordering", "marker"), ["ordering:"]);
        assert!(config.list("atomic-ordering", "absent").is_empty());
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let err = LintConfig::parse("[a]\nnot a kv\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("lint.toml:2"));
    }

    #[test]
    fn defaults_apply_when_keys_are_absent() {
        let config = LintConfig::parse("[x]\n").expect("parses");
        let default = vec!["d".to_string()];
        assert_eq!(config.list_or("x", "k", &default), ["d"]);
    }
}
