//! Output emitters: plain text, line-oriented JSON, and SARIF 2.1.0.
//!
//! SARIF is the interchange format CI annotation actions consume
//! (`github/codeql-action/upload-sarif` and friends): one `run` carrying the
//! tool's rule metadata plus one `result` per diagnostic, each with a
//! physical location. The JSON is emitted by hand — the workspace is
//! offline, so no serde — with full string escaping.

use crate::diag::Diagnostic;
use crate::rules;
use std::fmt::Write as _;

/// The report formats `manthan3-lint -- check --format <fmt>` can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// One `file:line: [rule] message` line per finding (the default).
    #[default]
    Text,
    /// A single JSON object: `{"diagnostics": [...], "summary": {...}}`.
    Json,
    /// SARIF 2.1.0, suitable for CI upload.
    Sarif,
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Format, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "sarif" => Ok(Format::Sarif),
            other => Err(format!(
                "unknown format {other:?} (expected \"text\", \"json\", or \"sarif\")"
            )),
        }
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a single JSON object.
pub fn to_json(diags: &[Diagnostic], files_scanned: usize, suppressed: usize) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let symbol = match &d.symbol {
            Some(s) => format!("\"{}\"", esc(s)),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"symbol\": {}, \"message\": \"{}\"}}{}",
            esc(d.rule),
            esc(&d.file),
            d.line,
            symbol,
            esc(&d.message),
            if i + 1 < diags.len() { "," } else { "" }
        );
    }
    let _ = write!(
        out,
        "  ],\n  \"summary\": {{\"files_scanned\": {files_scanned}, \"violations\": {}, \"suppressed\": {suppressed}}}\n}}\n",
        diags.len()
    );
    out
}

/// Renders diagnostics as a SARIF 2.1.0 log with one run.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"manthan3-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/manthan3\",\n");
    out.push_str("          \"rules\": [\n");
    // Registered rules plus the driver-level stale-allowlist check.
    let registry = rules::registry();
    let mut descriptors: Vec<(String, String)> = registry
        .iter()
        .map(|r| (r.name().to_string(), r.description().to_string()))
        .collect();
    descriptors.push((
        "stale-allowlist".to_string(),
        "every lint.toml allowlist entry must still suppress at least one violation".to_string(),
    ));
    for (i, (id, desc)) in descriptors.iter().enumerate() {
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}",
            esc(id),
            esc(desc),
            if i + 1 < descriptors.len() { "," } else { "" }
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            out,
            "        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}\n          ]\n        }}{}\n",
            esc(d.rule),
            esc(&d.message),
            esc(&d.file),
            d.line.max(1),
            if i + 1 < diags.len() { "," } else { "" }
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "budget-before-solve",
            file: "crates/x/src/lib.rs".into(),
            line: 12,
            symbol: Some("solve".into()),
            message: "a \"quoted\" message\nwith a newline".into(),
        }
    }

    /// A minimal JSON well-formedness scanner: balanced braces/brackets
    /// outside strings, all strings terminated, no raw control characters.
    fn assert_valid_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                } else {
                    assert!((c as u32) >= 0x20, "raw control char in string: {c:?}");
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced closer");
                }
                _ => {}
            }
        }
        assert!(!in_string, "unterminated string");
        assert_eq!(depth, 0, "unbalanced braces/brackets");
    }

    #[test]
    fn json_escapes_and_balances() {
        let s = to_json(&[diag()], 3, 1);
        assert_valid_json(&s);
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("\\n"));
        assert!(s.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let s = to_sarif(&[diag()]);
        assert_valid_json(&s);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"budget-before-solve\""));
        assert!(s.contains("\"startLine\": 12"));
        // Every registered rule is described in the driver metadata.
        for rule in crate::rules::registry() {
            assert!(s.contains(&format!("\"id\": \"{}\"", rule.name())));
        }
    }

    #[test]
    fn sarif_with_no_findings_is_still_valid() {
        assert_valid_json(&to_sarif(&[]));
    }

    #[test]
    fn format_parses() {
        assert_eq!("sarif".parse::<Format>().unwrap(), Format::Sarif);
        assert_eq!("json".parse::<Format>().unwrap(), Format::Json);
        assert_eq!("text".parse::<Format>().unwrap(), Format::Text);
        assert!("yaml".parse::<Format>().is_err());
    }
}
