//! A generic forward dataflow framework over [`Cfg`]s.
//!
//! Facts are bits in a rule-defined universe. A rule supplies a transfer
//! function mapping a node's IN set to its OUT set (typically by replaying
//! the node's tokens over the bitset); the engine iterates a worklist in
//! reverse postorder until the fixpoint.
//!
//! Two meet semantics cover the registered analyses:
//!
//! * [`Meet::Union`] — *may* analyses (reaching definitions for
//!   `clauseref-across-gc`): a fact holds at a node if it holds on **some**
//!   path. Unvisited inputs start empty.
//! * [`Meet::Intersect`] — *must* analyses (`budget-before-solve`): a fact
//!   holds only if it holds on **every** path. Non-entry inputs start at ⊤
//!   (all bits set) and are narrowed; the entry starts from the caller's
//!   boundary value.

use crate::cfg::Cfg;

/// A fixed-width bitset over a fact universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over a universe of `len` facts.
    pub fn empty(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set (⊤ of a must analysis) over `len` facts.
    pub fn full(len: usize) -> BitSet {
        let mut s = BitSet::empty(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Sets bit `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// `true` if bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterates the set bits.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.contains(i))
    }
}

/// How facts combine where paths meet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meet {
    /// Some-path semantics (may analysis).
    Union,
    /// All-paths semantics (must analysis).
    Intersect,
}

/// The fixpoint solution: per-node IN and OUT sets.
#[derive(Debug)]
pub struct Solution {
    /// Facts holding on entry to each node.
    pub input: Vec<BitSet>,
    /// Facts holding on exit from each node.
    pub output: Vec<BitSet>,
}

/// Runs a forward dataflow analysis to its fixpoint.
///
/// `boundary` is the IN set of the entry node. `transfer(node, in)` must be
/// monotone in `in` for termination (gen/kill transfers are).
pub fn forward(
    cfg: &Cfg,
    universe: usize,
    meet: Meet,
    boundary: BitSet,
    transfer: &mut dyn FnMut(usize, &BitSet) -> BitSet,
) -> Solution {
    let n = cfg.nodes.len();
    let top = match meet {
        Meet::Union => BitSet::empty(universe),
        Meet::Intersect => BitSet::full(universe),
    };
    let mut input: Vec<BitSet> = vec![top.clone(); n];
    let mut output: Vec<BitSet> = vec![top; n];
    input[cfg.entry] = boundary;
    output[cfg.entry] = transfer(cfg.entry, &input[cfg.entry]);

    let order = cfg.reverse_postorder();
    let mut dirty = vec![true; n];
    let mut changed = true;
    while changed {
        changed = false;
        for &id in &order {
            if !dirty[id] {
                continue;
            }
            dirty[id] = false;
            if id != cfg.entry {
                let preds = &cfg.nodes[id].preds;
                let mut acc = match meet {
                    Meet::Union => BitSet::empty(universe),
                    Meet::Intersect => BitSet::full(universe),
                };
                // A must-analysis node with no predecessors keeps ⊤; it can
                // only be the (unreachable) exit after a diverging body.
                for &p in preds {
                    match meet {
                        Meet::Union => acc.union_with(&output[p]),
                        Meet::Intersect => acc.intersect_with(&output[p]),
                    }
                }
                if preds.is_empty() && meet == Meet::Union {
                    acc = BitSet::empty(universe);
                }
                input[id] = acc;
            }
            let out = transfer(id, &input[id]);
            if out != output[id] {
                output[id] = out;
                for &s in &cfg.nodes[id].succs {
                    dirty[s] = true;
                }
                changed = true;
            }
        }
    }
    Solution { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::lexer::lex;

    #[test]
    fn must_analysis_requires_all_paths() {
        let tokens = lex("if c { check(); } solve();").tokens;
        let cfg = Cfg::build(&tokens);
        let mut transfer = |id: usize, input: &BitSet| {
            let mut out = input.clone();
            let node = &cfg.nodes[id];
            if tokens[node.tokens.clone()]
                .iter()
                .any(|t| t.is_ident("check"))
            {
                out.insert(0);
            }
            out
        };
        let sol = forward(&cfg, 1, Meet::Intersect, BitSet::empty(1), &mut transfer);
        // The node containing `solve` must NOT have the bit: one path skips
        // the check.
        let solve_node = cfg
            .nodes
            .iter()
            .position(|n| tokens[n.tokens.clone()].iter().any(|t| t.is_ident("solve")))
            .unwrap();
        assert!(!sol.input[solve_node].contains(0));
    }

    #[test]
    fn must_analysis_passes_when_both_branches_check() {
        let tokens = lex("if c { check(); } else { check(); } solve();").tokens;
        let cfg = Cfg::build(&tokens);
        let mut transfer = |id: usize, input: &BitSet| {
            let mut out = input.clone();
            if tokens[cfg.nodes[id].tokens.clone()]
                .iter()
                .any(|t| t.is_ident("check"))
            {
                out.insert(0);
            }
            out
        };
        let sol = forward(&cfg, 1, Meet::Intersect, BitSet::empty(1), &mut transfer);
        let solve_node = cfg
            .nodes
            .iter()
            .position(|n| tokens[n.tokens.clone()].iter().any(|t| t.is_ident("solve")))
            .unwrap();
        assert!(sol.input[solve_node].contains(0));
    }

    #[test]
    fn may_analysis_unions_over_paths() {
        let tokens = lex("if c { taint(); } use_it();").tokens;
        let cfg = Cfg::build(&tokens);
        let mut transfer = |id: usize, input: &BitSet| {
            let mut out = input.clone();
            if tokens[cfg.nodes[id].tokens.clone()]
                .iter()
                .any(|t| t.is_ident("taint"))
            {
                out.insert(0);
            }
            out
        };
        let sol = forward(&cfg, 1, Meet::Union, BitSet::empty(1), &mut transfer);
        let use_node = cfg
            .nodes
            .iter()
            .position(|n| {
                tokens[n.tokens.clone()]
                    .iter()
                    .any(|t| t.is_ident("use_it"))
            })
            .unwrap();
        assert!(sol.input[use_node].contains(0));
    }

    #[test]
    fn loop_fixpoint_terminates_and_propagates_around_back_edge() {
        let tokens = lex("loop { if c { check(); } if d { break; } } solve();").tokens;
        let cfg = Cfg::build(&tokens);
        let mut transfer = |id: usize, input: &BitSet| {
            let mut out = input.clone();
            if tokens[cfg.nodes[id].tokens.clone()]
                .iter()
                .any(|t| t.is_ident("check"))
            {
                out.insert(0);
            }
            out
        };
        let sol = forward(&cfg, 1, Meet::Intersect, BitSet::empty(1), &mut transfer);
        let solve_node = cfg
            .nodes
            .iter()
            .position(|n| tokens[n.tokens.clone()].iter().any(|t| t.is_ident("solve")))
            .unwrap();
        // The first iteration may break before ever checking.
        assert!(!sol.input[solve_node].contains(0));
    }
}
