//! Property tests for CFG well-formedness: random byte strings are decoded
//! into Rust-ish statement trees, rendered to token streams, built into
//! CFGs, and checked against the structural invariants every dataflow
//! client relies on (valid ids, mirrored succ/pred lists, reachability,
//! back edges targeting loop heads, disjoint token ranges). The decoder
//! deliberately produces malformed shapes too — `break` outside any loop,
//! empty bodies, dead code after `return` — because the builder promises
//! totality over arbitrary token streams, not just compiling Rust.
//!
//! The vendored proptest shim has no recursive/one-of combinators, so the
//! tree shape comes from a plain byte decoder over `collection::vec` input:
//! every byte string decodes to some program, and exhausted input decodes
//! to leaf statements, so decoding always terminates.

use crate::cfg::Cfg;
use crate::lexer::lex;
use proptest::prelude::*;
use std::fmt::Write as _;

/// A byte cursor; reads 0 once the input is exhausted (kind 0 is a leaf, so
/// running dry always closes the remaining constructs).
struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Decoder<'_> {
    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }
}

const MAX_DEPTH: usize = 4;

fn render_stmts(d: &mut Decoder, depth: usize, out: &mut String) {
    let count = (d.next() % 4) as usize;
    for _ in 0..count {
        render_stmt(d, depth, out);
    }
}

fn render_stmt(d: &mut Decoder, depth: usize, out: &mut String) {
    // Structured kinds degrade to leaves once the depth budget is spent.
    let kind = if depth >= MAX_DEPTH {
        d.next() % 6
    } else {
        d.next() % 13
    };
    match kind {
        0 => {
            let _ = write!(out, "f{}(); ", d.next() % 4);
        }
        1 => {
            let k = d.next() % 4;
            let _ = write!(out, "let x{k} = f{k}(); ");
        }
        2 => {
            let _ = write!(out, "g{}()?; ", d.next() % 4);
        }
        3 => out.push_str("return; "),
        4 => out.push_str("break; "),
        5 => out.push_str("continue; "),
        6 | 7 => {
            out.push_str("if cond { ");
            render_stmts(d, depth + 1, out);
            out.push_str("} ");
            if kind == 7 {
                out.push_str("else { ");
                render_stmts(d, depth + 1, out);
                out.push_str("} ");
            }
        }
        8 => {
            out.push_str("while cond { ");
            render_stmts(d, depth + 1, out);
            out.push_str("} ");
        }
        9 => {
            out.push_str("loop { ");
            render_stmts(d, depth + 1, out);
            out.push_str("} ");
        }
        10 => {
            out.push_str("for item in items { ");
            render_stmts(d, depth + 1, out);
            out.push_str("} ");
        }
        11 => {
            out.push_str("match v { ");
            let arms = 1 + (d.next() % 3) as usize;
            for i in 0..arms {
                let _ = write!(out, "V{i} => {{ ");
                render_stmts(d, depth + 1, out);
                out.push_str("} ");
            }
            out.push_str("_ => { } } ");
        }
        _ => {
            out.push_str("{ ");
            render_stmts(d, depth + 1, out);
            out.push_str("} ");
        }
    }
}

/// Decodes `bytes` into a function body and builds its CFG.
fn build(bytes: &[u8]) -> (String, Cfg) {
    let mut src = String::new();
    let mut d = Decoder { bytes, pos: 0 };
    // Top level: a generous statement budget so bodies get interesting.
    for _ in 0..1 + (d.next() % 6) {
        render_stmt(&mut d, 0, &mut src);
    }
    let cfg = Cfg::build(&lex(&src).tokens);
    (src, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core invariant bundle: the same assertions the hand-written unit
    /// tests use, over arbitrary statement trees.
    #[test]
    fn arbitrary_bodies_build_well_formed_cfgs(bytes in collection::vec(0u8..=255, 0..64)) {
        let (_, cfg) = build(&bytes);
        crate::cfg::tests::assert_well_formed(&cfg);
    }

    /// Token ranges never overlap: every token lands in at most one node, so
    /// a transfer function is applied at most once per token per pass.
    #[test]
    fn node_token_ranges_are_disjoint(bytes in collection::vec(0u8..=255, 0..64)) {
        let (src, cfg) = build(&bytes);
        let mut ranges: Vec<_> = cfg
            .nodes
            .iter()
            .filter(|n| !n.tokens.is_empty())
            .map(|n| n.tokens.clone())
            .collect();
        ranges.sort_by_key(|r| r.start);
        for pair in ranges.windows(2) {
            prop_assert!(
                pair[0].end <= pair[1].start,
                "overlapping node ranges {:?} and {:?} in {:?}",
                pair[0],
                pair[1],
                src
            );
        }
    }

    /// `reverse_postorder` (the worklist seed order) enumerates every
    /// entry-reachable node exactly once, entry first.
    #[test]
    fn reverse_postorder_covers_reachable_nodes_once(bytes in collection::vec(0u8..=255, 0..64)) {
        let (src, cfg) = build(&bytes);
        let rpo = cfg.reverse_postorder();
        prop_assert_eq!(rpo.first().copied(), Some(cfg.entry));
        let mut seen = vec![false; cfg.nodes.len()];
        for &id in &rpo {
            prop_assert!(id < cfg.nodes.len());
            prop_assert!(!seen[id], "node {} visited twice in {:?}", id, src);
            seen[id] = true;
        }
        // Reachability from entry, recomputed independently.
        let mut reach = vec![false; cfg.nodes.len()];
        let mut queue = vec![cfg.entry];
        reach[cfg.entry] = true;
        while let Some(v) = queue.pop() {
            for &s in &cfg.nodes[v].succs {
                if !reach[s] {
                    reach[s] = true;
                    queue.push(s);
                }
            }
        }
        for id in 0..cfg.nodes.len() {
            prop_assert!(
                seen[id] == reach[id],
                "rpo/reachability disagree on node {} in {:?}",
                id,
                src
            );
        }
    }

    /// Construction is deterministic: the same token stream always yields
    /// the identical CFG (required for the per-function `CfgCache`).
    #[test]
    fn construction_is_deterministic(bytes in collection::vec(0u8..=255, 0..64)) {
        let (src_a, a) = build(&bytes);
        let (src_b, b) = build(&bytes);
        prop_assert_eq!(src_a, src_b);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
