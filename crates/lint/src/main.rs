//! CLI driver: `manthan3-lint check [--root DIR] [--config FILE]
//! [--format text|json|sarif]` scans the workspace and exits 1 on
//! violations; `manthan3-lint rules` lists the registered rules. Exit code 2
//! signals usage or configuration errors.
//!
//! `--format text` (the default) prints one `file:line: [rule] message`
//! line per finding; `json` a single machine-readable object; `sarif` a
//! SARIF 2.1.0 log suitable for CI annotation upload. The human summary
//! always goes to stderr so stdout stays parseable.

#![forbid(unsafe_code)]

use manthan3_lint::config::LintConfig;
use manthan3_lint::sarif::{self, Format};
use manthan3_lint::{check_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = PathBuf::from(".");
    let mut config_path = None;
    let mut format = Format::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" | "rules" if command.is_none() => command = Some(arg.clone()),
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--config" => match it.next() {
                Some(file) => config_path = Some(PathBuf::from(file)),
                None => return usage("--config needs a file"),
            },
            "--format" => match it.next() {
                Some(name) => match name.parse::<Format>() {
                    Ok(f) => format = f,
                    Err(err) => return usage(&err),
                },
                None => return usage("--format needs one of: text, json, sarif"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    match command.as_deref() {
        Some("rules") => {
            for rule in rules::registry() {
                println!("{:24} {}", rule.name(), rule.description());
            }
            ExitCode::SUCCESS
        }
        Some("check") => run_check(&root, config_path, format),
        _ => usage("expected a subcommand: check | rules"),
    }
}

fn run_check(root: &std::path::Path, config_path: Option<PathBuf>, format: Format) -> ExitCode {
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = match LintConfig::load(&config_path) {
        Ok(config) => config,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    match check_workspace(root, &config) {
        Ok(report) => {
            match format {
                Format::Text => {
                    for diag in &report.diagnostics {
                        println!("{diag}");
                    }
                }
                Format::Json => print!(
                    "{}",
                    sarif::to_json(&report.diagnostics, report.files_scanned, report.suppressed)
                ),
                Format::Sarif => print!("{}", sarif::to_sarif(&report.diagnostics)),
            }
            eprintln!(
                "manthan3-lint: {} file(s) scanned, {} violation(s), {} allowlisted",
                report.files_scanned,
                report.diagnostics.len(),
                report.suppressed
            );
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!(
        "usage: manthan3-lint <check|rules> [--root DIR] [--config FILE] [--format text|json|sarif]"
    );
    ExitCode::from(2)
}
