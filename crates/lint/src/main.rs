//! CLI driver: `manthan3-lint check [--root DIR] [--config FILE]` scans the
//! workspace and exits 1 on violations; `manthan3-lint rules` lists the
//! registered rules. Exit code 2 signals usage or configuration errors.

#![forbid(unsafe_code)]

use manthan3_lint::config::LintConfig;
use manthan3_lint::{check_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = PathBuf::from(".");
    let mut config_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" | "rules" if command.is_none() => command = Some(arg.clone()),
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--config" => match it.next() {
                Some(file) => config_path = Some(PathBuf::from(file)),
                None => return usage("--config needs a file"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    match command.as_deref() {
        Some("rules") => {
            for rule in rules::registry() {
                println!("{:24} {}", rule.name(), rule.description());
            }
            ExitCode::SUCCESS
        }
        Some("check") => run_check(&root, config_path),
        _ => usage("expected a subcommand: check | rules"),
    }
}

fn run_check(root: &std::path::Path, config_path: Option<PathBuf>) -> ExitCode {
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = match LintConfig::load(&config_path) {
        Ok(config) => config,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    match check_workspace(root, &config) {
        Ok(report) => {
            for diag in &report.diagnostics {
                println!("{diag}");
            }
            eprintln!(
                "manthan3-lint: {} file(s) scanned, {} violation(s), {} allowlisted",
                report.files_scanned,
                report.diagnostics.len(),
                report.suppressed
            );
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("usage: manthan3-lint <check|rules> [--root DIR] [--config FILE]");
    ExitCode::from(2)
}
