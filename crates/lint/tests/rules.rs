//! Fixture self-tests: every rule must fire on its known-bad snippet and
//! stay quiet on the good parts — plus the capstone check that the real
//! workspace is clean under `lint.toml`.

use manthan3_lint::config::LintConfig;
use manthan3_lint::rules::{self, Rule, Workspace};
use manthan3_lint::source::SourceFile;
use manthan3_lint::{check_files, check_workspace};
use std::path::Path;

fn fixture(name: &str, rel_path: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    SourceFile::from_source(rel_path, &src)
}

fn run_rule(rule: &dyn Rule, files: Vec<SourceFile>) -> Vec<manthan3_lint::diag::Diagnostic> {
    let workspace = Workspace { files };
    rule.check(&workspace, &LintConfig::default())
}

#[test]
fn forbid_unsafe_header_fires_on_missing_header() {
    let diags = run_rule(
        &rules::ForbidUnsafeHeader,
        vec![fixture("missing_unsafe_header.rs", "crates/bad/src/lib.rs")],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].file, "crates/bad/src/lib.rs");
    assert_eq!(diags[0].line, 1);
}

#[test]
fn forbid_unsafe_header_ignores_non_roots() {
    let diags = run_rule(
        &rules::ForbidUnsafeHeader,
        vec![fixture(
            "missing_unsafe_header.rs",
            "crates/bad/src/other.rs",
        )],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn atomic_ordering_fires_only_without_marker() {
    let diags = run_rule(
        &rules::AtomicOrdering,
        vec![fixture(
            "unjustified_ordering.rs",
            "crates/bad/src/atomics.rs",
        )],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].symbol.as_deref(), Some("unjustified"));
    assert!(diags[0].message.contains("SeqCst"));
    assert!(diags[0].message.contains("weakened"));
}

#[test]
fn no_unwrap_in_lib_fires_on_unwrap_and_bare_expect() {
    let diags = run_rule(
        &rules::NoUnwrapInLib,
        vec![fixture("unwrap_in_lib.rs", "crates/sat/src/bad.rs")],
    );
    let symbols: Vec<_> = diags.iter().filter_map(|d| d.symbol.as_deref()).collect();
    assert_eq!(symbols, ["bad_unwrap", "bad_expect"], "{diags:?}");
}

#[test]
fn no_unwrap_in_lib_ignores_out_of_scope_files() {
    let diags = run_rule(
        &rules::NoUnwrapInLib,
        vec![fixture("unwrap_in_lib.rs", "crates/portfolio/src/bad.rs")],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn cancel_poll_fires_on_unreachable_poll() {
    let diags = run_rule(
        &rules::CancelPoll,
        vec![fixture("missing_cancel_poll.rs", "crates/sat/src/entry.rs")],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].symbol.as_deref(), Some("solve_without_poll"));
}

#[test]
fn clauseref_across_gc_fires_on_stale_use_only() {
    let diags = run_rule(
        &rules::ClauseRefAcrossGc,
        vec![fixture("clauseref_across_gc.rs", "crates/sat/src/gc.rs")],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].symbol.as_deref(), Some("stale_use"));
    assert!(diags[0].message.contains("maybe_collect_garbage"));
}

#[test]
fn allowlist_suppresses_by_function() {
    let config =
        LintConfig::parse("[clauseref-across-gc]\nallow = [\"crates/sat/src/gc.rs::stale_use\"]\n")
            .expect("config parses");
    let report = check_files(
        vec![fixture("clauseref_across_gc.rs", "crates/sat/src/gc.rs")],
        &config,
    );
    let gc_diags: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "clauseref-across-gc")
        .collect();
    assert!(gc_diags.is_empty(), "{gc_diags:?}");
    assert!(report.suppressed >= 1);
}

/// The capstone: the real workspace, scanned under the real `lint.toml`,
/// must be clean. This is the same invocation CI runs.
#[test]
fn workspace_is_clean_under_lint_toml() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root");
    let config = LintConfig::load(&root.join("lint.toml")).expect("lint.toml parses");
    let report = check_workspace(root, &config).expect("workspace scan succeeds");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
}
