//! Fixture self-tests: every rule must fire on its known-bad snippet and
//! stay quiet on the good parts — plus the capstone check that the real
//! workspace is clean under `lint.toml`.

use manthan3_lint::config::LintConfig;
use manthan3_lint::rules::{self, Rule, Workspace};
use manthan3_lint::source::SourceFile;
use manthan3_lint::{check_files, check_workspace};
use std::path::Path;

fn fixture(name: &str, rel_path: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    SourceFile::from_source(rel_path, &src)
}

fn run_rule(rule: &dyn Rule, files: Vec<SourceFile>) -> Vec<manthan3_lint::diag::Diagnostic> {
    let workspace = Workspace { files };
    rule.check(&workspace, &LintConfig::default())
}

#[test]
fn forbid_unsafe_header_fires_on_missing_header() {
    let diags = run_rule(
        &rules::ForbidUnsafeHeader,
        vec![fixture("missing_unsafe_header.rs", "crates/bad/src/lib.rs")],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].file, "crates/bad/src/lib.rs");
    assert_eq!(diags[0].line, 1);
}

#[test]
fn forbid_unsafe_header_ignores_non_roots() {
    let diags = run_rule(
        &rules::ForbidUnsafeHeader,
        vec![fixture(
            "missing_unsafe_header.rs",
            "crates/bad/src/other.rs",
        )],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn atomic_ordering_fires_only_without_marker() {
    let diags = run_rule(
        &rules::AtomicOrdering,
        vec![fixture(
            "unjustified_ordering.rs",
            "crates/bad/src/atomics.rs",
        )],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].symbol.as_deref(), Some("unjustified"));
    assert!(diags[0].message.contains("SeqCst"));
    assert!(diags[0].message.contains("weakened"));
}

#[test]
fn no_unwrap_in_lib_fires_on_unwrap_and_bare_expect() {
    let diags = run_rule(
        &rules::NoUnwrapInLib,
        vec![fixture("unwrap_in_lib.rs", "crates/sat/src/bad.rs")],
    );
    let symbols: Vec<_> = diags.iter().filter_map(|d| d.symbol.as_deref()).collect();
    assert_eq!(symbols, ["bad_unwrap", "bad_expect"], "{diags:?}");
}

#[test]
fn no_unwrap_in_lib_ignores_out_of_scope_files() {
    let diags = run_rule(
        &rules::NoUnwrapInLib,
        vec![fixture("unwrap_in_lib.rs", "crates/portfolio/src/bad.rs")],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn cancel_poll_fires_on_unreachable_poll() {
    let diags = run_rule(
        &rules::CancelPoll,
        vec![fixture("missing_cancel_poll.rs", "crates/sat/src/entry.rs")],
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].symbol.as_deref(), Some("solve_without_poll"));
}

#[test]
fn clauseref_across_gc_fires_on_may_stale_uses_only() {
    let diags = run_rule(
        &rules::ClauseRefAcrossGc,
        vec![fixture("clauseref_across_gc.rs", "crates/sat/src/gc.rs")],
    );
    let symbols: Vec<_> = diags.iter().filter_map(|d| d.symbol.as_deref()).collect();
    // `stale_use` is the straight-line case; `loop_stale` is reached only
    // through the loop back edge. `safe_use`, `rebound_use`, and
    // `remapped_use` (the `cref = forward(cref)` idiom) stay clean.
    assert_eq!(symbols, ["stale_use", "loop_stale"], "{diags:?}");
    assert!(diags[0].message.contains("maybe_collect_garbage"));
}

#[test]
fn allowlist_suppresses_by_function() {
    let config = LintConfig::parse(
        "[clauseref-across-gc]\nallow = [\"crates/sat/src/gc.rs::stale_use\", \
         \"crates/sat/src/gc.rs::loop_stale\"]\n",
    )
    .expect("config parses");
    let report = check_files(
        vec![fixture("clauseref_across_gc.rs", "crates/sat/src/gc.rs")],
        &config,
    );
    let gc_diags: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "clauseref-across-gc")
        .collect();
    assert!(gc_diags.is_empty(), "{gc_diags:?}");
    assert!(report.suppressed >= 2);
}

#[test]
fn stale_allowlist_entry_is_reported() {
    let config = LintConfig::parse(
        "[clauseref-across-gc]\nallow = [\"crates/sat/src/gc.rs::no_such_fn\"]\n",
    )
    .expect("config parses");
    let report = check_files(
        vec![fixture("clauseref_across_gc.rs", "crates/sat/src/gc.rs")],
        &config,
    );
    let stale: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "stale-allowlist")
        .collect();
    assert_eq!(stale.len(), 1, "{:?}", report.diagnostics);
    assert!(stale[0].message.contains("no_such_fn"));
    assert!(stale[0].message.contains("clauseref-across-gc"));
}

#[test]
fn budget_before_solve_fires_on_unchecked_paths_only() {
    let diags = run_rule(
        &rules::BudgetBeforeSolve,
        vec![fixture(
            "budget_before_solve.rs",
            "crates/maxsat/src/engine.rs",
        )],
    );
    let symbols: Vec<_> = diags.iter().filter_map(|d| d.symbol.as_deref()).collect();
    // `solve_checked` dominates its invocation with a check; the branch-only
    // check in `solve_branchy` leaves the fall-through path unchecked.
    assert_eq!(symbols, ["solve_unchecked", "solve_branchy"], "{diags:?}");
    assert!(diags[0].message.contains("solve_with_assumptions"));
}

#[test]
fn budget_before_solve_ignores_out_of_scope_files() {
    let diags = run_rule(
        &rules::BudgetBeforeSolve,
        vec![fixture(
            "budget_before_solve.rs",
            "crates/portfolio/src/engine.rs",
        )],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn proof_discipline_fires_on_uncovered_mutations_only() {
    let diags = run_rule(
        &rules::ProofDiscipline,
        vec![fixture(
            "proof_discipline.rs",
            "crates/sat/src/discipline.rs",
        )],
    );
    let symbols: Vec<_> = diags.iter().filter_map(|d| d.symbol.as_deref()).collect();
    // `learn_logged`/`retire_logged` cover their mutations on both sides;
    // `maintain` calls a safe mutator. The branch-only emit in
    // `retire_branchy` leaves the fall-through path unlogged, and
    // `maintain_unlogged` reaches the arena through a non-safe callee.
    assert_eq!(
        symbols,
        ["learn_unlogged", "retire_branchy", "maintain_unlogged"],
        "{diags:?}"
    );
    assert!(diags[0].message.contains("alloc"), "{diags:?}");
    assert!(diags[2].message.contains("may mutate"), "{diags:?}");
}

#[test]
fn proof_discipline_ignores_out_of_scope_files() {
    let diags = run_rule(
        &rules::ProofDiscipline,
        vec![fixture(
            "proof_discipline.rs",
            "crates/core/src/discipline.rs",
        )],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lock_order_fires_on_cyclic_nesting() {
    let diags = run_rule(
        &rules::LockOrder,
        vec![fixture("lock_order_cycle.rs", "crates/daemon/src/locks.rs")],
    );
    assert_eq!(diags.len(), 2, "{diags:?}");
    let symbols: Vec<_> = diags.iter().filter_map(|d| d.symbol.as_deref()).collect();
    assert!(symbols.contains(&"ab"), "{diags:?}");
    assert!(symbols.contains(&"ba"), "{diags:?}");
    // The `ba` edge is observed through the call graph, not directly.
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("via call to `lock_jobs`")),
        "{diags:?}"
    );
}

#[test]
fn lock_order_accepts_a_consistent_total_order() {
    let diags = run_rule(
        &rules::LockOrder,
        vec![fixture(
            "lock_order_consistent.rs",
            "crates/daemon/src/locks.rs",
        )],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn stats_counter_parity_requires_merge_and_csv() {
    let diags = run_rule(
        &rules::StatsCounterParity,
        vec![
            fixture("stats_parity.rs", "crates/core/src/stats.rs"),
            fixture("stats_parity_csv.rs", "crates/bench/src/report.rs"),
        ],
    );
    let symbols: Vec<_> = diags.iter().filter_map(|d| d.symbol.as_deref()).collect();
    // `merged_and_exported` satisfies both sides; the other two each miss
    // exactly one.
    assert_eq!(
        symbols,
        ["OracleStats::never_merged", "OracleStats::never_exported"],
        "{diags:?}"
    );
    assert!(diags[0].message.contains("merge fn"), "{diags:?}");
    assert!(diags[1].message.contains("CSV scope"), "{diags:?}");
}

/// The capstone: the real workspace, scanned under the real `lint.toml`,
/// must be clean. This is the same invocation CI runs.
#[test]
fn workspace_is_clean_under_lint_toml() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root");
    let config = LintConfig::load(&root.join("lint.toml")).expect("lint.toml parses");
    let report = check_workspace(root, &config).expect("workspace scan succeeds");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
}
