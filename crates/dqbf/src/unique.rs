//! Unique-definition extraction (the role of the UNIQUE tool in the paper).
//!
//! An existential variable `y` is *uniquely defined* by its dependency set
//! `H` relative to `ϕ` if any two models of `ϕ` that agree on `H` agree on
//! `y`. For such variables a Henkin function can be extracted directly,
//! without learning or repair. Manthan3's implementation runs this as a
//! preprocessing step.
//!
//! Definability is decided with Padoa's method (a single SAT call on two
//! renamed copies of the matrix). The definition itself is extracted, for
//! dependency sets up to a configurable size, by enumerating the dependency
//! valuations and asking a SAT oracle which output value is forced — a
//! simplified stand-in for the interpolation-based extraction used by the
//! original UNIQUE tool (see DESIGN.md §3).

use crate::{Dqbf, HenkinVector};
use manthan3_cnf::{Lit, Var};
use manthan3_sat::{SolveResult, Solver, SolverConfig};

/// Decides, with Padoa's method, whether `y` is uniquely defined by its
/// Henkin dependency set relative to the matrix of `dqbf`.
///
/// # Panics
///
/// Panics if `y` is not an existential variable of `dqbf`.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::Var;
/// use manthan3_dqbf::{unique, Dqbf};
///
/// // y ↔ (x1 ∨ x2) uniquely defines y.
/// let (x1, x2, y) = (Var::new(0), Var::new(1), Var::new(2));
/// let mut dqbf = Dqbf::new();
/// dqbf.add_universal(x1);
/// dqbf.add_universal(x2);
/// dqbf.add_existential(y, [x1, x2]);
/// dqbf.add_clause([y.negative(), x1.positive(), x2.positive()]);
/// dqbf.add_clause([y.positive(), x1.negative()]);
/// dqbf.add_clause([y.positive(), x2.negative()]);
/// assert!(unique::is_uniquely_defined(&dqbf, y));
/// ```
pub fn is_uniquely_defined(dqbf: &Dqbf, y: Var) -> bool {
    is_uniquely_defined_with(dqbf, y, &SolverConfig::default())
}

/// Like [`is_uniquely_defined`], but the Padoa SAT call runs under the given
/// solver configuration (in particular its conflict budget). A call that
/// gives up within the budget conservatively reports "not defined".
pub fn is_uniquely_defined_with(dqbf: &Dqbf, y: Var, config: &SolverConfig) -> bool {
    let deps = dqbf.dependencies(y);
    let n = dqbf.num_vars();
    let shift = |v: Var| Var::new((v.index() + n) as u32);
    let shift_lit = |l: Lit| Lit::new(shift(l.var()), l.is_positive());

    let mut solver = Solver::with_config(config.clone());
    solver.add_cnf(dqbf.matrix());
    for clause in dqbf.matrix().clauses() {
        solver.add_clause(clause.iter().map(|&l| shift_lit(l)));
    }
    // Dependencies agree across the two copies.
    for &d in deps {
        solver.add_clause([d.negative(), shift(d).positive()]);
        solver.add_clause([d.positive(), shift(d).negative()]);
    }
    // … but the defined variable differs.
    solver.add_clause([y.positive()]);
    solver.add_clause([shift(y).negative()]);
    solver.solve() == SolveResult::Unsat
}

/// Extracts, for every existential variable that is uniquely defined and has
/// at most `max_deps` dependencies, an explicit definition and stores it in
/// `vector`. Returns the variables for which a definition was extracted.
///
/// Variables with larger dependency sets are skipped even if they are
/// defined (extraction would require enumerating `2^|H|` valuations).
pub fn extract_definitions(dqbf: &Dqbf, vector: &mut HenkinVector, max_deps: usize) -> Vec<Var> {
    extract_definitions_with(dqbf, vector, max_deps, &SolverConfig::default())
}

/// Like [`extract_definitions`], but every SAT call runs under the given
/// solver configuration (in particular its conflict budget), so a shared
/// engine budget caps preprocessing too. Variables whose definability or
/// definition cannot be settled within the budget are skipped (sound: they
/// fall through to the learning phase).
pub fn extract_definitions_with(
    dqbf: &Dqbf,
    vector: &mut HenkinVector,
    max_deps: usize,
    config: &SolverConfig,
) -> Vec<Var> {
    let mut extracted = Vec::new();
    for &y in dqbf.existentials() {
        let deps: Vec<Var> = dqbf.dependencies(y).iter().copied().collect();
        if deps.len() > max_deps {
            continue;
        }
        if !is_uniquely_defined_with(dqbf, y, config) {
            continue;
        }
        if let Some(f) = definition_by_enumeration(dqbf, y, &deps, vector, config) {
            vector.set(y, f);
            extracted.push(y);
        }
    }
    extracted
}

/// Builds the definition of a uniquely defined `y` as a DNF over its
/// dependency valuations, using one SAT call per valuation. Returns `None`
/// when `y` turns out not to be defined for some valuation, or when any call
/// gives up within its conflict budget (an `Unknown` must not be mistaken
/// for "forced", so the whole extraction is abandoned for `y`).
fn definition_by_enumeration(
    dqbf: &Dqbf,
    y: Var,
    deps: &[Var],
    vector: &mut HenkinVector,
    config: &SolverConfig,
) -> Option<manthan3_aig::AigRef> {
    let mut solver = Solver::with_config(config.clone());
    solver.add_cnf(dqbf.matrix());
    let mut positive_cubes = Vec::new();
    for valuation in 0u64..(1u64 << deps.len()) {
        let mut assumptions: Vec<Lit> = deps
            .iter()
            .enumerate()
            .map(|(i, &d)| d.lit(valuation >> i & 1 == 1))
            .collect();
        assumptions.push(y.positive());
        let true_result = solver.solve_with_assumptions(&assumptions);
        *assumptions.last_mut().expect("non-empty") = y.negative();
        let false_result = solver.solve_with_assumptions(&assumptions);
        if true_result == SolveResult::Unknown || false_result == SolveResult::Unknown {
            return None;
        }
        let can_be_true = true_result == SolveResult::Sat;
        let can_be_false = false_result == SolveResult::Sat;
        match (can_be_true, can_be_false) {
            (true, true) => return None, // not actually defined for this valuation
            (true, false) => {
                let cube: Vec<_> = deps
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| {
                        let input = vector.aig_mut().input(d.index());
                        if valuation >> i & 1 == 1 {
                            input
                        } else {
                            !input
                        }
                    })
                    .collect();
                let c = vector.aig_mut().and_list(&cube);
                positive_cubes.push(c);
            }
            // Forced false or unconstrained valuation: contribute nothing.
            (false, _) => {}
        }
    }
    Some(vector.aig_mut().or_list(&positive_cubes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check;

    fn gate_example() -> Dqbf {
        // y1 ↔ (x1 ∧ x2), y2 free (only constrained by a clause it can satisfy
        // in several ways).
        let (x1, x2) = (Var::new(0), Var::new(1));
        let (y1, y2) = (Var::new(2), Var::new(3));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y1, [x1, x2]);
        dqbf.add_existential(y2, [x1]);
        dqbf.add_clause([y1.negative(), x1.positive()]);
        dqbf.add_clause([y1.negative(), x2.positive()]);
        dqbf.add_clause([y1.positive(), x1.negative(), x2.negative()]);
        dqbf.add_clause([y2.positive(), x1.positive()]);
        dqbf
    }

    #[test]
    fn padoa_distinguishes_defined_from_free() {
        let dqbf = gate_example();
        assert!(is_uniquely_defined(&dqbf, Var::new(2)));
        assert!(!is_uniquely_defined(&dqbf, Var::new(3)));
    }

    #[test]
    fn extraction_produces_the_gate_function() {
        let dqbf = gate_example();
        let mut vector = HenkinVector::new();
        let extracted = extract_definitions(&dqbf, &mut vector, 8);
        assert_eq!(extracted, vec![Var::new(2)]);
        // The extracted definition is x1 ∧ x2.
        for bits in 0..4u32 {
            let values = vec![bits & 1 == 1, bits & 2 == 2];
            assert_eq!(
                vector.eval_one(Var::new(2), &values),
                Some(values[0] && values[1])
            );
        }
    }

    #[test]
    fn definition_not_extracted_beyond_dependency_budget() {
        let dqbf = gate_example();
        let mut vector = HenkinVector::new();
        let extracted = extract_definitions(&dqbf, &mut vector, 1);
        assert!(extracted.is_empty());
    }

    #[test]
    fn definedness_respects_dependency_sets() {
        // y ↔ x2 but y is only allowed to depend on x1: not defined by H.
        let (x1, x2, y) = (Var::new(0), Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y, [x1]);
        dqbf.add_clause([y.negative(), x2.positive()]);
        dqbf.add_clause([y.positive(), x2.negative()]);
        assert!(!is_uniquely_defined(&dqbf, y));
    }

    #[test]
    fn paper_example_definitions_verify() {
        // In the paper example y2 and y3 are gate-defined once y1 is known;
        // only y3 is defined purely from its dependencies {x2, x3}.
        let dqbf = Dqbf::paper_example();
        let mut vector = HenkinVector::new();
        let extracted = extract_definitions(&dqbf, &mut vector, 8);
        assert!(extracted.contains(&Var::new(5)));
        // Completing the remaining functions by hand yields a valid vector.
        let in_x1 = vector.aig_mut().input(0);
        let in_x2 = vector.aig_mut().input(1);
        vector.set(Var::new(3), !in_x1);
        let f2 = vector.aig_mut().or(!in_x1, !in_x2);
        vector.set(Var::new(4), f2);
        assert!(check(&dqbf, &vector).is_valid());
    }
}
