//! DQDIMACS parsing and printing.
//!
//! DQDIMACS extends DIMACS with quantifier lines:
//!
//! * `a l1 l2 … 0` — universally quantified variables,
//! * `e l1 l2 … 0` — existentially quantified variables that depend on **all
//!   universals declared so far** (QBF-style),
//! * `d y x1 x2 … 0` — an existentially quantified variable `y` with the
//!   explicit Henkin dependency set `{x1, x2, …}`.

use crate::Dqbf;
use manthan3_cnf::{Lit, Var};
use std::error::Error;
use std::fmt;

/// An error produced while parsing a DQDIMACS file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDqdimacsError {
    line: usize,
    message: String,
}

impl ParseDqdimacsError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseDqdimacsError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number at which the error occurred.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDqdimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDqdimacsError {}

fn parse_vars(line: usize, tokens: &[&str]) -> Result<Vec<Var>, ParseDqdimacsError> {
    let mut out = Vec::new();
    for tok in tokens {
        let value: i64 = tok.parse().map_err(|_| {
            ParseDqdimacsError::new(line, format!("invalid variable token {tok:?}"))
        })?;
        if value == 0 {
            break;
        }
        if value < 0 {
            return Err(ParseDqdimacsError::new(
                line,
                "quantifier lines must list positive variable identifiers",
            ));
        }
        out.push(Var::from_dimacs(value as u32));
    }
    Ok(out)
}

/// Parses a DQDIMACS string into a [`Dqbf`].
///
/// # Errors
///
/// Returns [`ParseDqdimacsError`] on malformed headers, quantifier lines or
/// clause literals.
///
/// # Examples
///
/// ```
/// use manthan3_dqbf::parse_dqdimacs;
/// let text = "p cnf 3 1\na 1 2 0\nd 3 1 0\n1 3 0\n";
/// let dqbf = parse_dqdimacs(text)?;
/// assert_eq!(dqbf.universals().len(), 2);
/// assert_eq!(dqbf.existentials().len(), 1);
/// # Ok::<(), manthan3_dqbf::ParseDqdimacsError>(())
/// ```
pub fn parse_dqdimacs(input: &str) -> Result<Dqbf, ParseDqdimacsError> {
    let mut dqbf = Dqbf::new();
    let mut current_clause: Vec<Lit> = Vec::new();
    for (lineno, raw_line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDqdimacsError::new(lineno, "expected 'p cnf' header"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("a ") {
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            for v in parse_vars(lineno, &tokens)? {
                dqbf.add_universal(v);
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("e ") {
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            let deps: Vec<Var> = dqbf.universals().to_vec();
            for v in parse_vars(lineno, &tokens)? {
                dqbf.add_existential(v, deps.iter().copied());
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("d ") {
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            let vars = parse_vars(lineno, &tokens)?;
            let Some((&y, deps)) = vars.split_first() else {
                return Err(ParseDqdimacsError::new(lineno, "empty 'd' line"));
            };
            dqbf.add_existential(y, deps.iter().copied());
            continue;
        }
        // Clause line(s).
        for tok in line.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| {
                ParseDqdimacsError::new(lineno, format!("invalid literal token {tok:?}"))
            })?;
            if value == 0 {
                dqbf.add_clause(current_clause.drain(..));
            } else {
                current_clause.push(Lit::from_dimacs(value));
            }
        }
    }
    if !current_clause.is_empty() {
        dqbf.add_clause(current_clause.drain(..));
    }
    Ok(dqbf)
}

/// Writes a [`Dqbf`] in DQDIMACS syntax (universals on one `a` line, one `d`
/// line per existential, then the matrix clauses).
pub fn write_dqdimacs(dqbf: &Dqbf) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "p cnf {} {}\n",
        dqbf.num_vars(),
        dqbf.num_clauses()
    ));
    if !dqbf.universals().is_empty() {
        out.push('a');
        for &x in dqbf.universals() {
            out.push_str(&format!(" {}", x.to_dimacs()));
        }
        out.push_str(" 0\n");
    }
    for &y in dqbf.existentials() {
        out.push_str(&format!("d {}", y.to_dimacs()));
        for &x in dqbf.dependencies(y) {
            out.push_str(&format!(" {}", x.to_dimacs()));
        }
        out.push_str(" 0\n");
    }
    for clause in dqbf.matrix().clauses() {
        for &lit in clause {
            out.push_str(&format!("{} ", lit.to_dimacs()));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_explicit_dependencies() {
        let text = "c example\np cnf 4 2\na 1 2 0\nd 3 1 0\nd 4 2 0\n1 3 0\n-2 4 0\n";
        let dqbf = parse_dqdimacs(text).unwrap();
        assert_eq!(dqbf.universals().len(), 2);
        assert_eq!(dqbf.existentials().len(), 2);
        assert_eq!(dqbf.num_clauses(), 2);
        let y3 = Var::from_dimacs(3);
        assert!(dqbf.dependencies(y3).contains(&Var::from_dimacs(1)));
        assert!(!dqbf.dependencies(y3).contains(&Var::from_dimacs(2)));
        assert!(dqbf.validate().is_ok());
    }

    #[test]
    fn e_lines_depend_on_all_prior_universals() {
        let text = "p cnf 3 1\na 1 0\ne 2 0\na 3 0\n1 2 3 0\n";
        let dqbf = parse_dqdimacs(text).unwrap();
        let y = Var::from_dimacs(2);
        assert!(dqbf.dependencies(y).contains(&Var::from_dimacs(1)));
        assert!(!dqbf.dependencies(y).contains(&Var::from_dimacs(3)));
    }

    #[test]
    fn roundtrip_through_writer() {
        let dqbf = Dqbf::paper_example();
        let text = write_dqdimacs(&dqbf);
        let parsed = parse_dqdimacs(&text).unwrap();
        assert_eq!(parsed.universals(), dqbf.universals());
        assert_eq!(parsed.existentials(), dqbf.existentials());
        assert_eq!(parsed.num_clauses(), dqbf.num_clauses());
        for &y in dqbf.existentials() {
            assert_eq!(parsed.dependencies(y), dqbf.dependencies(y));
        }
    }

    #[test]
    fn rejects_negative_quantifier_entries() {
        let err = parse_dqdimacs("a -1 0\n").unwrap_err();
        assert!(err.to_string().contains("positive"));
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn rejects_bad_header_and_tokens() {
        assert!(parse_dqdimacs("p qcnf 1 1\n").is_err());
        assert!(parse_dqdimacs("1 x 0\n").is_err());
        assert!(parse_dqdimacs("d 0\n").is_err());
    }

    #[test]
    fn trailing_clause_without_terminator() {
        let dqbf = parse_dqdimacs("a 1 0\nd 2 1 0\n1 2").unwrap();
        assert_eq!(dqbf.num_clauses(), 1);
    }
}
