use crate::Dqbf;
use manthan3_aig::{Aig, AigRef};
use manthan3_cnf::{Assignment, Var};
use std::collections::{BTreeMap, HashMap};

/// A (candidate or final) Henkin function vector `f = ⟨f_1, …, f_m⟩`.
///
/// Functions are stored as cones in a shared [`Aig`] whose input labels are
/// the [`Var::index`] values of the formula's variables. During Manthan3's
/// repair loop a candidate `f_i` may still mention other existential
/// variables; [`HenkinVector::substitute_down`] expands those occurrences so
/// that the final functions are expressed purely over their Henkin
/// dependencies (Algorithm 1, line 19 of the paper).
///
/// # Examples
///
/// ```
/// use manthan3_cnf::Var;
/// use manthan3_dqbf::HenkinVector;
///
/// let y = Var::new(1);
/// let mut vector = HenkinVector::new();
/// let x = vector.aig_mut().input(0);
/// vector.set(y, !x);
/// assert_eq!(vector.functions().len(), 1);
/// assert!(vector.eval_one(y, &[true]) == Some(false));
/// ```
#[derive(Debug, Clone, Default)]
pub struct HenkinVector {
    aig: Aig,
    functions: BTreeMap<Var, AigRef>,
}

impl HenkinVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        HenkinVector {
            aig: Aig::new(),
            functions: BTreeMap::new(),
        }
    }

    /// The shared AIG holding all function cones.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Mutable access to the shared AIG (used to build new cones).
    pub fn aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// Sets (or replaces) the function for existential variable `y`.
    pub fn set(&mut self, y: Var, f: AigRef) {
        self.functions.insert(y, f);
    }

    /// The function for `y`, if defined.
    pub fn get(&self, y: Var) -> Option<AigRef> {
        self.functions.get(&y).copied()
    }

    /// All `(variable, function)` pairs in variable order.
    pub fn functions(&self) -> &BTreeMap<Var, AigRef> {
        &self.functions
    }

    /// Number of defined functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Returns `true` if no function is defined.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// The support of `f_y` as variable indices, if `y` is defined.
    pub fn support(&self, y: Var) -> Option<Vec<Var>> {
        self.functions.get(&y).map(|&f| {
            self.aig
                .support(f)
                .into_iter()
                .map(|i| Var::new(i as u32))
                .collect()
        })
    }

    /// Evaluates `f_y` under an assignment given by variable index
    /// (`values[i]` is the value of variable `i`).
    pub fn eval_one(&self, y: Var, values: &[bool]) -> Option<bool> {
        self.functions.get(&y).map(|&f| self.aig.eval(f, values))
    }

    /// Completes an assignment of the universal variables into a full
    /// assignment of the formula's variables by evaluating the functions in
    /// the given order. Functions may refer to previously evaluated
    /// existential variables, so `order` must be a valid topological order
    /// (later functions may depend on earlier ones).
    pub fn extend_assignment(
        &self,
        dqbf: &Dqbf,
        x_values: &Assignment,
        order: &[Var],
    ) -> Assignment {
        let mut values = vec![false; dqbf.num_vars()];
        for &x in dqbf.universals() {
            values[x.index()] = x_values.get(x).unwrap_or(false);
        }
        for &y in order {
            if let Some(&f) = self.functions.get(&y) {
                values[y.index()] = self.aig.eval(f, &values);
            }
        }
        Assignment::from_values(values)
    }

    /// Expands, in every function, references to other existential variables
    /// by their functions, processing variables in `order` (earlier entries
    /// may appear inside later entries). After this call every function whose
    /// referenced variables were themselves defined is expressed over
    /// universal variables only.
    pub fn substitute_down(&mut self, order: &[Var]) {
        // Process in order: whenever y_j appears in f_i and f_j has already
        // been fully expanded, replace it.
        let mut expanded: HashMap<usize, AigRef> = HashMap::new();
        for &y in order {
            let Some(&f) = self.functions.get(&y) else {
                continue;
            };
            let new_f = self.aig.compose(f, &expanded);
            self.functions.insert(y, new_f);
            expanded.insert(y.index(), new_f);
        }
    }

    /// Checks that every defined function only mentions variables in its
    /// Henkin dependency set; returns the first violating pair
    /// `(existential, offending variable)` if any.
    pub fn dependency_violation(&self, dqbf: &Dqbf) -> Option<(Var, Var)> {
        for (&y, &f) in &self.functions {
            let deps = dqbf.dependencies(y);
            for label in self.aig.support(f) {
                let v = Var::new(label as u32);
                if !deps.contains(&v) {
                    return Some((y, v));
                }
            }
        }
        None
    }

    /// Total number of AND gates across all function cones (a size metric
    /// reported by the benchmark harness).
    pub fn total_size(&self) -> usize {
        self.functions
            .values()
            .map(|&f| self.aig.cone_size(f))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_eval() {
        let mut v = HenkinVector::new();
        let y = Var::new(2);
        let x0 = v.aig_mut().input(0);
        let x1 = v.aig_mut().input(1);
        let f = v.aig_mut().xor(x0, x1);
        v.set(y, f);
        assert_eq!(v.len(), 1);
        assert_eq!(v.eval_one(y, &[true, false]), Some(true));
        assert_eq!(v.eval_one(y, &[true, true]), Some(false));
        assert_eq!(v.eval_one(Var::new(9), &[]), None);
        assert_eq!(v.support(y), Some(vec![Var::new(0), Var::new(1)]));
    }

    #[test]
    fn dependency_violation_detection() {
        // y1 depends on x1 only, but its function uses x2.
        let x1 = Var::new(0);
        let x2 = Var::new(1);
        let y1 = Var::new(2);
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y1, [x1]);

        let mut v = HenkinVector::new();
        let bad = v.aig_mut().input(x2.index());
        v.set(y1, bad);
        assert_eq!(v.dependency_violation(&dqbf), Some((y1, x2)));

        let good = v.aig_mut().input(x1.index());
        v.set(y1, good);
        assert_eq!(v.dependency_violation(&dqbf), None);
    }

    #[test]
    fn substitution_expands_nested_functions() {
        // f_{y2} = y1 ∨ x2 and f_{y1} = ¬x1: after substitution f_{y2} must
        // not mention y1 any more.
        let x1 = Var::new(0);
        let x2 = Var::new(1);
        let y1 = Var::new(2);
        let y2 = Var::new(3);
        let mut v = HenkinVector::new();
        let in_x1 = v.aig_mut().input(x1.index());
        let in_x2 = v.aig_mut().input(x2.index());
        let in_y1 = v.aig_mut().input(y1.index());
        v.set(y1, !in_x1);
        let f2 = v.aig_mut().or(in_y1, in_x2);
        v.set(y2, f2);

        v.substitute_down(&[y1, y2]);
        let support = v.support(y2).unwrap();
        assert!(!support.contains(&y1));
        // Semantics preserved: y2 = ¬x1 ∨ x2.
        for bits in 0..4u32 {
            let values = vec![bits & 1 == 1, bits & 2 == 2];
            let expected = !values[0] || values[1];
            assert_eq!(v.eval_one(y2, &values), Some(expected));
        }
    }

    #[test]
    fn extend_assignment_follows_order() {
        let dqbf = Dqbf::paper_example();
        let y = |i: u32| Var::new(3 + i);
        let x = |i: u32| Var::new(i);
        let mut v = HenkinVector::new();
        let in_x1 = v.aig_mut().input(x(0).index());
        let in_x2 = v.aig_mut().input(x(1).index());
        let in_x3 = v.aig_mut().input(x(2).index());
        let in_y1 = v.aig_mut().input(y(0).index());
        v.set(y(0), !in_x1);
        let f2 = v.aig_mut().or(in_y1, !in_x2);
        v.set(y(1), f2);
        let f3 = v.aig_mut().or(in_x2, in_x3);
        v.set(y(2), f3);

        let mut x_assignment = Assignment::new_false(3);
        x_assignment.set(x(0), true);
        let full = v.extend_assignment(&dqbf, &x_assignment, &[y(0), y(1), y(2)]);
        assert!(!full.value(y(0))); // ¬x1 = false
        assert!(full.value(y(1))); // y1 ∨ ¬x2 = false ∨ true
        assert!(!full.value(y(2))); // x2 ∨ x3 = false
    }

    #[test]
    fn total_size_counts_gates() {
        let mut v = HenkinVector::new();
        let a = v.aig_mut().input(0);
        let b = v.aig_mut().input(1);
        let f = v.aig_mut().and(a, b);
        v.set(Var::new(2), f);
        assert_eq!(v.total_size(), 1);
        assert!(!v.is_empty());
    }
}
