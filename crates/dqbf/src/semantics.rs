//! Brute-force DQBF semantics for small instances.
//!
//! These routines enumerate Henkin function tables explicitly and are only
//! feasible for tiny formulas. They serve as an *independent oracle* in the
//! test suite: the synthesis engines and the certificate checker are compared
//! against them on randomly generated small instances.

use crate::{Dqbf, HenkinVector};
use manthan3_cnf::{Assignment, Var};

/// Upper bound on `Σ_i 2^|H_i|` (total truth-table bits) and on `|X|` for
/// which brute-force evaluation is attempted by default.
pub const DEFAULT_LIMIT_BITS: u32 = 16;

fn table_bits(dqbf: &Dqbf) -> Option<u32> {
    let mut total: u32 = 0;
    for &y in dqbf.existentials() {
        let deps = dqbf.dependencies(y).len() as u32;
        if deps > 12 {
            return None;
        }
        total = total.checked_add(1u32.checked_shl(deps)?)?;
        if total > 30 {
            return None;
        }
    }
    Some(total)
}

/// Decides a small DQBF by explicit enumeration of all Henkin function
/// tables.
///
/// Returns `None` if the instance is too large (more than `limit_bits` total
/// table bits or more than 16 universal variables); otherwise returns
/// `Some(true)` / `Some(false)`.
///
/// # Examples
///
/// ```
/// use manthan3_dqbf::{semantics, Dqbf};
/// let dqbf = Dqbf::paper_example();
/// assert_eq!(semantics::brute_force_truth(&dqbf, 16), Some(true));
/// ```
pub fn brute_force_truth(dqbf: &Dqbf, limit_bits: u32) -> Option<bool> {
    brute_force_synthesize(dqbf, limit_bits).map(|v| v.is_some())
}

/// Like [`brute_force_truth`] but also returns a witnessing
/// [`HenkinVector`] (as truth-table DNFs) for true instances.
pub fn brute_force_synthesize(dqbf: &Dqbf, limit_bits: u32) -> Option<Option<HenkinVector>> {
    let bits = table_bits(dqbf)?;
    if bits > limit_bits || dqbf.universals().len() > 16 {
        return None;
    }
    let num_x = dqbf.universals().len();
    let existentials: Vec<Var> = dqbf.existentials().to_vec();
    let deps: Vec<Vec<Var>> = existentials
        .iter()
        .map(|&y| dqbf.dependencies(y).iter().copied().collect())
        .collect();
    let table_sizes: Vec<u32> = deps.iter().map(|d| 1u32 << d.len()).collect();
    let offsets: Vec<u32> = table_sizes
        .iter()
        .scan(0u32, |acc, &s| {
            let o = *acc;
            *acc += s;
            Some(o)
        })
        .collect();

    'tables: for tables in 0u64..(1u64 << bits) {
        // Check all universal assignments against this table combination.
        for x_bits in 0u32..(1u32 << num_x) {
            let mut values = vec![false; dqbf.num_vars()];
            for (i, &x) in dqbf.universals().iter().enumerate() {
                values[x.index()] = x_bits >> i & 1 == 1;
            }
            for (i, &y) in existentials.iter().enumerate() {
                let mut index = 0u32;
                for (j, &d) in deps[i].iter().enumerate() {
                    if values[d.index()] {
                        index |= 1 << j;
                    }
                }
                let bit = offsets[i] + index;
                values[y.index()] = tables >> bit & 1 == 1;
            }
            if !dqbf.eval_matrix(&Assignment::from_values(values)) {
                continue 'tables;
            }
        }
        // All assignments satisfied: build the witnessing vector.
        let mut vector = HenkinVector::new();
        for (i, &y) in existentials.iter().enumerate() {
            let mut cubes = Vec::new();
            for index in 0..table_sizes[i] {
                let bit = offsets[i] + index;
                if tables >> bit & 1 == 1 {
                    let mut cube = Vec::new();
                    for (j, &d) in deps[i].iter().enumerate() {
                        let input = vector.aig_mut().input(d.index());
                        cube.push(if index >> j & 1 == 1 { input } else { !input });
                    }
                    let c = vector.aig_mut().and_list(&cube);
                    cubes.push(c);
                }
            }
            let f = vector.aig_mut().or_list(&cubes);
            vector.set(y, f);
        }
        return Some(Some(vector));
    }
    Some(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check;
    use manthan3_cnf::Lit;

    #[test]
    fn paper_example_is_true() {
        let dqbf = Dqbf::paper_example();
        let vector = brute_force_synthesize(&dqbf, 16)
            .expect("small enough")
            .expect("true instance");
        assert!(check(&dqbf, &vector).is_valid());
    }

    #[test]
    fn xor_limitation_example_is_true() {
        let dqbf = Dqbf::xor_limitation_example();
        assert_eq!(brute_force_truth(&dqbf, 16), Some(true));
    }

    #[test]
    fn detects_false_instances() {
        // ∀x1 x2 ∃^{x1}y. (y ↔ x2): y would have to depend on x2.
        let x1 = Var::new(0);
        let x2 = Var::new(1);
        let y = Var::new(2);
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y, [x1]);
        dqbf.add_clause([y.negative(), x2.positive()]);
        dqbf.add_clause([y.positive(), x2.negative()]);
        assert_eq!(brute_force_truth(&dqbf, 16), Some(false));

        // With the right dependency the same matrix is true.
        let mut ok = Dqbf::new();
        ok.add_universal(x1);
        ok.add_universal(x2);
        ok.add_existential(y, [x2]);
        ok.add_clause([y.negative(), x2.positive()]);
        ok.add_clause([y.positive(), x2.negative()]);
        assert_eq!(brute_force_truth(&ok, 16), Some(true));
    }

    #[test]
    fn unsat_matrix_is_false() {
        let x = Var::new(0);
        let y = Var::new(1);
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x]);
        dqbf.add_clause([Lit::positive(y)]);
        dqbf.add_clause([Lit::negative(y)]);
        assert_eq!(brute_force_truth(&dqbf, 16), Some(false));
    }

    #[test]
    fn too_large_instances_are_rejected() {
        let mut dqbf = Dqbf::new();
        let xs: Vec<Var> = (0..14).map(Var::new).collect();
        for &x in &xs {
            dqbf.add_universal(x);
        }
        dqbf.add_existential(Var::new(20), xs.iter().copied());
        assert_eq!(brute_force_truth(&dqbf, 16), None);
    }
}
