//! SAT-based certificate checking for Henkin function vectors.
//!
//! By Lemma 1 of the paper, `f` is a Henkin function vector for
//! `∀X ∃^H Y. ϕ(X,Y)` iff (a) every `f_i` only depends on `H_i` and (b) the
//! *error formula* `E(X,Y') = ¬ϕ(X,Y') ∧ (Y' ↔ f)` is unsatisfiable. This
//! module implements exactly that check against an independent SAT solver,
//! so it can be used to validate the output of any synthesis engine in this
//! workspace (Manthan3 and both baselines).

use crate::{Dqbf, HenkinVector};
use manthan3_cnf::{Assignment, CnfBuilder, Lit, Var};
use manthan3_sat::{SolveResult, Solver};
use std::collections::{BTreeMap, HashMap};

/// A witness that a candidate vector violates the specification: an
/// assignment of the universal variables together with the candidate
/// functions' outputs under which `ϕ` evaluates to false.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterExample {
    /// Full assignment found by the SAT solver (universal variables are the
    /// meaningful part).
    pub assignment: Assignment,
    /// Outputs of the candidate functions (`δ[Y']` in the paper).
    pub y_outputs: BTreeMap<Var, bool>,
}

/// Result of [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The vector is a valid Henkin function vector.
    Valid,
    /// Some existential variable has no function.
    MissingFunction(Var),
    /// A function mentions a variable outside its Henkin dependency set.
    DependencyViolation {
        /// The existential variable whose function is illegal.
        existential: Var,
        /// The variable outside the dependency set.
        offending: Var,
    },
    /// The error formula is satisfiable: the vector does not realize the
    /// specification.
    Falsified(CounterExample),
}

impl CheckOutcome {
    /// Returns `true` for [`CheckOutcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, CheckOutcome::Valid)
    }
}

/// Encodes `¬ϕ(vars)` into `builder`: one indicator per clause that implies
/// the clause is falsified, plus a disjunction of all indicators. Returns the
/// indicator literals.
pub fn encode_negated_matrix(dqbf: &Dqbf, builder: &mut CnfBuilder) -> Vec<Lit> {
    let mut indicators = Vec::with_capacity(dqbf.num_clauses());
    for clause in dqbf.matrix().clauses() {
        let n = builder.fresh_lit();
        for &lit in clause {
            builder.add_clause([!n, !lit]);
        }
        indicators.push(n);
    }
    builder.add_clause(indicators.clone());
    indicators
}

/// Checks whether `vector` is a Henkin function vector for `dqbf`
/// (Lemma 1 of the paper).
///
/// The check is fully independent of the synthesis engines: it re-encodes the
/// functions into CNF and queries a fresh SAT solver.
///
/// # Examples
///
/// See the [crate-level documentation](crate).
pub fn check(dqbf: &Dqbf, vector: &HenkinVector) -> CheckOutcome {
    // (a) every output must have a function …
    for &y in dqbf.existentials() {
        if vector.get(y).is_none() {
            return CheckOutcome::MissingFunction(y);
        }
    }
    // … that respects its dependency set.
    if let Some((existential, offending)) = vector.dependency_violation(dqbf) {
        return CheckOutcome::DependencyViolation {
            existential,
            offending,
        };
    }
    // (b) E(X,Y) = ¬ϕ(X,Y) ∧ (Y ↔ f(X)) must be UNSAT. Because the functions
    // only mention universal variables, the original Y variables can play the
    // role of Y'.
    let mut builder = CnfBuilder::new(dqbf.num_vars());
    encode_negated_matrix(dqbf, &mut builder);
    let input_map: HashMap<usize, Lit> = dqbf
        .universals()
        .iter()
        .map(|&x| (x.index(), x.positive()))
        .collect();
    for &y in dqbf.existentials() {
        let f = vector.get(y).expect("checked above");
        let out = vector.aig().encode_cnf(f, &mut builder, &input_map);
        builder.assert_equiv(y.positive(), out);
    }
    let mut solver = Solver::new();
    solver.add_cnf(builder.cnf());
    match solver.solve() {
        SolveResult::Unsat => CheckOutcome::Valid,
        SolveResult::Unknown => unreachable!("certificate solver has no budget"),
        SolveResult::Sat => {
            let assignment = solver.model();
            let y_outputs = dqbf
                .existentials()
                .iter()
                .map(|&y| (y, assignment.get(y).unwrap_or(false)))
                .collect();
            CheckOutcome::Falsified(CounterExample {
                assignment,
                y_outputs,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> Var {
        Var::new(i)
    }
    fn y(i: u32) -> Var {
        Var::new(3 + i)
    }

    /// The hand-derived Henkin vector for the paper example:
    /// f1 = ¬x1, f2 = ¬x2 ∨ ¬x1, f3 = x2 ∨ x3.
    fn paper_vector() -> HenkinVector {
        let mut v = HenkinVector::new();
        let in_x1 = v.aig_mut().input(x(0).index());
        let in_x2 = v.aig_mut().input(x(1).index());
        let in_x3 = v.aig_mut().input(x(2).index());
        v.set(y(0), !in_x1);
        let f2 = v.aig_mut().or(!in_x2, !in_x1);
        v.set(y(1), f2);
        let f3 = v.aig_mut().or(in_x2, in_x3);
        v.set(y(2), f3);
        v
    }

    #[test]
    fn accepts_a_correct_vector() {
        let dqbf = Dqbf::paper_example();
        assert!(check(&dqbf, &paper_vector()).is_valid());
    }

    #[test]
    fn rejects_an_incorrect_vector() {
        let dqbf = Dqbf::paper_example();
        let mut v = paper_vector();
        // Break f3: make it constant false; the clause y3 ↔ (x2 ∨ x3) fails.
        v.set(y(2), v.aig().constant(false));
        match check(&dqbf, &v) {
            CheckOutcome::Falsified(cex) => {
                // The counterexample must indeed falsify the matrix when the
                // candidate outputs are used for Y.
                let mut full = cex.assignment.clone();
                for (&yv, &val) in &cex.y_outputs {
                    full.set(yv, val);
                }
                assert!(!dqbf.eval_matrix(&full));
            }
            other => panic!("expected Falsified, got {other:?}"),
        }
    }

    #[test]
    fn reports_missing_functions() {
        let dqbf = Dqbf::paper_example();
        let mut v = paper_vector();
        let mut partial = HenkinVector::new();
        let in_x1 = partial.aig_mut().input(x(0).index());
        partial.set(y(0), !in_x1);
        assert_eq!(check(&dqbf, &partial), CheckOutcome::MissingFunction(y(1)));
        let _ = &mut v;
    }

    #[test]
    fn reports_dependency_violations() {
        let dqbf = Dqbf::paper_example();
        let mut v = paper_vector();
        // y1 may only depend on x1; force a function over x3.
        let in_x3 = v.aig_mut().input(x(2).index());
        v.set(y(0), in_x3);
        assert_eq!(
            check(&dqbf, &v),
            CheckOutcome::DependencyViolation {
                existential: y(0),
                offending: x(2)
            }
        );
    }

    #[test]
    fn xor_example_certificate() {
        let dqbf = Dqbf::xor_limitation_example();
        // f1(x1,x2) = x2, f2(x2,x3) = x2 is a valid Henkin vector.
        let mut v = HenkinVector::new();
        let in_x2 = v.aig_mut().input(1);
        v.set(Var::new(3), in_x2);
        v.set(Var::new(4), in_x2);
        assert!(check(&dqbf, &v).is_valid());
        // f1 = x2, f2 = ¬x2 is not.
        let mut bad = HenkinVector::new();
        let in_x2 = bad.aig_mut().input(1);
        bad.set(Var::new(3), in_x2);
        bad.set(Var::new(4), !in_x2);
        assert!(!check(&dqbf, &bad).is_valid());
    }
}
