use manthan3_cnf::{Assignment, Clause, Cnf, Lit, Var};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// A structural error detected by [`Dqbf::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DqbfError {
    /// A variable was quantified twice.
    DuplicateVariable(Var),
    /// A dependency refers to a variable that is not universally quantified.
    UnknownDependency {
        /// The existential variable whose dependency set is malformed.
        existential: Var,
        /// The offending dependency.
        dependency: Var,
    },
    /// The matrix mentions a variable that is not quantified.
    UnquantifiedVariable(Var),
    /// An existential lists itself in its own Henkin dependency set.
    SelfDependency(Var),
}

impl fmt::Display for DqbfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DqbfError::DuplicateVariable(v) => write!(f, "variable {v} is quantified twice"),
            DqbfError::UnknownDependency {
                existential,
                dependency,
            } => write!(
                f,
                "dependency {dependency} of existential {existential} is not universal"
            ),
            DqbfError::UnquantifiedVariable(v) => {
                write!(f, "matrix variable {v} is not quantified")
            }
            DqbfError::SelfDependency(v) => {
                write!(f, "existential {v} depends on itself")
            }
        }
    }
}

impl Error for DqbfError {}

/// A Dependency Quantified Boolean Formula
/// `∀X ∃^{H1}y1 … ∃^{Hm}ym. ϕ(X,Y)` with a CNF matrix.
///
/// See the [crate-level documentation](crate) for background and an example.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dqbf {
    universals: Vec<Var>,
    existentials: Vec<Var>,
    dependencies: BTreeMap<Var, BTreeSet<Var>>,
    matrix: Cnf,
}

impl Dqbf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Dqbf::default()
    }

    /// Declares a universally quantified variable.
    pub fn add_universal(&mut self, var: Var) {
        self.universals.push(var);
        self.matrix.ensure_vars(var.index() + 1);
    }

    /// Declares an existentially quantified variable with the given Henkin
    /// dependency set.
    pub fn add_existential<I>(&mut self, var: Var, dependencies: I)
    where
        I: IntoIterator<Item = Var>,
    {
        self.existentials.push(var);
        self.dependencies
            .insert(var, dependencies.into_iter().collect());
        self.matrix.ensure_vars(var.index() + 1);
    }

    /// Adds a clause to the matrix.
    pub fn add_clause<C>(&mut self, clause: C)
    where
        C: IntoIterator<Item = Lit>,
    {
        self.matrix.add_clause(clause);
    }

    /// The universally quantified variables, in declaration order.
    pub fn universals(&self) -> &[Var] {
        &self.universals
    }

    /// The existentially quantified variables, in declaration order.
    pub fn existentials(&self) -> &[Var] {
        &self.existentials
    }

    /// The Henkin dependency set of `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y` is not an existential variable of this formula.
    pub fn dependencies(&self, y: Var) -> &BTreeSet<Var> {
        self.dependencies
            .get(&y)
            .unwrap_or_else(|| panic!("{y:?} is not an existential variable"))
    }

    /// Returns `true` if `var` is existentially quantified.
    pub fn is_existential(&self, var: Var) -> bool {
        self.dependencies.contains_key(&var)
    }

    /// Returns `true` if `var` is universally quantified.
    pub fn is_universal(&self, var: Var) -> bool {
        self.universals.contains(&var)
    }

    /// The CNF matrix ϕ(X,Y).
    pub fn matrix(&self) -> &Cnf {
        &self.matrix
    }

    /// Mutable access to the matrix.
    pub fn matrix_mut(&mut self) -> &mut Cnf {
        &mut self.matrix
    }

    /// Number of variables declared by the matrix (including any auxiliary
    /// Tseitin variables the matrix may contain).
    pub fn num_vars(&self) -> usize {
        self.matrix.num_vars()
    }

    /// Number of clauses in the matrix.
    pub fn num_clauses(&self) -> usize {
        self.matrix.num_clauses()
    }

    /// Returns `true` if every dependency set equals the full set of
    /// universal variables, i.e. the formula is an ordinary 2-QBF
    /// (`∀X ∃Y`) and Henkin synthesis degenerates to Skolem synthesis.
    pub fn is_skolem(&self) -> bool {
        let all: BTreeSet<Var> = self.universals.iter().copied().collect();
        self.existentials
            .iter()
            .all(|y| self.dependencies[y] == all)
    }

    /// Checks structural well-formedness.
    ///
    /// # Errors
    ///
    /// Returns a [`DqbfError`] describing the first problem found: duplicate
    /// quantification, an existential depending on itself, a dependency that
    /// is not universal, or a matrix variable that is not quantified.
    pub fn validate(&self) -> Result<(), DqbfError> {
        let mut seen: BTreeSet<Var> = BTreeSet::new();
        for &v in self.universals.iter().chain(self.existentials.iter()) {
            if !seen.insert(v) {
                return Err(DqbfError::DuplicateVariable(v));
            }
        }
        let universal_set: BTreeSet<Var> = self.universals.iter().copied().collect();
        for (&y, deps) in &self.dependencies {
            for &d in deps {
                if d == y {
                    return Err(DqbfError::SelfDependency(y));
                }
                if !universal_set.contains(&d) {
                    return Err(DqbfError::UnknownDependency {
                        existential: y,
                        dependency: d,
                    });
                }
            }
        }
        for clause in self.matrix.clauses() {
            for lit in clause {
                if !seen.contains(&lit.var()) {
                    return Err(DqbfError::UnquantifiedVariable(lit.var()));
                }
            }
        }
        Ok(())
    }

    /// Evaluates the matrix under a total assignment.
    pub fn eval_matrix(&self, assignment: &Assignment) -> bool {
        self.matrix.eval(assignment)
    }

    /// Returns the clauses of the matrix restricted to literals over
    /// existential variables (used by preprocessing heuristics).
    pub fn existential_literals(&self) -> Vec<Lit> {
        let mut out = Vec::new();
        for clause in self.matrix.clauses() {
            for &lit in clause {
                if self.is_existential(lit.var()) {
                    out.push(lit);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// A short human-readable summary (used in logs and benchmark output).
    pub fn summary(&self) -> String {
        format!(
            "DQBF: {} universals, {} existentials, {} clauses",
            self.universals.len(),
            self.existentials.len(),
            self.matrix.num_clauses()
        )
    }

    /// Builds the paper's running example (Example 1, Section 5):
    /// `∀x1x2x3 ∃^{x1}y1 ∃^{x1,x2}y2 ∃^{x2,x3}y3.
    ///  (x1 ∨ y1) ∧ (y2 ↔ (y1 ∨ ¬x2)) ∧ (y3 ↔ (x2 ∨ x3))`.
    ///
    /// Variables are numbered `x1,x2,x3,y1,y2,y3 = 0..6`.
    pub fn paper_example() -> Self {
        let x = |i: u32| Var::new(i);
        let y = |i: u32| Var::new(3 + i);
        let mut dqbf = Dqbf::new();
        for i in 0..3 {
            dqbf.add_universal(x(i));
        }
        dqbf.add_existential(y(0), [x(0)]);
        dqbf.add_existential(y(1), [x(0), x(1)]);
        dqbf.add_existential(y(2), [x(1), x(2)]);
        // (x1 ∨ y1)
        dqbf.add_clause([x(0).positive(), y(0).positive()]);
        // y2 ↔ (y1 ∨ ¬x2)
        dqbf.add_clause([y(1).negative(), y(0).positive(), x(1).negative()]);
        dqbf.add_clause([y(1).positive(), y(0).negative()]);
        dqbf.add_clause([y(1).positive(), x(1).positive()]);
        // y3 ↔ (x2 ∨ x3)
        dqbf.add_clause([y(2).negative(), x(1).positive(), x(2).positive()]);
        dqbf.add_clause([y(2).positive(), x(1).negative()]);
        dqbf.add_clause([y(2).positive(), x(2).negative()]);
        dqbf
    }

    /// Builds the paper's incompleteness example (Section 5, "Limitations"):
    /// `∀x1x2x3 ∃^{x1,x2}y1 ∃^{x2,x3}y2. ¬(y1 ⊕ y2)`.
    ///
    /// The formula is true (both functions can be `x2`), but Manthan3's
    /// repair can fail on it.
    pub fn xor_limitation_example() -> Self {
        let x = |i: u32| Var::new(i);
        let y = |i: u32| Var::new(3 + i);
        let mut dqbf = Dqbf::new();
        for i in 0..3 {
            dqbf.add_universal(x(i));
        }
        dqbf.add_existential(y(0), [x(0), x(1)]);
        dqbf.add_existential(y(1), [x(1), x(2)]);
        // ¬(y1 ⊕ y2)  ≡  (y1 ∨ ¬y2) ∧ (¬y1 ∨ y2)
        dqbf.add_clause([y(0).positive(), y(1).negative()]);
        dqbf.add_clause([y(0).negative(), y(1).positive()]);
        dqbf
    }

    /// Returns the clauses of the matrix as owned values (convenience for
    /// engines that rewrite the matrix).
    pub fn clauses(&self) -> &[Clause] {
        self.matrix.clauses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_prefix() {
        let x = Var::new(0);
        let y = Var::new(1);
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x]);
        dqbf.add_clause([x.positive(), y.positive()]);
        assert_eq!(dqbf.universals(), &[x]);
        assert_eq!(dqbf.existentials(), &[y]);
        assert!(dqbf.dependencies(y).contains(&x));
        assert!(dqbf.is_existential(y));
        assert!(dqbf.is_universal(x));
        assert!(dqbf.is_skolem());
        assert!(dqbf.validate().is_ok());
        assert_eq!(dqbf.num_clauses(), 1);
    }

    #[test]
    fn skolem_detection_is_strict() {
        let x0 = Var::new(0);
        let x1 = Var::new(1);
        let y = Var::new(2);
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x0);
        dqbf.add_universal(x1);
        dqbf.add_existential(y, [x0]);
        assert!(!dqbf.is_skolem());
    }

    #[test]
    fn validation_catches_errors() {
        let x = Var::new(0);
        let y = Var::new(1);
        let z = Var::new(2);

        let mut duplicate = Dqbf::new();
        duplicate.add_universal(x);
        duplicate.add_existential(x, []);
        assert_eq!(duplicate.validate(), Err(DqbfError::DuplicateVariable(x)));

        let mut bad_dep = Dqbf::new();
        bad_dep.add_universal(x);
        bad_dep.add_existential(y, [z]);
        assert!(matches!(
            bad_dep.validate(),
            Err(DqbfError::UnknownDependency { .. })
        ));

        let mut unquantified = Dqbf::new();
        unquantified.add_universal(x);
        unquantified.add_clause([z.positive()]);
        assert_eq!(
            unquantified.validate(),
            Err(DqbfError::UnquantifiedVariable(z))
        );
    }

    #[test]
    fn validation_rejects_self_dependency() {
        // Regression: an existential listing itself in its own dependency
        // set used to surface as UnknownDependency (or, worse, slip through
        // if the variable was also declared universal elsewhere); it must be
        // rejected with the dedicated variant.
        let x = Var::new(0);
        let y = Var::new(1);
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x, y]);
        assert_eq!(dqbf.validate(), Err(DqbfError::SelfDependency(y)));
        assert!(DqbfError::SelfDependency(y)
            .to_string()
            .contains("depends on itself"));
    }

    #[test]
    fn paper_example_is_well_formed() {
        let dqbf = Dqbf::paper_example();
        assert!(dqbf.validate().is_ok());
        assert_eq!(dqbf.universals().len(), 3);
        assert_eq!(dqbf.existentials().len(), 3);
        assert_eq!(dqbf.num_clauses(), 7);
        assert!(!dqbf.is_skolem());
        // Check the matrix against a direct evaluation of the specification.
        for bits in 0..64u32 {
            let a = Assignment::from_values((0..6).map(|i| bits >> i & 1 == 1).collect());
            let (x1, x2, x3) = (
                a.value(Var::new(0)),
                a.value(Var::new(1)),
                a.value(Var::new(2)),
            );
            let (y1, y2, y3) = (
                a.value(Var::new(3)),
                a.value(Var::new(4)),
                a.value(Var::new(5)),
            );
            let spec = (x1 || y1) && (y2 == (y1 || !x2)) && (y3 == (x2 || x3));
            assert_eq!(dqbf.eval_matrix(&a), spec, "assignment {bits:06b}");
        }
    }

    #[test]
    fn xor_example_is_well_formed() {
        let dqbf = Dqbf::xor_limitation_example();
        assert!(dqbf.validate().is_ok());
        for bits in 0..32u32 {
            let a = Assignment::from_values((0..5).map(|i| bits >> i & 1 == 1).collect());
            let (y1, y2) = (a.value(Var::new(3)), a.value(Var::new(4)));
            assert_eq!(dqbf.eval_matrix(&a), y1 == y2);
        }
    }

    #[test]
    fn existential_literals_are_collected() {
        let dqbf = Dqbf::paper_example();
        let lits = dqbf.existential_literals();
        assert!(lits.contains(&Var::new(3).positive()));
        assert!(lits.iter().all(|l| dqbf.is_existential(l.var())));
    }

    #[test]
    fn summary_mentions_sizes() {
        let dqbf = Dqbf::paper_example();
        let s = dqbf.summary();
        assert!(s.contains("3 universals"));
        assert!(s.contains("3 existentials"));
    }
}
