//! DQBF formulas, Henkin functions and certificate checking.
//!
//! A *Dependency Quantified Boolean Formula* (DQBF) has the form
//! `∀x1…xn ∃^{H1}y1 … ∃^{Hm}ym. ϕ(X,Y)` where every existential variable
//! `y_i` is annotated with a *Henkin dependency set* `H_i ⊆ X`. The formula is
//! **true** iff there exist functions `f_i : {0,1}^{|H_i|} → {0,1}` such that
//! substituting each `y_i` by `f_i(H_i)` makes `ϕ` a tautology; such an
//! `f = ⟨f_1,…,f_m⟩` is a *Henkin function vector*, and computing one is the
//! **Henkin synthesis** problem solved by Manthan3.
//!
//! This crate provides:
//!
//! * [`Dqbf`] — the formula type (prefix + CNF matrix),
//! * [`parse_dqdimacs`] / [`write_dqdimacs`] — the DQDIMACS exchange format,
//! * [`HenkinVector`] — candidate/final function vectors stored as AIGs,
//! * [`verify`] — the SAT-based certificate check
//!   `¬ϕ(X,Y') ∧ (Y' ↔ f)` of Lemma 1 in the paper,
//! * [`semantics`] — brute-force truth evaluation for small instances
//!   (used as an independent test oracle),
//! * [`unique`] — Padoa-style unique-definition extraction (the role played
//!   by the UNIQUE tool in the paper's implementation),
//! * [`decompose`] — dependency-driven partitioning of the outputs into
//!   independent clusters for compositional synthesis.
//!
//! # Examples
//!
//! ```
//! use manthan3_cnf::{Lit, Var};
//! use manthan3_dqbf::{Dqbf, HenkinVector, verify::check};
//!
//! // ∀x1 ∃^{x1}y1. (x1 ∨ y1): y1 := ¬x1 is a Henkin function.
//! let x1 = Var::new(0);
//! let y1 = Var::new(1);
//! let mut dqbf = Dqbf::new();
//! dqbf.add_universal(x1);
//! dqbf.add_existential(y1, [x1]);
//! dqbf.add_clause([x1.positive(), y1.positive()]);
//!
//! let mut vector = HenkinVector::new();
//! let input = vector.aig_mut().input(x1.index());
//! vector.set(y1, !input);
//! assert!(check(&dqbf, &vector).is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
mod formula;
mod henkin;
mod parser;
pub mod semantics;
pub mod unique;
pub mod verify;

pub use formula::{Dqbf, DqbfError};
pub use henkin::HenkinVector;
pub use parser::{parse_dqdimacs, write_dqdimacs, ParseDqdimacsError};
