//! Dependency-driven decomposition of a DQBF into output clusters.
//!
//! Following the compositional-synthesis line of work (Finkbeiner & Passing;
//! "On Dependent Variables in Reactive Synthesis"), the existential variables
//! are partitioned into *clusters* such that the matrix never couples two
//! clusters: two Y variables land in the same cluster iff they co-occur in a
//! matrix clause, directly or transitively through other Y variables. Each
//! cluster then induces a strictly smaller sub-DQBF (its projected matrix
//! plus the pure-X clauses, over the original variable numbering) that can be
//! synthesized independently — and concurrently — of the others.
//!
//! Definition chains need no extra edges here: Manthan3's matrices are CNF,
//! so a variable defined in terms of another (in the [`crate::unique`] Padoa
//! sense) is defined *through its defining clauses*, and those clauses
//! already put the two variables in the same clause-co-occurrence component.
//! The Padoa analysis is still run (budgeted, optional) to annotate each
//! cluster with its uniquely-defined outputs, which downstream engines can
//! use to pick synthesis order or skip learning.
//!
//! A `max_cluster_size` cap may split a natural cluster into smaller pieces;
//! the clauses that then span two pieces are reported as *coupling clauses*.
//! They are excluded from every per-cluster projection (each projection stays
//! a clause subset of the whole matrix, so a cluster-level "unrealizable"
//! verdict is sound for the whole formula) and must instead be discharged by
//! a composition-time verify over the recombined vector, with a
//! coupled-residue repair merging the offending clusters when it fails.

use crate::{unique, Dqbf};
use manthan3_cnf::Var;
use manthan3_sat::SolverConfig;
use std::collections::{BTreeMap, BTreeSet};

/// Options controlling [`decompose`].
#[derive(Debug, Clone, Default)]
pub struct DecomposeOptions {
    /// Upper bound on the number of outputs per cluster. Natural clusters
    /// larger than this are split (in BFS order over the Y-incidence graph,
    /// so tightly coupled outputs stay together), which is the only way
    /// coupling clauses can arise. `None` keeps every natural cluster whole.
    pub max_cluster_size: Option<usize>,
    /// When set, each output is probed with Padoa's method (under this
    /// conflict-budgeted solver configuration) and uniquely defined outputs
    /// are recorded in [`Cluster::defined_outputs`]. Probes that give up
    /// within the budget conservatively report "not defined".
    pub definition_probe: Option<SolverConfig>,
}

impl DecomposeOptions {
    /// Enables the Padoa definedness probe with the given conflict budget.
    pub fn with_definition_probe(mut self, max_conflicts: u64) -> Self {
        self.definition_probe = Some(SolverConfig::budgeted(max_conflicts));
        self
    }

    /// Caps the number of outputs per cluster.
    pub fn with_max_cluster_size(mut self, size: usize) -> Self {
        self.max_cluster_size = Some(size.max(1));
        self
    }
}

/// One output cluster of a [`Decomposition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// The existential variables of this cluster, in ascending order.
    pub outputs: Vec<Var>,
    /// The union of the Henkin dependency sets of [`Cluster::outputs`] —
    /// the universals the cluster's sub-DQBF may read.
    pub henkin: BTreeSet<Var>,
    /// Indices (into the parent matrix) of the clauses whose existential
    /// support is non-empty and contained in this cluster.
    pub clause_indices: Vec<usize>,
    /// Outputs the Padoa probe proved uniquely defined by their dependency
    /// set (empty when the probe was not requested).
    pub defined_outputs: Vec<Var>,
}

/// A partition of a DQBF's outputs into clusters, with the clause ownership
/// map needed to build per-cluster subproblems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// The clusters, ordered by their smallest output variable.
    pub clusters: Vec<Cluster>,
    /// Indices of clauses whose existential support spans more than one
    /// cluster. Empty unless `max_cluster_size` split a natural cluster.
    pub coupling_clauses: Vec<usize>,
    /// Indices of clauses with no existential variables at all. These
    /// constrain the universals alone, so every subproblem includes them
    /// (if they are unsatisfiable the whole formula is, and any single
    /// cluster's engine may discover that).
    pub shared_clauses: Vec<usize>,
}

impl Decomposition {
    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` when the decomposition is a single cluster with no
    /// coupling clauses — i.e. compositional synthesis would degenerate to
    /// the monolithic engine.
    pub fn is_monolithic(&self) -> bool {
        self.clusters.len() <= 1 && self.coupling_clauses.is_empty()
    }

    /// The index of the cluster owning existential `y`, if any.
    pub fn owner(&self, y: Var) -> Option<usize> {
        self.clusters
            .iter()
            .position(|c| c.outputs.binary_search(&y).is_ok())
    }

    /// Builds the sub-DQBF of cluster `idx`: all universals, the cluster's
    /// existentials with their original Henkin sets, and the cluster-owned
    /// plus shared clauses — everything over the parent variable numbering,
    /// so per-cluster Skolem functions compose without renaming.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn subproblem(&self, dqbf: &Dqbf, idx: usize) -> Dqbf {
        self.build(dqbf, &[idx])
    }

    /// Builds the merged sub-DQBF of several clusters, additionally pulling
    /// in every coupling clause whose existential support falls inside the
    /// union — the coupled residue a composition-time repair discharges.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn merged_subproblem(&self, dqbf: &Dqbf, indices: &[usize]) -> Dqbf {
        self.build(dqbf, indices)
    }

    fn build(&self, dqbf: &Dqbf, indices: &[usize]) -> Dqbf {
        let mut sub = Dqbf::new();
        for &x in dqbf.universals() {
            sub.add_universal(x);
        }
        let mut outputs: BTreeSet<Var> = BTreeSet::new();
        for &i in indices {
            outputs.extend(self.clusters[i].outputs.iter().copied());
        }
        for &y in dqbf.existentials() {
            if outputs.contains(&y) {
                sub.add_existential(y, dqbf.dependencies(y).iter().copied());
            }
        }
        let clauses = dqbf.matrix().clauses();
        let mut picked: Vec<usize> = self.shared_clauses.clone();
        for &i in indices {
            picked.extend(self.clusters[i].clause_indices.iter().copied());
        }
        for &ci in &self.coupling_clauses {
            let inside = clauses[ci]
                .iter()
                .all(|l| !dqbf.is_existential(l.var()) || outputs.contains(&l.var()));
            if inside {
                picked.push(ci);
            }
        }
        picked.sort_unstable();
        picked.dedup();
        for ci in picked {
            sub.add_clause(clauses[ci].iter().copied());
        }
        // Keep the parent numbering even if the picked clauses do not
        // mention the highest parent variable.
        sub.matrix_mut().ensure_vars(dqbf.num_vars());
        sub
    }
}

/// Partitions the outputs of `dqbf` into clusters (see the module docs for
/// the exact clustering relation) and reports the clause ownership map.
pub fn decompose(dqbf: &Dqbf, options: &DecomposeOptions) -> Decomposition {
    let ys: Vec<Var> = dqbf.existentials().to_vec();
    let index_of: BTreeMap<Var, usize> = ys.iter().enumerate().map(|(i, &y)| (y, i)).collect();

    // Union-find over clause co-occurrence of existential variables.
    let mut uf = UnionFind::new(ys.len());
    let clause_supports: Vec<Vec<usize>> = dqbf
        .matrix()
        .clauses()
        .iter()
        .map(|clause| {
            let mut support: Vec<usize> = clause
                .iter()
                .filter_map(|l| index_of.get(&l.var()).copied())
                .collect();
            support.sort_unstable();
            support.dedup();
            support
        })
        .collect();
    for support in &clause_supports {
        for w in support.windows(2) {
            uf.union(w[0], w[1]);
        }
    }

    // Natural clusters, deterministically ordered by smallest member.
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..ys.len() {
        groups.entry(uf.find(i)).or_default().push(i);
    }
    let mut natural: Vec<Vec<usize>> = groups.into_values().collect();
    natural.sort_by_key(|g| g[0]);

    // Optional split of oversized clusters, BFS order over Y-incidence so
    // tightly coupled outputs stay in the same piece.
    let mut parts: Vec<Vec<usize>> = Vec::new();
    match options.max_cluster_size {
        Some(cap) if natural.iter().any(|g| g.len() > cap) => {
            let adjacency = incidence_adjacency(ys.len(), &clause_supports);
            for group in natural {
                if group.len() <= cap {
                    parts.push(group);
                } else {
                    parts.extend(split_group(&group, &adjacency, cap));
                }
            }
        }
        _ => parts = natural,
    }

    // Assign every clause: no Y support → shared, support inside one part →
    // owned, otherwise coupling.
    let mut part_of = vec![usize::MAX; ys.len()];
    for (p, part) in parts.iter().enumerate() {
        for &i in part {
            part_of[i] = p;
        }
    }
    let mut shared_clauses = Vec::new();
    let mut coupling_clauses = Vec::new();
    let mut owned: Vec<Vec<usize>> = vec![Vec::new(); parts.len()];
    for (ci, support) in clause_supports.iter().enumerate() {
        match support.split_first() {
            None => shared_clauses.push(ci),
            Some((&first, rest)) => {
                let p = part_of[first];
                if rest.iter().all(|&i| part_of[i] == p) {
                    owned[p].push(ci);
                } else {
                    coupling_clauses.push(ci);
                }
            }
        }
    }

    let clusters: Vec<Cluster> = parts
        .into_iter()
        .zip(owned)
        .map(|(part, clause_indices)| {
            let outputs: Vec<Var> = part.iter().map(|&i| ys[i]).collect();
            let henkin: BTreeSet<Var> = outputs
                .iter()
                .flat_map(|&y| dqbf.dependencies(y).iter().copied())
                .collect();
            let defined_outputs = match &options.definition_probe {
                Some(config) => outputs
                    .iter()
                    .copied()
                    .filter(|&y| unique::is_uniquely_defined_with(dqbf, y, config))
                    .collect(),
                None => Vec::new(),
            };
            Cluster {
                outputs,
                henkin,
                clause_indices,
                defined_outputs,
            }
        })
        .collect();

    Decomposition {
        clusters,
        coupling_clauses,
        shared_clauses,
    }
}

/// Adjacency lists of the Y-incidence graph (edge iff clause co-occurrence).
fn incidence_adjacency(n: usize, clause_supports: &[Vec<usize>]) -> Vec<BTreeSet<usize>> {
    let mut adjacency = vec![BTreeSet::new(); n];
    for support in clause_supports {
        for &a in support {
            for &b in support {
                if a != b {
                    adjacency[a].insert(b);
                }
            }
        }
    }
    adjacency
}

/// Splits one natural cluster into pieces of at most `cap` members by
/// filling chunks in BFS order from the smallest member.
fn split_group(group: &[usize], adjacency: &[BTreeSet<usize>], cap: usize) -> Vec<Vec<usize>> {
    let members: BTreeSet<usize> = group.iter().copied().collect();
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(group.len());
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &start in group {
        if !visited.insert(start) {
            continue;
        }
        queue.push_back(start);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &j in &adjacency[i] {
                if members.contains(&j) && visited.insert(j) {
                    queue.push_back(j);
                }
            }
        }
    }
    order
        .chunks(cap)
        .map(|chunk| {
            let mut part = chunk.to_vec();
            part.sort_unstable();
            part
        })
        .collect()
}

/// A plain union-find with path halving and union by size.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Var;

    /// Two independent copies of the "y ↔ x" gate plus a pure-X clause.
    fn two_block_example() -> Dqbf {
        let (x1, x2) = (Var::new(0), Var::new(1));
        let (y1, y2) = (Var::new(2), Var::new(3));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y1, [x1]);
        dqbf.add_existential(y2, [x2]);
        dqbf.add_clause([y1.negative(), x1.positive()]);
        dqbf.add_clause([y1.positive(), x1.negative()]);
        dqbf.add_clause([y2.negative(), x2.positive()]);
        dqbf.add_clause([y2.positive(), x2.negative()]);
        dqbf.add_clause([x1.positive(), x2.positive(), x1.negative()]); // pure-X
        dqbf
    }

    #[test]
    fn independent_blocks_split_into_clusters() {
        let dqbf = two_block_example();
        let d = decompose(&dqbf, &DecomposeOptions::default());
        assert_eq!(d.num_clusters(), 2);
        assert!(!d.is_monolithic());
        assert!(d.coupling_clauses.is_empty());
        assert_eq!(d.shared_clauses, vec![4]);
        assert_eq!(d.clusters[0].outputs, vec![Var::new(2)]);
        assert_eq!(d.clusters[1].outputs, vec![Var::new(3)]);
        assert_eq!(d.clusters[0].clause_indices, vec![0, 1]);
        assert_eq!(d.clusters[1].clause_indices, vec![2, 3]);
        assert_eq!(d.owner(Var::new(2)), Some(0));
        assert_eq!(d.owner(Var::new(3)), Some(1));
        assert_eq!(d.owner(Var::new(0)), None);
        assert_eq!(
            d.clusters[0].henkin,
            [Var::new(0)].into_iter().collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn clause_co_occurrence_is_transitive() {
        // y1–y2 share a clause, y2–y3 share a clause: one cluster of three.
        let x = Var::new(0);
        let (y1, y2, y3) = (Var::new(1), Var::new(2), Var::new(3));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y1, [x]);
        dqbf.add_existential(y2, [x]);
        dqbf.add_existential(y3, [x]);
        dqbf.add_clause([y1.positive(), y2.positive()]);
        dqbf.add_clause([y2.negative(), y3.positive()]);
        let d = decompose(&dqbf, &DecomposeOptions::default());
        assert_eq!(d.num_clusters(), 1);
        assert_eq!(
            d.clusters[0].outputs,
            vec![Var::new(1), Var::new(2), Var::new(3)]
        );
        assert!(d.coupling_clauses.is_empty());
    }

    #[test]
    fn paper_example_decomposes_along_its_gate_structure() {
        // y2's defining clauses mention y1 (one cluster), while y3 is
        // defined purely from x2, x3 and shares no clause with the others.
        let dqbf = Dqbf::paper_example();
        let d = decompose(&dqbf, &DecomposeOptions::default());
        assert_eq!(d.num_clusters(), 2);
        assert_eq!(d.clusters[0].outputs, vec![Var::new(3), Var::new(4)]);
        assert_eq!(d.clusters[1].outputs, vec![Var::new(5)]);
        assert!(d.coupling_clauses.is_empty());
    }

    #[test]
    fn max_cluster_size_splits_and_reports_coupling() {
        let x = Var::new(0);
        let (y1, y2) = (Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y1, [x]);
        dqbf.add_existential(y2, [x]);
        dqbf.add_clause([y1.positive(), x.positive()]);
        dqbf.add_clause([y1.positive(), y2.positive()]); // becomes coupling
        dqbf.add_clause([y2.positive(), x.negative()]);
        let opts = DecomposeOptions::default().with_max_cluster_size(1);
        let d = decompose(&dqbf, &opts);
        assert_eq!(d.num_clusters(), 2);
        assert!(!d.is_monolithic());
        assert_eq!(d.coupling_clauses, vec![1]);
        assert_eq!(d.clusters[0].clause_indices, vec![0]);
        assert_eq!(d.clusters[1].clause_indices, vec![2]);
    }

    #[test]
    fn subproblems_keep_parent_numbering_and_validate() {
        let dqbf = two_block_example();
        let d = decompose(&dqbf, &DecomposeOptions::default());
        for i in 0..d.num_clusters() {
            let sub = d.subproblem(&dqbf, i);
            assert!(sub.validate().is_ok());
            assert_eq!(sub.num_vars(), dqbf.num_vars());
            assert_eq!(sub.universals(), dqbf.universals());
            assert_eq!(sub.existentials(), &d.clusters[i].outputs[..]);
            // Owned + shared clauses, nothing else.
            assert_eq!(
                sub.num_clauses(),
                d.clusters[i].clause_indices.len() + d.shared_clauses.len()
            );
            // Original Henkin sets survive.
            for &y in sub.existentials() {
                assert_eq!(sub.dependencies(y), dqbf.dependencies(y));
            }
        }
    }

    #[test]
    fn merged_subproblem_pulls_in_internal_coupling() {
        let x = Var::new(0);
        let (y1, y2) = (Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y1, [x]);
        dqbf.add_existential(y2, [x]);
        dqbf.add_clause([y1.positive(), x.positive()]);
        dqbf.add_clause([y1.positive(), y2.positive()]);
        dqbf.add_clause([y2.positive(), x.negative()]);
        let opts = DecomposeOptions::default().with_max_cluster_size(1);
        let d = decompose(&dqbf, &opts);
        // Each piece alone misses the coupling clause…
        assert_eq!(d.subproblem(&dqbf, 0).num_clauses(), 1);
        assert_eq!(d.subproblem(&dqbf, 1).num_clauses(), 1);
        // …the merged subproblem restores it.
        let merged = d.merged_subproblem(&dqbf, &[0, 1]);
        assert_eq!(merged.num_clauses(), 3);
        assert!(merged.validate().is_ok());
        assert_eq!(merged.existentials(), dqbf.existentials());
    }

    #[test]
    fn definition_probe_annotates_defined_outputs() {
        // y1 ↔ x1 is uniquely defined; a free output is not.
        let (x1, x2) = (Var::new(0), Var::new(1));
        let (y1, y2) = (Var::new(2), Var::new(3));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y1, [x1]);
        dqbf.add_existential(y2, [x2]);
        dqbf.add_clause([y1.negative(), x1.positive()]);
        dqbf.add_clause([y1.positive(), x1.negative()]);
        dqbf.add_clause([y2.positive(), x2.positive()]);
        let opts = DecomposeOptions::default().with_definition_probe(10_000);
        let d = decompose(&dqbf, &opts);
        assert_eq!(d.num_clusters(), 2);
        assert_eq!(d.clusters[0].defined_outputs, vec![Var::new(2)]);
        assert!(d.clusters[1].defined_outputs.is_empty());
        // Without the probe nothing is annotated.
        let bare = decompose(&dqbf, &DecomposeOptions::default());
        assert!(bare.clusters.iter().all(|c| c.defined_outputs.is_empty()));
    }

    #[test]
    fn formula_without_existentials_is_a_single_empty_decomposition() {
        let x = Var::new(0);
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_clause([x.positive()]);
        let d = decompose(&dqbf, &DecomposeOptions::default());
        assert_eq!(d.num_clusters(), 0);
        assert!(d.is_monolithic());
        assert_eq!(d.shared_clauses, vec![0]);
    }
}
