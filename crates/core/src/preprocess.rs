//! Preprocessing: unique-definition extraction (the role of the UNIQUE tool
//! in the paper's implementation).

use crate::config::Manthan3Config;
use crate::oracle::Oracle;
use crate::stats::SynthesisStats;
use manthan3_cnf::Var;
use manthan3_dqbf::{unique, Dqbf, HenkinVector};
use manthan3_sat::SolverConfig;

/// Extracts functions for uniquely defined outputs before learning starts.
///
/// Returns the variables whose function was fixed by preprocessing; those
/// variables are skipped by the learning phase (their definitions already
/// respect the Henkin dependencies by construction). The Padoa and
/// enumeration SAT calls run their own solvers but inherit the run's
/// per-call conflict budget and cancellation token through `oracle`.
pub fn extract_unique_definitions(
    dqbf: &Dqbf,
    vector: &mut HenkinVector,
    config: &Manthan3Config,
    oracle: &Oracle,
    stats: &mut SynthesisStats,
) -> Vec<Var> {
    if !config.use_unique_definitions {
        return Vec::new();
    }
    let solver_config = SolverConfig {
        max_conflicts: oracle.budget().conflicts_per_call(),
        cancel: Some(oracle.budget().cancel_token().clone()),
        ..SolverConfig::default()
    };
    let defined = unique::extract_definitions_with(
        dqbf,
        vector,
        config.max_unique_definition_deps,
        &solver_config,
    );
    stats.unique_definitions = defined.len();
    defined
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_can_be_disabled() {
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config {
            use_unique_definitions: false,
            ..Manthan3Config::default()
        };
        let oracle = Oracle::new(crate::Budget::unlimited());
        let mut stats = SynthesisStats::default();
        let mut vector = HenkinVector::new();
        assert!(
            extract_unique_definitions(&dqbf, &mut vector, &config, &oracle, &mut stats).is_empty()
        );
        assert_eq!(stats.unique_definitions, 0);
    }

    #[test]
    fn paper_example_extracts_y3() {
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config::default();
        let oracle = Oracle::new(crate::Budget::unlimited());
        let mut stats = SynthesisStats::default();
        let mut vector = HenkinVector::new();
        let defined = extract_unique_definitions(&dqbf, &mut vector, &config, &oracle, &mut stats);
        assert!(defined.contains(&Var::new(5)));
        assert_eq!(stats.unique_definitions, defined.len());
    }
}
