//! Compositional synthesis: concurrent per-cluster CEGIS with a
//! composition-time verify and coupled-residue repair.
//!
//! The [`CompositionalEngine`] is the scale play the ROADMAP's
//! compositional-decomposition item calls for. Where [`Manthan3`] runs one
//! `Preprocess → Sample → Learn → Order → VerifyRepair` pipeline over *all*
//! outputs, this engine first partitions the outputs with
//! [`manthan3_dqbf::decompose`] and then runs **one full Manthan3 pipeline
//! per cluster, concurrently**, on the same thread plumbing the portfolio
//! uses (scoped threads, a relaxed ticket counter, cooperative cancellation
//! through the shared token):
//!
//! * every cluster pipeline gets a clone of the run's [`Budget`] — clones
//!   share the deadline and the [`CancelToken`](manthan3_sat::CancelToken),
//!   so portfolio preemption of the whole compositional racer keeps working —
//! * and an [`Oracle`] wired to one shared [`CallBudget`]
//!   ([`Oracle::with_call_allowance`]), so the clusters draw on a single
//!   global `max_sat_calls` pool instead of multiplying the allowance by the
//!   cluster count.
//!
//! A cluster subproblem's clauses are a subset of the whole matrix over a
//! subset of the outputs, so a cluster-level **Unrealizable is sound for the
//! whole formula**: the first cluster to prove it cancels the token and the
//! run reports Unrealizable without waiting for the rest.
//!
//! When all clusters return Henkin vectors, the per-cluster cones (each
//! grown in its own cluster-local AIG) are merged into one shared vector
//! with [`manthan3_aig::Aig::import`] and a **whole-formula verify** runs.
//! With no coupling clauses (the decomposition found naturally independent
//! clusters) this first verify must pass. A counterexample can only falsify
//! a coupling clause — one that `max_cluster_size` severed — and its
//! existential support names the offending clusters. The **coupled-residue
//! repair** merges exactly those clusters
//! ([`Decomposition::merged_subproblem`] restores the coupling clauses
//! internal to the union) and re-synthesizes the merged subproblem only,
//! leaving every other cluster's functions untouched. Each round strictly
//! decreases the number of cluster groups, so the loop terminates — in the
//! worst case at one group, which *is* the monolithic problem and returns
//! its verdict directly.

use crate::config::Manthan3Config;
use crate::engine::{Manthan3, SynthesisOutcome, SynthesisResult};
use crate::oracle::{Budget, Oracle, UnknownReason};
use crate::session::{Delta, VerifyOutcome, VerifySession};
use crate::stats::SynthesisStats;
use manthan3_cnf::Assignment;
use manthan3_dqbf::decompose::{decompose, DecomposeOptions, Decomposition};
use manthan3_dqbf::{Dqbf, HenkinVector};
use manthan3_sat::{CallBudget, SolverConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of the [`CompositionalEngine`].
#[derive(Debug, Clone)]
pub struct CompositionalConfig {
    /// The configuration every per-cluster Manthan3 pipeline runs with
    /// (budget fields are read by [`CompositionalEngine::synthesize`] for
    /// the run-wide budget, exactly like the monolithic engine).
    pub engine: Manthan3Config,
    /// Upper bound on the outputs per cluster, forwarded to
    /// [`DecomposeOptions::max_cluster_size`]. Splitting oversized natural
    /// clusters is what introduces coupling clauses — and the
    /// composition-repair work that discharges them. This is the knob the
    /// portfolio's cluster-merge-threshold racing dimension turns.
    pub max_cluster_size: Option<usize>,
    /// When `true` (the default), a composition-time counterexample is
    /// repaired by merging the offending clusters and re-synthesizing the
    /// coupled residue. When `false`, the engine falls back to one
    /// monolithic re-synthesis instead.
    pub compose_repairs: bool,
    /// Worker threads for the concurrent cluster loops; `0` uses the
    /// machine's available parallelism. Never more workers than clusters.
    pub threads: usize,
}

impl Default for CompositionalConfig {
    fn default() -> Self {
        CompositionalConfig {
            engine: Manthan3Config::default(),
            max_cluster_size: None,
            compose_repairs: true,
            threads: 0,
        }
    }
}

/// The compositional synthesis engine. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct CompositionalEngine {
    config: CompositionalConfig,
}

/// Outcome of the concurrent per-cluster phase, before composition.
enum ClusterPhase {
    /// Every cluster produced a vector (in cluster order).
    AllRealizable(Vec<HenkinVector>),
    /// A decisive or terminal verdict was reached without composing.
    Done(SynthesisOutcome),
}

impl CompositionalEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: CompositionalConfig) -> Self {
        CompositionalEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CompositionalConfig {
        &self.config
    }

    /// Synthesizes a Henkin function vector for `dqbf` compositionally,
    /// under the budget described by the engine configuration.
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`].
    pub fn synthesize(&self, dqbf: &Dqbf) -> SynthesisResult {
        let budget = Budget::new(
            self.config.engine.time_budget,
            self.config.engine.sat_conflict_budget,
            self.config.engine.sat_call_budget,
        );
        self.synthesize_with_budget(dqbf, budget)
    }

    /// Like [`CompositionalEngine::synthesize`], but under an externally
    /// supplied [`Budget`] (the portfolio's racing entry point — clones of
    /// the budget share its deadline and cancellation token).
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`].
    pub fn synthesize_with_budget(&self, dqbf: &Dqbf, budget: Budget) -> SynthesisResult {
        // invariant: documented panic contract — callers must pass a
        // validated DQBF.
        dqbf.validate().expect("well-formed DQBF");
        let run_start = Instant::now();

        // Annotate every cluster with its Padoa-defined outputs: the probe
        // is a few conflict-budgeted SAT calls per output — cheap next to a
        // synthesis pipeline — and the annotation drives the launch order of
        // the cluster phase (most-defined first; see `run_clusters`). The
        // probe runs inside `manthan3-dqbf` with its own solvers, like
        // unique-definition preprocessing, so it is not counted in
        // `OracleStats`.
        const DEFINITION_PROBE_CONFLICTS: u64 = 256;
        let options = DecomposeOptions {
            max_cluster_size: self.config.max_cluster_size,
            definition_probe: Some(SolverConfig::budgeted(
                budget
                    .conflicts_per_call()
                    .unwrap_or(DEFINITION_PROBE_CONFLICTS),
            )),
        };
        let decomposition = decompose(dqbf, &options);

        // One cluster (or none): compositional synthesis degenerates to the
        // monolithic pipeline, with zero composition verifies on top.
        if decomposition.is_monolithic() {
            let mut result =
                Manthan3::new(self.config.engine.clone()).synthesize_with_budget(dqbf, budget);
            result.stats.clusters = 1;
            result.stats.cluster_walls = vec![result.stats.total_time];
            return result;
        }

        // The single global call pool every per-cluster oracle draws on.
        let pool = CallBudget::new(budget.max_sat_calls());
        let mut stats = SynthesisStats {
            clusters: decomposition.num_clusters(),
            cluster_walls: vec![Duration::ZERO; decomposition.num_clusters()],
            ..SynthesisStats::default()
        };

        let outcome = match self.run_clusters(dqbf, &decomposition, &budget, &pool, &mut stats) {
            ClusterPhase::Done(outcome) => outcome,
            ClusterPhase::AllRealizable(vectors) => {
                self.compose(dqbf, &decomposition, vectors, &budget, &pool, &mut stats)
            }
        };

        stats.total_time = run_start.elapsed();
        SynthesisResult { outcome, stats }
    }

    /// Builds the oracle a cluster pipeline (or the composition verify) runs
    /// on: the engine configuration's strategy/profile knobs plus the shared
    /// call pool on top of the shared deadline and token in `budget`.
    fn cluster_oracle(&self, budget: &Budget, pool: &CallBudget) -> Oracle {
        Oracle::new(budget.clone())
            .with_repair_strategy(self.config.engine.repair_strategy)
            .with_solver_profile(self.config.engine.solver_profile)
            .with_restart_policy(self.config.engine.restart_policy)
            .with_certification(self.config.engine.certify)
            .with_call_allowance(pool.clone())
    }

    /// Derives the engine configuration a cluster (or merged-residue)
    /// pipeline runs with: the sampling budget is scaled to the subproblem's
    /// share of the outputs, floored so small clusters still learn from a
    /// usable batch. Sampling is the one pipeline stage whose cost the
    /// decomposition would otherwise *multiply* instead of divide — each
    /// cluster would draw the full batch over its projected matrix — and a
    /// cluster's functions range over proportionally fewer variables, so the
    /// proportional batch retains the per-output sample density of the
    /// monolithic run.
    fn cluster_engine_config(
        &self,
        cluster_outputs: usize,
        total_outputs: usize,
    ) -> Manthan3Config {
        const MIN_CLUSTER_SAMPLES: usize = 64;
        let mut config = self.config.engine.clone();
        if total_outputs > 0 && cluster_outputs < total_outputs {
            let scaled = config.num_samples * cluster_outputs / total_outputs;
            let floor = MIN_CLUSTER_SAMPLES.min(config.num_samples);
            config.num_samples = scaled.clamp(floor.max(1), config.num_samples.max(1));
        }
        config
    }

    /// Phase 1 — runs one Manthan3 pipeline per cluster concurrently and
    /// aggregates the verdicts.
    fn run_clusters(
        &self,
        dqbf: &Dqbf,
        decomposition: &Decomposition,
        budget: &Budget,
        pool: &CallBudget,
        stats: &mut SynthesisStats,
    ) -> ClusterPhase {
        let n = decomposition.num_clusters();
        let subproblems: Vec<Dqbf> = (0..n).map(|i| decomposition.subproblem(dqbf, i)).collect();
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        }
        .clamp(1, n);

        let total_outputs = dqbf.existentials().len();
        let engines: Vec<Manthan3> = subproblems
            .iter()
            .map(|sub| {
                Manthan3::new(self.cluster_engine_config(sub.existentials().len(), total_outputs))
            })
            .collect();
        // Launch order: clusters with more Padoa-defined outputs first
        // (ties in cluster order — the sort is stable). A defined output is
        // synthesized by definition extraction alone, skipping sampling,
        // learning, and repair, so definition-rich clusters are the cheap
        // ones: front-loading them frees workers for the expensive
        // free-output clusters quickly and surfaces an early Unrealizable
        // (which preempts the whole phase) before the long tail starts.
        let mut schedule: Vec<usize> = (0..n).collect();
        schedule
            .sort_by_key(|&i| std::cmp::Reverse(decomposition.clusters[i].defined_outputs.len()));
        stats.cluster_schedule = schedule.clone();
        let schedule_ref = &schedule;
        let next_ticket = AtomicUsize::new(0);
        let finished: Mutex<Vec<(usize, Duration, SynthesisResult)>> = Mutex::new(Vec::new());
        let subproblems_ref = &subproblems;
        let engines_ref = &engines;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    // Cooperative preemption: a cluster that proved the
                    // formula unrealizable — or the portfolio preempting the
                    // whole racer — stops the remaining cluster launches.
                    if budget.cancel_token().is_cancelled() {
                        break;
                    }
                    // ordering: Relaxed suffices — only RMW atomicity makes
                    // tickets unique; `subproblems_ref`/`schedule_ref` were
                    // written before the scope spawned the workers, so their
                    // visibility comes from thread creation, not this counter.
                    // Model-checked by manthan3-conc `ticket/relaxed-fetch-add`.
                    let ticket = next_ticket.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = schedule_ref.get(ticket) else {
                        break;
                    };
                    let sub = &subproblems_ref[index];
                    let cluster_start = Instant::now();
                    let result = engines_ref[index]
                        .synthesize_with_oracle(sub, self.cluster_oracle(budget, pool));
                    let wall = cluster_start.elapsed();
                    // A cluster subproblem is a clause subset of the whole
                    // matrix over a subset of the outputs, so its
                    // Unrealizable verdict transfers to the whole formula:
                    // preempt the remaining clusters. Cancelling is
                    // idempotent and the token's own Release store publishes
                    // it; no claim race is needed because every Unrealizable
                    // reporter is equally right.
                    if matches!(result.outcome, SynthesisOutcome::Unrealizable) {
                        budget.cancel_token().cancel();
                    }
                    finished
                        .lock()
                        // invariant: cluster workers never panic while
                        // holding the results lock (push cannot panic short
                        // of allocation failure).
                        .expect("no cluster worker panicked holding the results lock")
                        .push((index, wall, result));
                });
            }
        });

        let results = finished
            .into_inner()
            // invariant: same lock as above — no worker panicked with it.
            .expect("no cluster worker panicked holding the results lock");

        let mut vectors: Vec<Option<HenkinVector>> = (0..n).map(|_| None).collect();
        let mut unrealizable = false;
        let mut unknown: Option<UnknownReason> = None;
        for (index, wall, result) in results {
            stats.cluster_walls[index] = wall;
            absorb_pipeline_stats(stats, &result.stats);
            match result.outcome {
                SynthesisOutcome::Realizable(vector) => vectors[index] = Some(vector),
                SynthesisOutcome::Unrealizable => unrealizable = true,
                SynthesisOutcome::Unknown(reason) => {
                    // Prefer the root cause over the Cancelled echoes the
                    // preemption produces in the other workers.
                    if unknown.is_none() || unknown == Some(UnknownReason::Cancelled) {
                        unknown = Some(reason);
                    }
                }
            }
        }
        if unrealizable {
            return ClusterPhase::Done(SynthesisOutcome::Unrealizable);
        }
        if let Some(reason) = unknown {
            return ClusterPhase::Done(SynthesisOutcome::Unknown(reason));
        }
        if vectors.iter().any(Option::is_none) {
            // A cluster was never launched: only external cancellation (or
            // an exhausted budget observed before the claim) skips tickets.
            return ClusterPhase::Done(SynthesisOutcome::Unknown(
                self.cluster_oracle(budget, pool).give_up_reason(),
            ));
        }
        ClusterPhase::AllRealizable(vectors.into_iter().flatten().collect())
    }

    /// Phase 2 — merges the per-cluster vectors into one shared AIG, runs
    /// the whole-formula verify, and discharges coupling counterexamples by
    /// coupled-residue repair (merge the offending clusters, re-synthesize
    /// the merged subproblem only, substitute, re-verify).
    fn compose(
        &self,
        dqbf: &Dqbf,
        decomposition: &Decomposition,
        vectors: Vec<HenkinVector>,
        budget: &Budget,
        pool: &CallBudget,
        stats: &mut SynthesisStats,
    ) -> SynthesisOutcome {
        let mut merged = HenkinVector::new();
        for vector in &vectors {
            import_functions(&mut merged, vector);
        }

        // The current partition into cluster groups; repairs merge groups.
        let mut groups: Vec<Vec<usize>> =
            (0..decomposition.num_clusters()).map(|i| vec![i]).collect();

        // One verify session for the whole composition loop: the merged AIG
        // only grows across repair rounds, so the session's cached encoding
        // and learnt clauses survive every round.
        let mut oracle = self.cluster_oracle(budget, pool);
        let mut session = VerifySession::new(dqbf, &mut oracle);

        loop {
            stats.compose_verifies += 1;
            match session.verify(dqbf, &merged, &mut oracle) {
                VerifyOutcome::Valid => {
                    stats.oracle.absorb(oracle.stats());
                    return SynthesisOutcome::Realizable(merged);
                }
                VerifyOutcome::Budget => {
                    stats.oracle.absorb(oracle.stats());
                    return SynthesisOutcome::Unknown(oracle.give_up_reason());
                }
                VerifyOutcome::CounterExample(delta) => {
                    let offending = offending_groups(dqbf, decomposition, &groups, &delta);
                    let offending = match offending {
                        OffendingGroups::PureUniversal => {
                            // A falsified clause without existential support:
                            // that X falsifies ϕ whatever the outputs do.
                            stats.oracle.absorb(oracle.stats());
                            return SynthesisOutcome::Unrealizable;
                        }
                        OffendingGroups::Groups(g) => g,
                    };
                    // Choose the residue to re-synthesize: the offending
                    // groups' union under compose_repairs, the whole output
                    // set otherwise (or defensively, when the counterexample
                    // does not span two groups — which per-cluster
                    // verification rules out, but soundness must not depend
                    // on that argument).
                    let merge_ids: Vec<usize> =
                        if self.config.compose_repairs && offending.len() >= 2 {
                            offending
                        } else {
                            (0..groups.len()).collect()
                        };
                    stats.compose_repairs += 1;
                    let cluster_ids: Vec<usize> = merge_ids
                        .iter()
                        .flat_map(|&g| groups[g].iter().copied())
                        .collect();
                    let residue = decomposition.merged_subproblem(dqbf, &cluster_ids);
                    let residue_config = self.cluster_engine_config(
                        residue.existentials().len(),
                        dqbf.existentials().len(),
                    );
                    let result = Manthan3::new(residue_config)
                        .synthesize_with_oracle(&residue, self.cluster_oracle(budget, pool));
                    absorb_pipeline_stats(stats, &result.stats);
                    match result.outcome {
                        SynthesisOutcome::Realizable(vector) => {
                            // Substitute the repaired residue functions into
                            // the composed vector; all other clusters'
                            // functions stay as they were.
                            import_functions(&mut merged, &vector);
                            if cluster_ids.len() == decomposition.num_clusters() {
                                // The residue was the whole formula: its
                                // vector is already whole-formula verified by
                                // the monolithic pipeline.
                                stats.oracle.absorb(oracle.stats());
                                return SynthesisOutcome::Realizable(merged);
                            }
                        }
                        SynthesisOutcome::Unrealizable => {
                            // The residue is a clause subset of the whole
                            // matrix: its Unrealizable transfers.
                            stats.oracle.absorb(oracle.stats());
                            return SynthesisOutcome::Unrealizable;
                        }
                        SynthesisOutcome::Unknown(reason) => {
                            stats.oracle.absorb(oracle.stats());
                            return SynthesisOutcome::Unknown(reason);
                        }
                    }
                    // Collapse the merged groups; every round strictly
                    // shrinks the partition, bounding the loop.
                    let merged_group: Vec<usize> = cluster_ids;
                    groups = groups
                        .into_iter()
                        .enumerate()
                        .filter(|(g, _)| !merge_ids.contains(g))
                        .map(|(_, members)| members)
                        .collect();
                    groups.push(merged_group);
                }
            }
        }
    }
}

/// How a composition counterexample maps back onto the cluster partition.
enum OffendingGroups {
    /// Some falsified clause has no existential literals at all.
    PureUniversal,
    /// The (deduplicated, sorted) group indices owning the existential
    /// support of the falsified clauses.
    Groups(Vec<usize>),
}

/// Replays the counterexample on the matrix and maps the falsified clauses'
/// existential support onto the current cluster groups.
fn offending_groups(
    dqbf: &Dqbf,
    decomposition: &Decomposition,
    groups: &[Vec<usize>],
    delta: &Delta,
) -> OffendingGroups {
    let mut values = vec![false; dqbf.num_vars()];
    for (&v, &b) in delta.x.iter().chain(delta.y_prime.iter()) {
        values[v.index()] = b;
    }
    let assignment = Assignment::from_values(values);

    let group_of = |cluster: usize| -> usize {
        groups
            .iter()
            .position(|members| members.contains(&cluster))
            // invariant: `groups` is a partition of all cluster indices by
            // construction; every cluster is in exactly one group.
            .expect("cluster groups partition the cluster indices")
    };

    let mut offending: Vec<usize> = Vec::new();
    for clause in dqbf.matrix().clauses() {
        if clause.eval(&assignment) {
            continue;
        }
        let mut saw_existential = false;
        for lit in clause {
            if let Some(cluster) = decomposition.owner(lit.var()) {
                saw_existential = true;
                offending.push(group_of(cluster));
            }
        }
        if !saw_existential {
            return OffendingGroups::PureUniversal;
        }
    }
    offending.sort_unstable();
    offending.dedup();
    OffendingGroups::Groups(offending)
}

/// Copies every function of `part` into `target` (overwriting any previous
/// definition for the same output), importing the cones across AIGs.
fn import_functions(target: &mut HenkinVector, part: &HenkinVector) {
    for (&y, &f) in part.functions() {
        let imported = target.aig_mut().import(part.aig(), f);
        target.set(y, imported);
    }
}

/// Accumulates a per-cluster (or residue) pipeline's statistics into the
/// run-level totals.
fn absorb_pipeline_stats(total: &mut SynthesisStats, part: &SynthesisStats) {
    total.samples += part.samples;
    total.sample_shards = total.sample_shards.max(part.sample_shards);
    total.candidates_learned += part.candidates_learned;
    total.unique_definitions += part.unique_definitions;
    total.verification_checks += part.verification_checks;
    total.repair_iterations += part.repair_iterations;
    total.repairs_applied += part.repairs_applied;
    total.maxsat_calls += part.maxsat_calls;
    total.repair_sat_calls += part.repair_sat_calls;
    total.oracle.absorb(&part.oracle);
    // A certifying run keeps the first rejected certificate it saw across
    // the cluster/residue pipelines (the compose-time verify oracle reports
    // rejections through its counters only).
    if total.certification_failure.is_none() {
        total.certification_failure = part.certification_failure.clone();
    }
    total.sampling_time += part.sampling_time;
    total.learning_time += part.learning_time;
    total.verification_time += part.verification_time;
    total.repair_time += part.repair_time;
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Var;
    use manthan3_dqbf::verify;

    /// `k` disjoint copies of the gate `y_i ↔ x_i` — naturally `k` clusters.
    fn disjoint_gates(k: u32) -> Dqbf {
        let mut dqbf = Dqbf::new();
        for i in 0..k {
            let x = Var::new(i);
            dqbf.add_universal(x);
        }
        for i in 0..k {
            let x = Var::new(i);
            let y = Var::new(k + i);
            dqbf.add_existential(y, [x]);
            dqbf.add_clause([y.negative(), x.positive()]);
            dqbf.add_clause([y.positive(), x.negative()]);
        }
        dqbf
    }

    #[test]
    fn synthesizes_independent_clusters_and_verifies() {
        let dqbf = disjoint_gates(3);
        let result = CompositionalEngine::default().synthesize(&dqbf);
        let SynthesisOutcome::Realizable(vector) = &result.outcome else {
            panic!("expected realizable, got {:?}", result.outcome);
        };
        assert!(verify::check(&dqbf, vector).is_valid());
        assert_eq!(result.stats.clusters, 3);
        assert_eq!(result.stats.cluster_walls.len(), 3);
        // Independent clusters: the first whole-formula verify passes.
        assert_eq!(result.stats.compose_verifies, 1);
        assert_eq!(result.stats.compose_repairs, 0);
    }

    #[test]
    fn single_cluster_degenerates_to_monolithic() {
        let dqbf = Dqbf::paper_example();
        // The paper example decomposes into two clusters; force one with a
        // coupled instance instead: y1, y2 sharing a clause.
        let x = Var::new(0);
        let (y1, y2) = (Var::new(1), Var::new(2));
        let mut coupled = Dqbf::new();
        coupled.add_universal(x);
        coupled.add_existential(y1, [x]);
        coupled.add_existential(y2, [x]);
        coupled.add_clause([y1.positive(), y2.positive()]);
        let engine = CompositionalEngine::default();
        let result = engine.synthesize(&coupled);
        assert!(result.outcome.is_realizable());
        assert_eq!(result.stats.clusters, 1);
        // Degeneration: no composition verify at all.
        assert_eq!(result.stats.compose_verifies, 0);
        // And the naturally-decomposable paper example still verifies.
        let paper = engine.synthesize(&dqbf);
        let SynthesisOutcome::Realizable(vector) = &paper.outcome else {
            panic!("expected realizable, got {:?}", paper.outcome);
        };
        assert!(verify::check(&dqbf, vector).is_valid());
        assert_eq!(paper.stats.clusters, 2);
    }

    #[test]
    fn cluster_unrealizability_transfers_to_the_whole_formula() {
        // Cluster 1 is the realizable y1 ↔ x1 gate; cluster 2's projected
        // matrix (y2) ∧ (¬y2) is unsatisfiable outright. Manthan3 proves
        // unrealizability exactly when a (sub)matrix is UNSAT, so the
        // verdict comes from the cluster path and transfers to the whole
        // formula.
        let x1 = Var::new(0);
        let (y1, y2) = (Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_existential(y1, [x1]);
        dqbf.add_existential(y2, [x1]);
        dqbf.add_clause([y1.negative(), x1.positive()]);
        dqbf.add_clause([y1.positive(), x1.negative()]);
        dqbf.add_clause([y2.positive()]);
        dqbf.add_clause([y2.negative()]);
        let result = CompositionalEngine::default().synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
        assert_eq!(result.stats.clusters, 2);
    }

    #[test]
    fn forced_split_exercises_the_coupled_residue_repair() {
        // One natural cluster: (¬y1), (y1 ∨ y2). A max_cluster_size of 1
        // severs the coupling clause; y2's piece alone has no constraint, so
        // a candidate y2 := false survives its cluster verify and the
        // composition verify must catch (y1 ∨ y2) and merge the pieces.
        let x = Var::new(0);
        let (y1, y2) = (Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y1, [x]);
        dqbf.add_existential(y2, [x]);
        dqbf.add_clause([y1.negative()]);
        dqbf.add_clause([y1.positive(), y2.positive()]);
        let config = CompositionalConfig {
            max_cluster_size: Some(1),
            ..CompositionalConfig::default()
        };
        let result = CompositionalEngine::new(config).synthesize(&dqbf);
        let SynthesisOutcome::Realizable(vector) = &result.outcome else {
            panic!("expected realizable, got {:?}", result.outcome);
        };
        assert!(verify::check(&dqbf, vector).is_valid());
        assert_eq!(result.stats.clusters, 2);
        assert!(result.stats.compose_verifies >= 1);
        // Whether the repair fires depends on the free cluster's learned
        // polarity; with y2 unconstrained the sampler-learned candidate may
        // already satisfy the coupling clause. Force the repair with the
        // unrealizable variant below instead; here we only require a
        // verified result.
    }

    #[test]
    fn coupled_residue_repair_reaches_unrealizable() {
        // (¬y1), (¬y2), (y1 ∨ y2): unrealizable. Split into two singleton
        // clusters both pieces are realizable (y := false), so the verdict
        // can only come out of the composition repair path.
        let x = Var::new(0);
        let (y1, y2) = (Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y1, [x]);
        dqbf.add_existential(y2, [x]);
        dqbf.add_clause([y1.negative()]);
        dqbf.add_clause([y2.negative()]);
        dqbf.add_clause([y1.positive(), y2.positive()]);
        let config = CompositionalConfig {
            max_cluster_size: Some(1),
            ..CompositionalConfig::default()
        };
        let result = CompositionalEngine::new(config).synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
        assert!(result.stats.compose_verifies >= 1);
        assert!(result.stats.compose_repairs >= 1);
    }

    #[test]
    fn compose_repairs_disabled_falls_back_to_monolithic_residue() {
        let x = Var::new(0);
        let (y1, y2) = (Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y1, [x]);
        dqbf.add_existential(y2, [x]);
        dqbf.add_clause([y1.negative()]);
        dqbf.add_clause([y1.positive(), y2.positive()]);
        let config = CompositionalConfig {
            max_cluster_size: Some(1),
            compose_repairs: false,
            ..CompositionalConfig::default()
        };
        let result = CompositionalEngine::new(config).synthesize(&dqbf);
        let SynthesisOutcome::Realizable(vector) = &result.outcome else {
            panic!("expected realizable, got {:?}", result.outcome);
        };
        assert!(verify::check(&dqbf, vector).is_valid());
    }

    /// Satellite regression: the cluster phase launches Padoa-defined-rich
    /// clusters first. Cluster 0 (`y1`, constrained only by `y1 ∨ x`) has no
    /// defined outputs; cluster 1 (`y2 ↔ x`) has one — so the schedule must
    /// start with cluster 1, while walls stay indexed in cluster order.
    #[test]
    fn schedules_defined_rich_clusters_first() {
        let x = Var::new(0);
        let (y1, y2) = (Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y1, [x]);
        dqbf.add_existential(y2, [x]);
        dqbf.add_clause([y1.positive(), x.positive()]);
        dqbf.add_clause([y2.negative(), x.positive()]);
        dqbf.add_clause([y2.positive(), x.negative()]);
        let result = CompositionalEngine::default().synthesize(&dqbf);
        let SynthesisOutcome::Realizable(vector) = &result.outcome else {
            panic!("expected realizable, got {:?}", result.outcome);
        };
        assert!(verify::check(&dqbf, vector).is_valid());
        assert_eq!(result.stats.clusters, 2);
        assert_eq!(result.stats.cluster_schedule, vec![1, 0]);
        assert_eq!(result.stats.cluster_walls.len(), 2);
        // Monolithic degeneration reports no schedule.
        let mut mono = Dqbf::new();
        mono.add_universal(x);
        mono.add_existential(y1, [x]);
        mono.add_clause([y1.positive(), x.positive()]);
        let single = CompositionalEngine::default().synthesize(&mono);
        assert!(single.outcome.is_realizable());
        assert!(single.stats.cluster_schedule.is_empty());
    }

    #[test]
    fn pre_cancelled_budget_reports_cancelled() {
        let dqbf = disjoint_gates(2);
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let result = CompositionalEngine::default().synthesize_with_budget(&dqbf, budget);
        assert!(matches!(
            result.outcome,
            SynthesisOutcome::Unknown(UnknownReason::Cancelled)
        ));
    }

    #[test]
    fn clusters_share_one_call_pool() {
        // A two-cluster instance under a tiny global call budget: the run
        // must give up with OracleBudget instead of granting each cluster
        // its own full allowance.
        let dqbf = disjoint_gates(2);
        let budget = Budget::new(None, None, Some(2));
        let result = CompositionalEngine::default().synthesize_with_budget(&dqbf, budget);
        assert!(matches!(
            result.outcome,
            SynthesisOutcome::Unknown(UnknownReason::OracleBudget)
        ));
        // And with a roomy budget the same instance solves.
        let roomy = Budget::new(None, None, Some(10_000));
        let ok = CompositionalEngine::default().synthesize_with_budget(&dqbf, roomy);
        assert!(ok.outcome.is_realizable());
    }
}
