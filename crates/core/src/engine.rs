//! The main synthesis loop (Algorithm 1 of the paper).

use crate::config::Manthan3Config;
use crate::learn::learn_candidate;
use crate::order::{DependencyState, Order};
use crate::preprocess::extract_unique_definitions;
use crate::repair::{repair_vector, Sigma};
use crate::stats::SynthesisStats;
use manthan3_cnf::{CnfBuilder, Lit, Var};
use manthan3_dqbf::{verify, Dqbf, HenkinVector};
use manthan3_sampler::{Sampler, SamplerConfig};
use manthan3_sat::{SolveResult, Solver, SolverConfig};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Why a synthesis run ended without a definitive answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnknownReason {
    /// The repair loop could not modify any candidate for the current
    /// counterexample (the incompleteness discussed in §5 of the paper).
    RepairStuck,
    /// The configured number of repair iterations was exhausted.
    IterationLimit,
    /// The configured wall-clock budget was exhausted.
    TimeBudget,
    /// A budgeted SAT oracle call gave up.
    OracleBudget,
}

/// The verdict of a synthesis run.
#[derive(Debug, Clone)]
pub enum SynthesisOutcome {
    /// The formula is true; the returned vector is a Henkin function vector
    /// (each function expressed over its Henkin dependencies only).
    Realizable(HenkinVector),
    /// The formula is false: no Henkin function vector exists.
    Unrealizable,
    /// The engine gave up for the stated reason.
    Unknown(UnknownReason),
}

impl SynthesisOutcome {
    /// Returns `true` for [`SynthesisOutcome::Realizable`].
    pub fn is_realizable(&self) -> bool {
        matches!(self, SynthesisOutcome::Realizable(_))
    }
}

/// Outcome and statistics of one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The verdict.
    pub outcome: SynthesisOutcome,
    /// Counters and timings.
    pub stats: SynthesisStats,
}

/// The Manthan3 synthesis engine.
///
/// See the [crate-level documentation](crate) for the algorithm and an
/// example.
#[derive(Debug, Clone, Default)]
pub struct Manthan3 {
    config: Manthan3Config,
}

impl Manthan3 {
    /// Creates an engine with the given configuration.
    pub fn new(config: Manthan3Config) -> Self {
        Manthan3 { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Manthan3Config {
        &self.config
    }

    /// Synthesizes a Henkin function vector for `dqbf` (Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`].
    pub fn synthesize(&self, dqbf: &Dqbf) -> SynthesisResult {
        dqbf.validate().expect("well-formed DQBF");
        let start = Instant::now();
        let deadline = self.config.time_budget.map(|b| start + b);
        let mut stats = SynthesisStats::default();

        let finish = |outcome: SynthesisOutcome, mut stats: SynthesisStats| {
            stats.total_time = start.elapsed();
            SynthesisResult { outcome, stats }
        };

        // A DQBF with an unsatisfiable matrix is trivially false.
        let solver_config = match self.config.sat_conflict_budget {
            Some(budget) => SolverConfig::budgeted(budget),
            None => SolverConfig::default(),
        };
        let mut phi_solver = Solver::with_config(solver_config);
        phi_solver.add_cnf(dqbf.matrix());
        phi_solver.ensure_vars(dqbf.num_vars());
        match phi_solver.solve() {
            SolveResult::Unsat => return finish(SynthesisOutcome::Unrealizable, stats),
            SolveResult::Unknown => {
                return finish(SynthesisOutcome::Unknown(UnknownReason::OracleBudget), stats)
            }
            SolveResult::Sat => {}
        }

        // Preprocessing: unique definitions.
        let mut vector = HenkinVector::new();
        let defined = extract_unique_definitions(dqbf, &mut vector, &self.config, &mut stats);

        // Phase 1: data generation.
        let sampling_start = Instant::now();
        let mut sampler = Sampler::new(
            dqbf.matrix(),
            SamplerConfig {
                seed: self.config.seed,
                ..SamplerConfig::default()
            },
        );
        let samples = sampler.sample(self.config.num_samples);
        stats.samples = samples.len();
        stats.sampling_time = sampling_start.elapsed();
        if samples.is_empty() {
            return finish(SynthesisOutcome::Unrealizable, stats);
        }

        // Phase 2: candidate learning with dependency bookkeeping.
        let learning_start = Instant::now();
        let mut dependency_state = DependencyState::new(dqbf.existentials());
        for &yi in dqbf.existentials() {
            for &yj in dqbf.existentials() {
                if yi == yj {
                    continue;
                }
                let hi = dqbf.dependencies(yi);
                let hj = dqbf.dependencies(yj);
                if hj.is_subset(hi) && hj != hi {
                    // H_j ⊂ H_i ⇒ y_i may depend on y_j (Algorithm 1, lines 3–5).
                    dependency_state.record_subset_constraint(yi, yj);
                }
            }
        }
        for &y in dqbf.existentials() {
            if defined.contains(&y) {
                continue;
            }
            let learned = learn_candidate(
                dqbf,
                &samples,
                y,
                &dependency_state,
                &mut vector,
                &self.config,
            );
            debug_assert!(learned.tree_splits <= self.config.tree.max_depth * samples.len() + 1);
            vector.set(y, learned.function);
            for supplier in learned.used_existentials {
                dependency_state.record_dependency(y, supplier);
            }
            stats.candidates_learned += 1;
        }
        let order = Order::from_dependencies(dqbf.existentials(), &dependency_state);
        debug_assert_eq!(order.sequence().len(), dqbf.existentials().len());
        stats.learning_time = learning_start.elapsed();

        // Phases 3–5: verify / repair loop.
        for _ in 0..self.config.max_repair_iterations {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return finish(SynthesisOutcome::Unknown(UnknownReason::TimeBudget), stats);
                }
            }
            let verification_start = Instant::now();
            stats.verification_checks += 1;
            let error_result = self.check_error_formula(dqbf, &vector);
            stats.verification_time += verification_start.elapsed();
            let delta = match error_result {
                ErrorCheck::Valid => {
                    // Success: expand inter-candidate references so every
                    // function is over its Henkin dependencies only
                    // (Algorithm 1, line 19).
                    vector.substitute_down(&order.substitution_order());
                    debug_assert_eq!(vector.dependency_violation(dqbf), None);
                    return finish(SynthesisOutcome::Realizable(vector), stats);
                }
                ErrorCheck::Budget => {
                    return finish(SynthesisOutcome::Unknown(UnknownReason::OracleBudget), stats)
                }
                ErrorCheck::CounterExample(delta) => delta,
            };

            // Can δ[X] be extended to a model of ϕ? (Algorithm 1, line 13.)
            let x_assumptions: Vec<Lit> = dqbf
                .universals()
                .iter()
                .map(|&x| x.lit(delta.x.get(&x).copied().unwrap_or(false)))
                .collect();
            let pi = match phi_solver.solve_with_assumptions(&x_assumptions) {
                SolveResult::Unsat => {
                    return finish(SynthesisOutcome::Unrealizable, stats);
                }
                SolveResult::Unknown => {
                    return finish(SynthesisOutcome::Unknown(UnknownReason::OracleBudget), stats)
                }
                SolveResult::Sat => phi_solver.model(),
            };

            let repair_start = Instant::now();
            stats.repair_iterations += 1;
            let mut sigma = Sigma {
                x: delta.x,
                y: dqbf
                    .existentials()
                    .iter()
                    .map(|&y| (y, pi.get(y).unwrap_or(false)))
                    .collect(),
                y_prime: delta.y_prime,
            };
            let outcome = repair_vector(
                dqbf,
                &self.config,
                &mut phi_solver,
                &mut vector,
                &order,
                &mut sigma,
                &mut stats,
            );
            stats.repair_time += repair_start.elapsed();
            if outcome.stuck {
                return finish(SynthesisOutcome::Unknown(UnknownReason::RepairStuck), stats);
            }
        }
        finish(SynthesisOutcome::Unknown(UnknownReason::IterationLimit), stats)
    }

    /// Builds and solves the error formula
    /// `E(X,Y') = ¬ϕ(X,Y') ∧ (Y' ↔ f(X, Y'))`.
    ///
    /// The original existential variables play the role of `Y'`: candidate
    /// functions that still mention other existential variables read those
    /// values from the corresponding `Y'` literals, exactly as in the paper.
    fn check_error_formula(&self, dqbf: &Dqbf, vector: &HenkinVector) -> ErrorCheck {
        let mut builder = CnfBuilder::new(dqbf.num_vars());
        verify::encode_negated_matrix(dqbf, &mut builder);
        let input_map: HashMap<usize, Lit> = (0..dqbf.num_vars())
            .map(|i| (i, Var::new(i as u32).positive()))
            .collect();
        for &y in dqbf.existentials() {
            let f = vector.get(y).expect("every output has a candidate");
            let out = vector.aig().encode_cnf(f, &mut builder, &input_map);
            builder.assert_equiv(y.positive(), out);
        }
        let solver_config = match self.config.sat_conflict_budget {
            Some(budget) => SolverConfig::budgeted(budget),
            None => SolverConfig::default(),
        };
        let mut solver = Solver::with_config(solver_config);
        solver.add_cnf(builder.cnf());
        match solver.solve() {
            SolveResult::Unsat => ErrorCheck::Valid,
            SolveResult::Unknown => ErrorCheck::Budget,
            SolveResult::Sat => {
                let model = solver.model();
                ErrorCheck::CounterExample(Delta {
                    x: dqbf
                        .universals()
                        .iter()
                        .map(|&x| (x, model.get(x).unwrap_or(false)))
                        .collect(),
                    y_prime: dqbf
                        .existentials()
                        .iter()
                        .map(|&y| (y, model.get(y).unwrap_or(false)))
                        .collect(),
                })
            }
        }
    }
}

/// A model of the error formula: `δ[X]` and `δ[Y']`.
#[derive(Debug, Clone)]
struct Delta {
    x: BTreeMap<Var, bool>,
    y_prime: BTreeMap<Var, bool>,
}

enum ErrorCheck {
    Valid,
    Budget,
    CounterExample(Delta),
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_dqbf::verify::check;

    fn synthesize(dqbf: &Dqbf) -> SynthesisResult {
        Manthan3::new(Manthan3Config::fast()).synthesize(dqbf)
    }

    #[test]
    fn solves_the_paper_example() {
        let dqbf = Dqbf::paper_example();
        let result = synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Realizable(vector) => {
                assert!(check(&dqbf, &vector).is_valid());
            }
            other => panic!("expected Realizable, got {other:?}"),
        }
        assert!(result.stats.samples > 0);
    }

    #[test]
    fn solves_simple_skolem_instance() {
        // ∀x1 x2 ∃y (Skolem): y ↔ (x1 ⊕ x2).
        let (x1, x2, y) = (Var::new(0), Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y, [x1, x2]);
        dqbf.add_clause([y.negative(), x1.positive(), x2.positive()]);
        dqbf.add_clause([y.negative(), x1.negative(), x2.negative()]);
        dqbf.add_clause([y.positive(), x1.positive(), x2.negative()]);
        dqbf.add_clause([y.positive(), x1.negative(), x2.positive()]);
        let result = synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Realizable(vector) => {
                assert!(check(&dqbf, &vector).is_valid());
                // The unique-definition preprocessing should have picked this
                // up without any repair iterations.
                assert_eq!(result.stats.unique_definitions, 1);
            }
            other => panic!("expected Realizable, got {other:?}"),
        }
    }

    #[test]
    fn reports_false_instances_as_unrealizable() {
        // ∀x ∃^{x}y. (¬x) ∧ y is false, and the X-extension check
        // (Algorithm 1, line 13) detects it: for x = 1 the matrix has no
        // model at all.
        let (x, y) = (Var::new(0), Var::new(1));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x]);
        dqbf.add_clause([x.negative()]);
        dqbf.add_clause([y.positive()]);
        let result = synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
    }

    #[test]
    fn dependency_restricted_false_instance_is_not_misreported() {
        // ∀x1 x2 ∃^{x1}y. (y ↔ x2) is false, but every σ[X] extends to a
        // model of ϕ, so Manthan3 cannot prove falsity; per the paper it must
        // end in the incompleteness case (repair stuck), never claim a
        // Henkin vector.
        let (x1, x2, y) = (Var::new(0), Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y, [x1]);
        dqbf.add_clause([y.negative(), x2.positive()]);
        dqbf.add_clause([y.positive(), x2.negative()]);
        let result = synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Unknown(_) | SynthesisOutcome::Unrealizable => {}
            SynthesisOutcome::Realizable(_) => panic!("false instance cannot be realizable"),
        }
    }

    #[test]
    fn unsatisfiable_matrix_is_unrealizable() {
        let (x, y) = (Var::new(0), Var::new(1));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x]);
        dqbf.add_clause([y.positive()]);
        dqbf.add_clause([y.negative()]);
        let result = synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
    }

    #[test]
    fn time_budget_is_honoured() {
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config {
            time_budget: Some(std::time::Duration::ZERO),
            ..Manthan3Config::fast()
        };
        let result = Manthan3::new(config).synthesize(&dqbf);
        // Either it was solved before the first deadline check (preprocessing
        // can already produce a full vector) or the budget fired.
        match result.outcome {
            SynthesisOutcome::Realizable(_)
            | SynthesisOutcome::Unknown(UnknownReason::TimeBudget) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn final_functions_respect_dependencies() {
        let dqbf = Dqbf::paper_example();
        let result = synthesize(&dqbf);
        if let SynthesisOutcome::Realizable(vector) = result.outcome {
            assert_eq!(vector.dependency_violation(&dqbf), None);
        } else {
            panic!("expected Realizable");
        }
    }

    #[test]
    fn skolem_xor_chain_is_synthesized() {
        // ∀x1..x3 ∃y1 y2 (full dependencies): y1 ↔ x1⊕x2, y2 ↔ y1⊕x3 encoded
        // via CNF; tests the learning + repair loop on a slightly larger
        // instance with Y-to-Y structure.
        let x: Vec<Var> = (0..3).map(Var::new).collect();
        let y1 = Var::new(3);
        let y2 = Var::new(4);
        let mut dqbf = Dqbf::new();
        for &xi in &x {
            dqbf.add_universal(xi);
        }
        dqbf.add_existential(y1, x.iter().copied());
        dqbf.add_existential(y2, x.iter().copied());
        // y1 ↔ x1 ⊕ x2
        dqbf.add_clause([y1.negative(), x[0].positive(), x[1].positive()]);
        dqbf.add_clause([y1.negative(), x[0].negative(), x[1].negative()]);
        dqbf.add_clause([y1.positive(), x[0].positive(), x[1].negative()]);
        dqbf.add_clause([y1.positive(), x[0].negative(), x[1].positive()]);
        // y2 ↔ y1 ⊕ x3
        dqbf.add_clause([y2.negative(), y1.positive(), x[2].positive()]);
        dqbf.add_clause([y2.negative(), y1.negative(), x[2].negative()]);
        dqbf.add_clause([y2.positive(), y1.positive(), x[2].negative()]);
        dqbf.add_clause([y2.positive(), y1.negative(), x[2].positive()]);
        let result = synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Realizable(vector) => {
                assert!(check(&dqbf, &vector).is_valid());
            }
            other => panic!("expected Realizable, got {other:?}"),
        }
    }
}
