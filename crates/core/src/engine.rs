//! The main synthesis loop (Algorithm 1 of the paper), organised as an
//! explicit pipeline of stages sharing one [`SynthesisCtx`]:
//!
//! ```text
//! Preprocess → Sample → Learn → Order → VerifyRepair
//! ```
//!
//! Every stage draws its SAT/MaxSAT/sampling power from the context's
//! [`Oracle`], and the `VerifyRepair` stage runs on a persistent
//! [`VerifySession`] — the error formula is encoded once and re-solved
//! under assumptions, with repairs only *adding* clauses.

use crate::config::Manthan3Config;
use crate::learn::learn_candidate;
use crate::oracle::{Budget, Oracle, UnknownReason};
use crate::order::{DependencyState, Order};
use crate::preprocess::extract_unique_definitions;
use crate::repair::{find_candidates_to_repair, repair_vector, Sigma};
use crate::session::{RepairSession, VerifyOutcome, VerifySession};
use crate::stats::SynthesisStats;
use manthan3_cnf::{Assignment, Lit, Var};
use manthan3_dqbf::{Dqbf, HenkinVector};
use manthan3_sampler::{SamplerConfig, ShortfallReason};
use manthan3_sat::SolveResult;
use std::time::Instant;

/// The verdict of a synthesis run.
#[derive(Debug, Clone)]
pub enum SynthesisOutcome {
    /// The formula is true; the returned vector is a Henkin function vector
    /// (each function expressed over its Henkin dependencies only).
    Realizable(HenkinVector),
    /// The formula is false: no Henkin function vector exists.
    Unrealizable,
    /// The engine gave up for the stated reason.
    Unknown(UnknownReason),
}

impl SynthesisOutcome {
    /// Returns `true` for [`SynthesisOutcome::Realizable`].
    pub fn is_realizable(&self) -> bool {
        matches!(self, SynthesisOutcome::Realizable(_))
    }
}

/// Outcome and statistics of one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The verdict.
    pub outcome: SynthesisOutcome,
    /// Counters and timings, including the oracle-layer statistics.
    pub stats: SynthesisStats,
}

/// Shared state of one synthesis run, threaded through the pipeline stages.
struct SynthesisCtx<'a> {
    dqbf: &'a Dqbf,
    config: &'a Manthan3Config,
    /// Budgets and statistics for every oracle interaction of the run.
    oracle: Oracle,
    stats: SynthesisStats,
    /// The candidate vector being grown and repaired (one shared AIG).
    vector: HenkinVector,
    /// Outputs fixed by unique-definition preprocessing.
    defined: Vec<Var>,
    /// Training data for candidate learning.
    samples: Vec<Assignment>,
    /// Learned inter-candidate dependency bookkeeping.
    dependency_state: DependencyState,
    /// Linear extension of the dependencies (set by the Order stage).
    order: Option<Order>,
    /// The persistent incremental verify session (set by Preprocess).
    session: Option<VerifySession>,
    /// The persistent assumption-based MaxSAT repair session, opened lazily
    /// on the first counterexample so runs that never reach repair pay
    /// nothing for it.
    repair: Option<RepairSession>,
}

impl<'a> SynthesisCtx<'a> {
    fn new(dqbf: &'a Dqbf, config: &'a Manthan3Config, oracle: Oracle) -> Self {
        SynthesisCtx {
            dqbf,
            config,
            oracle,
            stats: SynthesisStats::default(),
            vector: HenkinVector::new(),
            defined: Vec::new(),
            samples: Vec::new(),
            dependency_state: DependencyState::new(dqbf.existentials()),
            order: None,
            session: None,
            repair: None,
        }
    }

    /// Maps an exhausted-oracle verdict to an outcome.
    fn give_up(&self) -> SynthesisOutcome {
        SynthesisOutcome::Unknown(self.oracle.give_up_reason())
    }
}

/// The Manthan3 synthesis engine.
///
/// See the [crate-level documentation](crate) for the algorithm and an
/// example.
#[derive(Debug, Clone, Default)]
pub struct Manthan3 {
    config: Manthan3Config,
}

impl Manthan3 {
    /// Creates an engine with the given configuration.
    pub fn new(config: Manthan3Config) -> Self {
        Manthan3 { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Manthan3Config {
        &self.config
    }

    /// Synthesizes a Henkin function vector for `dqbf` (Algorithm 1), running
    /// the `Preprocess → Sample → Learn → Order → VerifyRepair` pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`].
    pub fn synthesize(&self, dqbf: &Dqbf) -> SynthesisResult {
        let budget = Budget::new(
            self.config.time_budget,
            self.config.sat_conflict_budget,
            self.config.sat_call_budget,
        );
        self.synthesize_with_budget(dqbf, budget)
    }

    /// Like [`Manthan3::synthesize`], but under an externally supplied
    /// [`Budget`] — the configuration's own budget fields are ignored. This
    /// is how a portfolio runner races engines against one shared wall-clock
    /// deadline and one shared [`CancelToken`](manthan3_sat::CancelToken):
    /// it arms a single budget with [`Budget::start`] and hands each engine
    /// a clone.
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`].
    pub fn synthesize_with_budget(&self, dqbf: &Dqbf, budget: Budget) -> SynthesisResult {
        // The repair strategy travels Config → Oracle → RepairSession (every
        // MaxSAT solver the run constructs searches with it), and the solver
        // profile + restart override travel Config → Oracle → every
        // constructed solver the same way.
        let oracle = Oracle::new(budget)
            .with_repair_strategy(self.config.repair_strategy)
            .with_solver_profile(self.config.solver_profile)
            .with_restart_policy(self.config.restart_policy)
            .with_certification(self.config.certify);
        self.synthesize_with_oracle(dqbf, oracle)
    }

    /// Like [`Manthan3::synthesize_with_budget`], but the whole [`Oracle`] is
    /// supplied by the caller, configuration and all. This is how the
    /// compositional engine runs one pipeline per cluster while the clusters
    /// share a single call allowance
    /// ([`Oracle::with_call_allowance`]) on top of the shared deadline and
    /// cancellation token.
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`].
    pub fn synthesize_with_oracle(&self, dqbf: &Dqbf, oracle: Oracle) -> SynthesisResult {
        // invariant: documented panic contract — callers must pass a
        // validated DQBF.
        dqbf.validate().expect("well-formed DQBF");
        let mut ctx = SynthesisCtx::new(dqbf, &self.config, oracle);

        let outcome = stage_preprocess(&mut ctx)
            .or_else(|| stage_sample(&mut ctx))
            .or_else(|| stage_learn(&mut ctx))
            .or_else(|| stage_order(&mut ctx))
            .unwrap_or_else(|| stage_verify_repair(&mut ctx));

        let mut stats = ctx.stats;
        stats.oracle = *ctx.oracle.stats();
        stats.certification_failure = ctx.oracle.take_certification_failure();
        stats.total_time = ctx.oracle.budget().elapsed();
        SynthesisResult { outcome, stats }
    }
}

/// Pipeline stage 1 — **Preprocess**: open the persistent oracle session,
/// rule out a trivially false matrix, and extract unique definitions.
fn stage_preprocess(ctx: &mut SynthesisCtx<'_>) -> Option<SynthesisOutcome> {
    let mut session = VerifySession::new(ctx.dqbf, &mut ctx.oracle);
    match session.check_matrix(&mut ctx.oracle) {
        SolveResult::Unsat => return Some(SynthesisOutcome::Unrealizable),
        SolveResult::Unknown => return Some(ctx.give_up()),
        SolveResult::Sat => {}
    }
    ctx.session = Some(session);
    ctx.defined = extract_unique_definitions(
        ctx.dqbf,
        &mut ctx.vector,
        ctx.config,
        &ctx.oracle,
        &mut ctx.stats,
    );
    // Extraction runs budgeted SAT calls outside the oracle's call counter;
    // re-check the wall clock before moving on.
    if let Some(reason) = ctx.oracle.exhausted() {
        return Some(SynthesisOutcome::Unknown(reason));
    }
    None
}

/// Pipeline stage 2 — **Sample**: draw training data from the matrix,
/// sharded across `config.sample_shards` seed-derived sampler threads that
/// share the run's budget and cancellation token; the merged batch follows
/// the single-sampler distribution contract (bias-weighted merge).
fn stage_sample(ctx: &mut SynthesisCtx<'_>) -> Option<SynthesisOutcome> {
    let sampling_start = Instant::now();
    let shards = ctx.config.sample_shards.max(1);
    let (samples, outcome) = ctx.oracle.sample_sharded(
        ctx.dqbf.matrix(),
        SamplerConfig {
            seed: ctx.config.seed,
            shards,
            ..SamplerConfig::default()
        },
        ctx.config.num_samples,
    );
    ctx.samples = samples;
    ctx.stats.samples = ctx.samples.len();
    ctx.stats.sample_shards = shards;
    ctx.stats.sampling_time = sampling_start.elapsed();
    if ctx.samples.is_empty() {
        // The matrix check already succeeded, so the shortfall reason tells
        // the truth: the sampler proved UNSAT itself (possible when budgets
        // differ), lost a race, or ran out of budget.
        return Some(match outcome.reason {
            Some(ShortfallReason::Unsat) => SynthesisOutcome::Unrealizable,
            Some(ShortfallReason::Cancelled) => SynthesisOutcome::Unknown(UnknownReason::Cancelled),
            Some(ShortfallReason::Budget) | None => ctx.give_up(),
        });
    }
    None
}

/// Pipeline stage 3 — **Learn**: per undefined output, learn a candidate
/// decision tree over its allowed features and record the inter-candidate
/// dependencies it introduces.
fn stage_learn(ctx: &mut SynthesisCtx<'_>) -> Option<SynthesisOutcome> {
    let learning_start = Instant::now();
    for &yi in ctx.dqbf.existentials() {
        for &yj in ctx.dqbf.existentials() {
            if yi == yj {
                continue;
            }
            let hi = ctx.dqbf.dependencies(yi);
            let hj = ctx.dqbf.dependencies(yj);
            if hj.is_subset(hi) && hj != hi {
                // H_j ⊂ H_i ⇒ y_i may depend on y_j (Algorithm 1, lines 3–5).
                ctx.dependency_state.record_subset_constraint(yi, yj);
            }
        }
    }
    for &y in ctx.dqbf.existentials() {
        if ctx.defined.contains(&y) {
            continue;
        }
        // The oracle-routed sampler always emits matrix-width assignments,
        // so a narrow sample here is an internal contract violation — fail
        // loudly instead of learning from silently mislabelled rows.
        let learned = learn_candidate(
            ctx.dqbf,
            &ctx.samples,
            y,
            &ctx.dependency_state,
            &mut ctx.vector,
            ctx.config,
        )
        .unwrap_or_else(|err| panic!("sampler→learn boundary violated: {err}"));
        debug_assert!(learned.tree_splits <= ctx.config.tree.max_depth * ctx.samples.len() + 1);
        ctx.vector.set(y, learned.function);
        for supplier in learned.used_existentials {
            ctx.dependency_state.record_dependency(y, supplier);
        }
        ctx.stats.candidates_learned += 1;
    }
    ctx.stats.learning_time = learning_start.elapsed();
    None
}

/// Pipeline stage 4 — **Order**: linearise the learned dependencies.
fn stage_order(ctx: &mut SynthesisCtx<'_>) -> Option<SynthesisOutcome> {
    let order = Order::from_dependencies(ctx.dqbf.existentials(), &ctx.dependency_state);
    debug_assert_eq!(order.sequence().len(), ctx.dqbf.existentials().len());
    ctx.order = Some(order);
    None
}

/// Pipeline stage 5 — **VerifyRepair**: the CEGIS loop on the persistent
/// twin sessions. Verification re-solves the incrementally maintained error
/// formula under activation assumptions; FindCandidates re-solves the
/// persistent MaxSAT encoding under counterexample assumptions; repair adds
/// clauses and swaps activation literals — no solver or encoding is ever
/// reconstructed inside the loop.
fn stage_verify_repair(ctx: &mut SynthesisCtx<'_>) -> SynthesisOutcome {
    // invariant: the stage pipeline runs preprocess and ordering before
    // verify/repair; both stages stored their artifacts in ctx.
    let mut session = ctx.session.take().expect("preprocess ran");
    let order = ctx.order.take().expect("order ran");

    for _ in 0..ctx.config.max_repair_iterations {
        if let Some(reason) = ctx.oracle.exhausted() {
            return SynthesisOutcome::Unknown(reason);
        }
        let verification_start = Instant::now();
        ctx.stats.verification_checks += 1;
        let verdict = session.verify(ctx.dqbf, &ctx.vector, &mut ctx.oracle);
        ctx.stats.verification_time += verification_start.elapsed();
        let delta = match verdict {
            VerifyOutcome::Valid => {
                // Success: expand inter-candidate references so every
                // function is over its Henkin dependencies only
                // (Algorithm 1, line 19).
                let mut vector = std::mem::take(&mut ctx.vector);
                vector.substitute_down(&order.substitution_order());
                debug_assert_eq!(vector.dependency_violation(ctx.dqbf), None);
                return SynthesisOutcome::Realizable(vector);
            }
            VerifyOutcome::Budget => return ctx.give_up(),
            VerifyOutcome::CounterExample(delta) => delta,
        };

        // Can δ[X] be extended to a model of ϕ? (Algorithm 1, line 13.)
        let x_assumptions: Vec<Lit> = ctx
            .dqbf
            .universals()
            .iter()
            .map(|&x| x.lit(delta.x.get(&x).copied().unwrap_or(false)))
            .collect();
        let pi = match session.solve_phi(&mut ctx.oracle, &x_assumptions) {
            SolveResult::Unsat => return SynthesisOutcome::Unrealizable,
            SolveResult::Unknown => return ctx.give_up(),
            SolveResult::Sat => session.phi_model(),
        };

        let repair_start = Instant::now();
        ctx.stats.repair_iterations += 1;
        let mut sigma = Sigma {
            x: delta.x,
            y: ctx
                .dqbf
                .existentials()
                .iter()
                .map(|&y| (y, pi.get(y).unwrap_or(false)))
                .collect(),
            y_prime: delta.y_prime,
        };
        // The repair session opens on the first counterexample and serves
        // every later FindCandidates query under assumptions.
        if ctx.repair.is_none() {
            ctx.repair = Some(RepairSession::new(ctx.dqbf, &mut ctx.oracle));
        }
        // invariant: the branch above creates the session when absent.
        let repair_session = ctx.repair.as_mut().expect("repair session just opened");
        let candidates = find_candidates_to_repair(
            ctx.dqbf,
            &sigma,
            repair_session,
            &mut ctx.oracle,
            &mut ctx.stats,
        );
        let outcome = repair_vector(
            ctx.dqbf,
            ctx.config,
            &mut session,
            &mut ctx.oracle,
            &mut ctx.vector,
            &order,
            &mut sigma,
            candidates,
            &mut ctx.stats,
        );
        ctx.stats.repair_time += repair_start.elapsed();
        if outcome.stuck {
            // Distinguish the paper's algorithmic incompleteness from a
            // repair pass that was merely starved of oracle budget.
            if let Some(reason) = ctx.oracle.exhausted() {
                return SynthesisOutcome::Unknown(reason);
            }
            return SynthesisOutcome::Unknown(UnknownReason::RepairStuck);
        }
    }
    SynthesisOutcome::Unknown(UnknownReason::IterationLimit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_dqbf::verify::check;

    fn synthesize(dqbf: &Dqbf) -> SynthesisResult {
        Manthan3::new(Manthan3Config::fast()).synthesize(dqbf)
    }

    #[test]
    fn solves_the_paper_example() {
        let dqbf = Dqbf::paper_example();
        let result = synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Realizable(vector) => {
                assert!(check(&dqbf, &vector).is_valid());
            }
            other => panic!("expected Realizable, got {other:?}"),
        }
        assert!(result.stats.samples > 0);
    }

    #[test]
    fn solves_simple_skolem_instance() {
        // ∀x1 x2 ∃y (Skolem): y ↔ (x1 ⊕ x2).
        let (x1, x2, y) = (Var::new(0), Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y, [x1, x2]);
        dqbf.add_clause([y.negative(), x1.positive(), x2.positive()]);
        dqbf.add_clause([y.negative(), x1.negative(), x2.negative()]);
        dqbf.add_clause([y.positive(), x1.positive(), x2.negative()]);
        dqbf.add_clause([y.positive(), x1.negative(), x2.positive()]);
        let result = synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Realizable(vector) => {
                assert!(check(&dqbf, &vector).is_valid());
                // The unique-definition preprocessing should have picked this
                // up without any repair iterations.
                assert_eq!(result.stats.unique_definitions, 1);
            }
            other => panic!("expected Realizable, got {other:?}"),
        }
    }

    #[test]
    fn reports_false_instances_as_unrealizable() {
        // ∀x ∃^{x}y. (¬x) ∧ y is false, and the X-extension check
        // (Algorithm 1, line 13) detects it: for x = 1 the matrix has no
        // model at all.
        let (x, y) = (Var::new(0), Var::new(1));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x]);
        dqbf.add_clause([x.negative()]);
        dqbf.add_clause([y.positive()]);
        let result = synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
    }

    #[test]
    fn dependency_restricted_false_instance_is_not_misreported() {
        // ∀x1 x2 ∃^{x1}y. (y ↔ x2) is false, but every σ[X] extends to a
        // model of ϕ, so Manthan3 cannot prove falsity; per the paper it must
        // end in the incompleteness case (repair stuck), never claim a
        // Henkin vector.
        let (x1, x2, y) = (Var::new(0), Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y, [x1]);
        dqbf.add_clause([y.negative(), x2.positive()]);
        dqbf.add_clause([y.positive(), x2.negative()]);
        let result = synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Unknown(_) | SynthesisOutcome::Unrealizable => {}
            SynthesisOutcome::Realizable(_) => panic!("false instance cannot be realizable"),
        }
    }

    #[test]
    fn unsatisfiable_matrix_is_unrealizable() {
        let (x, y) = (Var::new(0), Var::new(1));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x]);
        dqbf.add_clause([y.positive()]);
        dqbf.add_clause([y.negative()]);
        let result = synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
    }

    #[test]
    fn time_budget_is_honoured() {
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config {
            time_budget: Some(std::time::Duration::ZERO),
            ..Manthan3Config::fast()
        };
        let result = Manthan3::new(config).synthesize(&dqbf);
        // Either it was solved before the first deadline check (preprocessing
        // can already produce a full vector) or the budget fired.
        match result.outcome {
            SynthesisOutcome::Realizable(_)
            | SynthesisOutcome::Unknown(UnknownReason::TimeBudget) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn call_budget_is_honoured() {
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config {
            sat_call_budget: Some(1),
            ..Manthan3Config::fast()
        };
        let result = Manthan3::new(config).synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Unknown(UnknownReason::OracleBudget) => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(result.stats.oracle.sat_calls <= 1);
    }

    #[test]
    fn final_functions_respect_dependencies() {
        let dqbf = Dqbf::paper_example();
        let result = synthesize(&dqbf);
        if let SynthesisOutcome::Realizable(vector) = result.outcome {
            assert_eq!(vector.dependency_violation(&dqbf), None);
        } else {
            panic!("expected Realizable");
        }
    }

    #[test]
    fn oracle_stats_reflect_session_reuse() {
        let dqbf = Dqbf::paper_example();
        let result = synthesize(&dqbf);
        assert!(result.outcome.is_realizable());
        let oracle = &result.stats.oracle;
        // Whatever the number of verify/repair iterations, the run builds
        // exactly one matrix solver and one error-formula solver.
        assert_eq!(oracle.sat_solvers_constructed, 2);
        assert_eq!(oracle.samplers_constructed, 1);
        assert!(oracle.sat_calls >= result.stats.verification_checks);
        // The MaxSAT side mirrors it: at most one hard encoding (exactly one
        // once any repair iteration ran), every FindCandidates call served
        // under assumptions on it.
        assert!(oracle.maxsat_hard_encodings <= 1);
        if result.stats.repair_iterations > 0 {
            assert_eq!(oracle.maxsat_hard_encodings, 1);
            assert_eq!(oracle.maxsat_solvers_constructed, 1);
            assert_eq!(oracle.maxsat_incremental_calls, oracle.maxsat_calls);
        } else {
            // No counterexample: the repair session is never even opened.
            assert_eq!(oracle.maxsat_hard_encodings, 0);
            assert_eq!(oracle.maxsat_solvers_constructed, 0);
        }
    }

    /// The repair strategy is threaded Config → Oracle → RepairSession: a
    /// core-guided run solves the paper example with the same session-reuse
    /// shape as the linear default, and a cancelled run surfaces
    /// [`UnknownReason::Cancelled`] — never a best-so-far repair verdict.
    #[test]
    fn core_guided_repair_strategy_synthesizes_and_reports_cancellation() {
        use manthan3_maxsat::RepairStrategy;
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config {
            repair_strategy: RepairStrategy::CoreGuided,
            ..Manthan3Config::fast()
        };
        let result = Manthan3::new(config.clone()).synthesize(&dqbf);
        match &result.outcome {
            SynthesisOutcome::Realizable(vector) => {
                assert!(check(&dqbf, vector).is_valid());
            }
            other => panic!("expected Realizable, got {other:?}"),
        }
        let oracle = &result.stats.oracle;
        assert!(oracle.maxsat_hard_encodings <= 1);
        assert_eq!(oracle.maxsat_incremental_calls, oracle.maxsat_calls);
        if result.stats.repair_iterations > 0 {
            assert!(
                oracle.maxsat_cores > 0,
                "a repair-exercising core-guided run must extract cores"
            );
        }

        // A pre-cancelled budget: the engine reports cancellation, not a
        // half-searched repair outcome.
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let cancelled = Manthan3::new(config).synthesize_with_budget(&dqbf, budget);
        assert!(matches!(
            cancelled.outcome,
            SynthesisOutcome::Unknown(UnknownReason::Cancelled)
        ));
    }

    /// Certification is threaded Config → Oracle: a certifying run checks
    /// every UNSAT verdict of its pipeline in-process (a successful run has
    /// at least one — the closing error-formula refutation of the final
    /// verify), rejects none, and surfaces no retained failure.
    #[test]
    fn certifying_runs_check_their_unsat_verdicts() {
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config {
            certify: true,
            ..Manthan3Config::fast()
        };
        let result = Manthan3::new(config).synthesize(&dqbf);
        match &result.outcome {
            SynthesisOutcome::Realizable(vector) => assert!(check(&dqbf, vector).is_valid()),
            other => panic!("expected Realizable, got {other:?}"),
        }
        let oracle = &result.stats.oracle;
        assert!(
            oracle.certificates_checked > 0,
            "a successful run ends on an UNSAT verify verdict; it must be certified"
        );
        assert_eq!(oracle.certificates_rejected, 0);
        assert!(oracle.proof_bytes > 0);
        assert!(result.stats.certification_failure.is_none());

        // The default leaves certification (and its counters) off.
        let plain = Manthan3::new(Manthan3Config::fast()).synthesize(&dqbf);
        assert_eq!(plain.stats.oracle.certificates_checked, 0);
        assert_eq!(plain.stats.oracle.proof_bytes, 0);
    }

    #[test]
    fn certifying_runs_certify_unrealizable_verdicts() {
        // Unsatisfiable matrix: the preprocess stage's matrix check is the
        // UNSAT verdict, and it must carry an accepted certificate.
        let (x, y) = (Var::new(0), Var::new(1));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x]);
        dqbf.add_clause([y.positive()]);
        dqbf.add_clause([y.negative()]);
        let config = Manthan3Config {
            certify: true,
            ..Manthan3Config::fast()
        };
        let result = Manthan3::new(config).synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
        assert!(result.stats.oracle.certificates_checked > 0);
        assert_eq!(result.stats.oracle.certificates_rejected, 0);
    }

    #[test]
    fn skolem_xor_chain_is_synthesized() {
        // ∀x1..x3 ∃y1 y2 (full dependencies): y1 ↔ x1⊕x2, y2 ↔ y1⊕x3 encoded
        // via CNF; tests the learning + repair loop on a slightly larger
        // instance with Y-to-Y structure.
        let x: Vec<Var> = (0..3).map(Var::new).collect();
        let y1 = Var::new(3);
        let y2 = Var::new(4);
        let mut dqbf = Dqbf::new();
        for &xi in &x {
            dqbf.add_universal(xi);
        }
        dqbf.add_existential(y1, x.iter().copied());
        dqbf.add_existential(y2, x.iter().copied());
        // y1 ↔ x1 ⊕ x2
        dqbf.add_clause([y1.negative(), x[0].positive(), x[1].positive()]);
        dqbf.add_clause([y1.negative(), x[0].negative(), x[1].negative()]);
        dqbf.add_clause([y1.positive(), x[0].positive(), x[1].negative()]);
        dqbf.add_clause([y1.positive(), x[0].negative(), x[1].positive()]);
        // y2 ↔ y1 ⊕ x3
        dqbf.add_clause([y2.negative(), y1.positive(), x[2].positive()]);
        dqbf.add_clause([y2.negative(), y1.negative(), x[2].negative()]);
        dqbf.add_clause([y2.positive(), y1.positive(), x[2].negative()]);
        dqbf.add_clause([y2.positive(), y1.negative(), x[2].positive()]);
        let result = synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Realizable(vector) => {
                assert!(check(&dqbf, &vector).is_valid());
            }
            other => panic!("expected Realizable, got {other:?}"),
        }
    }
}
