//! `CandidateHkF`: learning candidate functions from samples
//! (Algorithm 2 of the paper).

use crate::config::Manthan3Config;
use crate::order::DependencyState;
use manthan3_aig::AigRef;
use manthan3_cnf::{Assignment, Var};
use manthan3_dqbf::{Dqbf, HenkinVector};
use manthan3_dtree::{Dataset, DecisionTree};
use std::fmt;

/// A training sample did not cover a variable the learner needs.
///
/// The sampler→learn boundary contract is that every training assignment is
/// at least as wide as the matrix, so each feature and each label variable
/// has a real valuation. Silently defaulting a missing variable to `false`
/// would mislabel training rows (and thereby bias every candidate learned
/// from the batch), so the learner refuses the batch instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NarrowSampleError {
    /// Index of the offending sample in the training batch.
    pub sample_index: usize,
    /// The variable the sample does not cover.
    pub missing: Var,
    /// The sample's actual width (number of variables it assigns).
    pub width: usize,
}

impl fmt::Display for NarrowSampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "training sample {} is too narrow: it assigns {} variables but the learner \
             needs a valuation for {:?}",
            self.sample_index, self.width, self.missing
        )
    }
}

impl std::error::Error for NarrowSampleError {}

/// The result of learning one candidate function.
#[derive(Debug, Clone)]
pub struct LearnedCandidate {
    /// The candidate function (over the features actually used by the tree).
    pub function: AigRef,
    /// Existential variables that appear in the candidate; the caller must
    /// record them in the dependency state (Algorithm 2, lines 11–12).
    pub used_existentials: Vec<Var>,
    /// Number of decision nodes of the learned tree (diagnostics).
    pub tree_splits: usize,
}

/// Computes the feature set for learning `f_y`: the Henkin dependencies of
/// `y` plus — when enabled — every other existential `y_j` with `H_j ⊆ H_y`
/// that does not already depend on `y` (Algorithm 2, lines 1–4).
pub fn feature_set(
    dqbf: &Dqbf,
    y: Var,
    dependency_state: &DependencyState,
    config: &Manthan3Config,
) -> Vec<Var> {
    let deps = dqbf.dependencies(y);
    let mut features: Vec<Var> = deps.iter().copied().collect();
    if config.use_y_features {
        for &other in dqbf.existentials() {
            if other == y {
                continue;
            }
            if dqbf.dependencies(other).is_subset(deps)
                && dependency_state.allowed_as_feature(y, other)
            {
                features.push(other);
            }
        }
    }
    features
}

/// Learns a candidate function for `y` from the sampled assignments
/// (Algorithm 2).
///
/// The candidate is built into `vector`'s shared AIG as the disjunction of
/// all decision-tree paths ending in a leaf labelled 1; the AIG inputs are
/// labelled with the indices of the corresponding formula variables.
///
/// # Errors
///
/// Returns [`NarrowSampleError`] when a sample does not assign every feature
/// variable or the label `y` — a violation of the sampler→learn boundary
/// contract that would otherwise silently mislabel training rows.
pub fn learn_candidate(
    dqbf: &Dqbf,
    samples: &[Assignment],
    y: Var,
    dependency_state: &DependencyState,
    vector: &mut HenkinVector,
    config: &Manthan3Config,
) -> Result<LearnedCandidate, NarrowSampleError> {
    let features = feature_set(dqbf, y, dependency_state, config);
    let mut dataset = Dataset::new(features.len());
    for (sample_index, sample) in samples.iter().enumerate() {
        let require = |v: Var| {
            sample.get(v).ok_or(NarrowSampleError {
                sample_index,
                missing: v,
                width: sample.len(),
            })
        };
        let row: Vec<bool> = features
            .iter()
            .map(|&v| require(v))
            .collect::<Result<_, _>>()?;
        let label = require(y)?;
        dataset.push(row, label);
    }
    let tree = DecisionTree::learn(&dataset, &config.tree);

    // Disjunction over all paths to label 1 (Algorithm 2, lines 7–10).
    let mut cubes = Vec::new();
    for path in tree.paths_to(true) {
        let lits: Vec<AigRef> = path
            .iter()
            .map(|pl| {
                let input = vector.aig_mut().input(features[pl.feature].index());
                if pl.value {
                    input
                } else {
                    !input
                }
            })
            .collect();
        let cube = vector.aig_mut().and_list(&lits);
        cubes.push(cube);
    }
    let function = vector.aig_mut().or_list(&cubes);

    let used_existentials: Vec<Var> = tree
        .used_features()
        .into_iter()
        .map(|i| features[i])
        .filter(|v| dqbf.is_existential(*v))
        .collect();

    Ok(LearnedCandidate {
        function,
        used_existentials,
        tree_splits: tree.num_splits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples_from_bits(num_vars: usize, rows: &[u32]) -> Vec<Assignment> {
        rows.iter()
            .map(|&bits| {
                Assignment::from_values((0..num_vars).map(|i| bits >> i & 1 == 1).collect())
            })
            .collect()
    }

    #[test]
    fn feature_set_respects_henkin_dependencies() {
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config::default();
        let state = DependencyState::new(dqbf.existentials());
        // y1 (var 3) may only see x1 (var 0); y2/y3 have incomparable or
        // superset dependency sets, so none of them is added for y1.
        let f1 = feature_set(&dqbf, Var::new(3), &state, &config);
        assert_eq!(f1, vec![Var::new(0)]);
        // y2 (var 4) sees {x1, x2} and y1 (H1 ⊂ H2).
        let f2 = feature_set(&dqbf, Var::new(4), &state, &config);
        assert!(f2.contains(&Var::new(0)));
        assert!(f2.contains(&Var::new(1)));
        assert!(f2.contains(&Var::new(3)));
        assert!(!f2.contains(&Var::new(5)));
    }

    #[test]
    fn feature_set_excludes_cyclic_candidates() {
        let dqbf = Dqbf::xor_limitation_example();
        let config = Manthan3Config::default();
        let mut state = DependencyState::new(dqbf.existentials());
        // Suppose y2 (var 4) already depends on y1 (var 3): then y1's feature
        // set may not include y2 — and since H1 != H2 anyway, neither
        // includes the other here.
        state.record_dependency(Var::new(4), Var::new(3));
        let f1 = feature_set(&dqbf, Var::new(3), &state, &config);
        assert!(!f1.contains(&Var::new(4)));
    }

    #[test]
    fn disabling_y_features_restricts_to_dependencies() {
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config {
            use_y_features: false,
            ..Manthan3Config::default()
        };
        let state = DependencyState::new(dqbf.existentials());
        let f2 = feature_set(&dqbf, Var::new(4), &state, &config);
        assert_eq!(f2, vec![Var::new(0), Var::new(1)]);
    }

    #[test]
    fn learns_the_paper_example_candidates() {
        // Samples from Figure 2 of the paper (variables x1..x3, y1..y3).
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config::default();
        let state = DependencyState::new(dqbf.existentials());
        // rows: (x1,x2,x3,y1,y2,y3) = (0,0,0,1,1,0), (0,0,1,1,1,1), (1,1,0,0,0,1)
        let samples = samples_from_bits(6, &[0b011000, 0b111100, 0b100011]);
        let mut vector = HenkinVector::new();

        let c1 = learn_candidate(&dqbf, &samples, Var::new(3), &state, &mut vector, &config)
            .expect("full-width samples");
        vector.set(Var::new(3), c1.function);
        // f1 = ¬x1 on these samples.
        assert_eq!(
            vector.eval_one(Var::new(3), &[false, false, false]),
            Some(true)
        );
        assert_eq!(
            vector.eval_one(Var::new(3), &[true, false, false]),
            Some(false)
        );

        let c3 = learn_candidate(&dqbf, &samples, Var::new(5), &state, &mut vector, &config)
            .expect("full-width samples");
        vector.set(Var::new(5), c3.function);
        // f3 = x2 ∨ x3 on these samples.
        for bits in 0..8u32 {
            let values: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                vector.eval_one(Var::new(5), &values),
                Some(values[1] || values[2])
            );
        }
        assert!(c3.used_existentials.is_empty());
    }

    #[test]
    fn used_existentials_are_reported() {
        // Make y2's value equal y1 in every sample so the tree uses y1.
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config::default();
        let state = DependencyState::new(dqbf.existentials());
        let samples = samples_from_bits(6, &[0b011000, 0b111100, 0b000011, 0b100111]);
        let mut vector = HenkinVector::new();
        let c2 = learn_candidate(&dqbf, &samples, Var::new(4), &state, &mut vector, &config)
            .expect("full-width samples");
        // The candidate may or may not use y1, but any reported existential
        // must come from the allowed feature set.
        for v in &c2.used_existentials {
            assert_eq!(*v, Var::new(3));
        }
    }

    #[test]
    fn narrow_samples_are_a_hard_error_not_a_false_default() {
        // A sample covering only the universals (width 3) must not be
        // silently extended with `false` for the label y1 (var 3): the
        // learner refuses the batch with a diagnostic instead.
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config::default();
        let state = DependencyState::new(dqbf.existentials());
        let mut samples = samples_from_bits(6, &[0b011000, 0b111100]);
        samples.push(Assignment::from_values(vec![true, false, true]));
        let mut vector = HenkinVector::new();
        let err = learn_candidate(&dqbf, &samples, Var::new(3), &state, &mut vector, &config)
            .expect_err("narrow sample must be rejected");
        assert_eq!(err.sample_index, 2);
        assert_eq!(err.missing, Var::new(3));
        assert_eq!(err.width, 3);
        assert!(err.to_string().contains("too narrow"));
    }

    #[test]
    fn constant_labels_give_constant_candidates() {
        let dqbf = Dqbf::paper_example();
        let config = Manthan3Config::default();
        let state = DependencyState::new(dqbf.existentials());
        // y3 is 1 in every sample.
        let samples = samples_from_bits(6, &[0b100000, 0b100001, 0b100010]);
        let mut vector = HenkinVector::new();
        let c = learn_candidate(&dqbf, &samples, Var::new(5), &state, &mut vector, &config)
            .expect("full-width samples");
        vector.set(Var::new(5), c.function);
        assert_eq!(vector.eval_one(Var::new(5), &[false; 6]), Some(true));
        assert_eq!(c.tree_splits, 0);
    }
}
