//! `RepairHkF`: counterexample-guided candidate repair
//! (Algorithm 3 of the paper).
//!
//! All SAT and MaxSAT queries run through the synthesis run's [`Oracle`],
//! and both run on persistent sessions: the FindCandidates MaxSAT queries
//! are answered by the [`RepairSession`]'s incremental assumption-based
//! encoding (built once per run), and the `G_k` queries (whose UNSAT cores
//! become repair cubes) by the [`VerifySession`]'s incremental matrix
//! solver — repair never constructs a solver or an encoding of its own.
//! [`find_candidates_from_scratch`] keeps the pre-incremental
//! rebuild-per-call path alive as the reference for the equivalence suite
//! and the `repair_incremental` benchmark baseline.

use crate::config::Manthan3Config;
use crate::oracle::Oracle;
use crate::order::Order;
use crate::session::{RepairSession, VerifySession};
use crate::stats::SynthesisStats;
use manthan3_aig::AigRef;
use manthan3_cnf::{Lit, Var};
use manthan3_dqbf::{Dqbf, HenkinVector};
use manthan3_maxsat::MaxSatResult;
use manthan3_sat::SolveResult;
use std::collections::{BTreeMap, BTreeSet};

/// The counterexample `σ = π[X] + π[Y] + δ[Y']` of Algorithm 1, line 16.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sigma {
    /// `σ[X]`: the universal assignment of the counterexample.
    pub x: BTreeMap<Var, bool>,
    /// `σ[Y]`: an extension of `σ[X]` that satisfies ϕ (`π[Y]`).
    pub y: BTreeMap<Var, bool>,
    /// `σ[Y']`: the outputs of the current candidate functions (`δ[Y']`).
    pub y_prime: BTreeMap<Var, bool>,
}

/// Outcome of one repair pass over a counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Candidates that were actually strengthened/weakened.
    pub repaired: Vec<Var>,
    /// `true` if no candidate could be repaired — the incompleteness case
    /// discussed in §5 of the paper.
    pub stuck: bool,
}

/// Runs `FindCandi` (Algorithm 3, line 2): a MaxSAT query with
/// `ϕ ∧ (X ↔ σ[X])` as hard constraints and `(Y ↔ σ[Y'])` as soft
/// constraints; returns the outputs whose soft constraint was dropped.
///
/// Served by the persistent `session` entirely under assumptions — the
/// encoding was built once when the session opened, so per-call cost tracks
/// the counterexample, not the formula.
pub fn find_candidates_to_repair(
    dqbf: &Dqbf,
    sigma: &Sigma,
    session: &mut RepairSession,
    oracle: &mut Oracle,
    stats: &mut SynthesisStats,
) -> Vec<Var> {
    session.find_candidates(dqbf, sigma, oracle, stats)
}

/// The pre-incremental `FindCandi`: rebuilds the whole hard-clause MaxSAT
/// encoding (matrix, `σ[X]` units, soft clauses, totalizer) on every call.
/// Kept as the reference implementation for the repair-equivalence suite
/// and as the baseline of the `repair_incremental` benchmark; the engine
/// itself always runs on the [`RepairSession`].
pub fn find_candidates_from_scratch(
    dqbf: &Dqbf,
    sigma: &Sigma,
    oracle: &mut Oracle,
    stats: &mut SynthesisStats,
) -> Vec<Var> {
    let mut maxsat = oracle.new_maxsat();
    oracle.note_maxsat_hard_encoding();
    maxsat.add_hard_cnf(dqbf.matrix());
    for (&x, &value) in &sigma.x {
        maxsat.add_hard([x.lit(value)]);
    }
    let mut soft_vars = Vec::new();
    for &y in dqbf.existentials() {
        let target = sigma.y_prime.get(&y).copied().unwrap_or(false);
        let id = maxsat.add_soft([y.lit(target)], 1);
        soft_vars.push((id, y));
    }
    stats.maxsat_calls += 1;
    match oracle.solve_maxsat(&mut maxsat) {
        MaxSatResult::Optimum { .. } => {
            let violated: BTreeSet<_> = maxsat.violated_softs().into_iter().collect();
            soft_vars
                .into_iter()
                .filter(|(id, _)| violated.contains(id))
                .map(|(_, y)| y)
                .collect()
        }
        // The engine only calls this after establishing that σ[X] can be
        // extended to a model of ϕ, so the hard part is satisfiable; if the
        // oracle is budgeted out (or cancelled) we fall back to "repair
        // every output whose candidate output differs from the witness
        // extension" — the engine re-checks the oracle before acting on it.
        MaxSatResult::HardUnsat | MaxSatResult::Unknown | MaxSatResult::Cancelled => dqbf
            .existentials()
            .iter()
            .copied()
            .filter(|y| sigma.y.get(y) != sigma.y_prime.get(y))
            .collect(),
    }
}

/// Computes `Ŷ` for a repair target `y_k` (Formula 1): existentials whose
/// dependency set is contained in `H_k` and that appear **after** `y_k` in
/// the order.
pub fn y_hat(dqbf: &Dqbf, order: &Order, target: Var, config: &Manthan3Config) -> Vec<Var> {
    if !config.constrain_y_hat {
        return Vec::new();
    }
    let deps = dqbf.dependencies(target);
    dqbf.existentials()
        .iter()
        .copied()
        .filter(|&other| {
            other != target
                && dqbf.dependencies(other).is_subset(deps)
                && order.position(other) > order.position(target)
        })
        .collect()
}

/// Repairs the candidate vector against the counterexample `sigma`
/// (Algorithm 3), starting from the `candidates` selected by a
/// FindCandidates query ([`find_candidates_to_repair`] on the persistent
/// session, or [`find_candidates_from_scratch`] for reference runs). The
/// `G_k` queries are answered by `session`'s persistent matrix solver under
/// assumptions, so the UNSAT cores come from the same incremental session as
/// the verification checks, and repair only extends the vector's AIG — it
/// never rebuilds a solver or an encoding.
#[allow(clippy::too_many_arguments)]
pub fn repair_vector(
    dqbf: &Dqbf,
    config: &Manthan3Config,
    session: &mut VerifySession,
    oracle: &mut Oracle,
    vector: &mut HenkinVector,
    order: &Order,
    sigma: &mut Sigma,
    candidates: Vec<Var>,
    stats: &mut SynthesisStats,
) -> RepairOutcome {
    let mut queue: Vec<Var> = candidates;
    let mut queued: BTreeSet<Var> = queue.iter().copied().collect();
    let mut repaired = Vec::new();
    let mut processed = 0usize;
    let mut index = 0usize;

    while index < queue.len() && processed < config.max_repairs_per_iteration {
        // A repair pass cut short by an exhausted budget must not look like
        // the algorithmic stuck case; the engine re-checks the oracle and
        // reports the budget reason.
        if oracle.exhausted().is_some() {
            break;
        }
        let yk = queue[index];
        index += 1;
        processed += 1;

        let hat = y_hat(dqbf, order, yk, config);
        // G_k = ϕ ∧ (H_k ↔ σ[H_k]) ∧ (Ŷ ↔ σ[Ŷ']) ∧ (y_k ↔ σ[y'_k]),
        // expressed as assumptions so the UNSAT core is a subset of the unit
        // constraints (Formula 1).
        let target_value = sigma.y_prime.get(&yk).copied().unwrap_or(false);
        let mut assumptions: Vec<Lit> = vec![yk.lit(target_value)];
        for &d in dqbf.dependencies(yk) {
            assumptions.push(d.lit(sigma.x.get(&d).copied().unwrap_or(false)));
        }
        for &yj in &hat {
            assumptions.push(yj.lit(sigma.y_prime.get(&yj).copied().unwrap_or(false)));
        }
        let performed_before = oracle.stats().sat_calls;
        let result = session.solve_phi(oracle, &assumptions);
        // Only count G_k queries the oracle actually ran (a refused call
        // leaves the solver untouched).
        if oracle.stats().sat_calls > performed_before {
            stats.repair_sat_calls += 1;
        }
        match result {
            SolveResult::Unsat => {
                // The UNSAT core yields the repair cube β (Algorithm 3,
                // lines 11–13).
                let core: Vec<Lit> = session
                    .phi_unsat_core()
                    .iter()
                    .copied()
                    .filter(|l| l.var() != yk)
                    .collect();
                let beta = build_cube(vector, &core);
                // invariant: yk came from the vector's own output list.
                let current = vector.get(yk).expect("candidate exists");
                let new_function = if target_value {
                    // Output must change from 1 to 0 on the cube: strengthen.
                    vector.aig_mut().and(current, !beta)
                } else {
                    // Output must change from 0 to 1 on the cube: weaken.
                    vector.aig_mut().or(current, beta)
                };
                vector.set(yk, new_function);
                repaired.push(yk);
                stats.repairs_applied += 1;
                // Line 18: σ[y_k] ← σ[y'_k].
                sigma.y.insert(yk, target_value);
            }
            SolveResult::Sat => {
                // G_k is satisfiable: look for alternative candidates whose
                // current output disagrees with the witness (lines 15–17).
                let model = session.phi_model();
                let hat_set: BTreeSet<Var> = hat.into_iter().collect();
                for &yt in dqbf.existentials() {
                    if hat_set.contains(&yt) || queued.contains(&yt) {
                        continue;
                    }
                    let rho = model.get(yt).unwrap_or(false);
                    let candidate_output = sigma.y_prime.get(&yt).copied().unwrap_or(false);
                    if rho != candidate_output {
                        queue.push(yt);
                        queued.insert(yt);
                    }
                }
            }
            SolveResult::Unknown => {
                // Oracle budget exhausted; try the next candidate.
            }
        }
    }

    RepairOutcome {
        stuck: repaired.is_empty(),
        repaired,
    }
}

/// Builds the conjunction (cube) of the given unit literals inside the
/// vector's AIG; literal polarity is taken as-is (the literals already carry
/// the counterexample's valuation).
fn build_cube(vector: &mut HenkinVector, literals: &[Lit]) -> AigRef {
    let inputs: Vec<AigRef> = literals
        .iter()
        .map(|&l| {
            let input = vector.aig_mut().input(l.var().index());
            if l.is_positive() {
                input
            } else {
                !input
            }
        })
        .collect();
    vector.aig_mut().and_list(&inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Budget;
    use crate::order::DependencyState;

    fn x(i: u32) -> Var {
        Var::new(i)
    }
    fn y(i: u32) -> Var {
        Var::new(3 + i)
    }

    /// Builds the paper's worked example state right before the repair step:
    /// candidates f1 = ¬x1, f2 = y1, f3 = x3 ∨ (¬x3 ∧ x2) and the
    /// counterexample σ from Section 5.
    fn paper_repair_state() -> (Dqbf, HenkinVector, Order, Sigma) {
        let dqbf = Dqbf::paper_example();
        let mut vector = HenkinVector::new();
        let in_x1 = vector.aig_mut().input(x(0).index());
        let in_x2 = vector.aig_mut().input(x(1).index());
        let in_x3 = vector.aig_mut().input(x(2).index());
        let in_y1 = vector.aig_mut().input(y(0).index());
        vector.set(y(0), !in_x1);
        vector.set(y(1), in_y1);
        let part = vector.aig_mut().and(!in_x3, in_x2);
        let f3 = vector.aig_mut().or(in_x3, part);
        vector.set(y(2), f3);

        // Order = {y3, y2, y1} as in the paper: y2 references y1, so y2 comes
        // before y1; y3 is unrelated.
        let mut state = DependencyState::new(dqbf.existentials());
        state.record_dependency(y(1), y(0));
        let order = Order::from_dependencies(dqbf.existentials(), &state);

        // σ: x = (1,0,0); π[Y] = (1,1,0); δ[Y'] = (0,0,0).
        let sigma = Sigma {
            x: [(x(0), true), (x(1), false), (x(2), false)].into(),
            y: [(y(0), true), (y(1), true), (y(2), false)].into(),
            y_prime: [(y(0), false), (y(1), false), (y(2), false)].into(),
        };
        (dqbf, vector, order, sigma)
    }

    #[test]
    fn find_candidates_selects_y2_on_paper_example() {
        let (dqbf, _vector, _order, sigma) = paper_repair_state();
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut stats = SynthesisStats::default();
        let mut session = RepairSession::new(&dqbf, &mut oracle);
        let candidates =
            find_candidates_to_repair(&dqbf, &sigma, &mut session, &mut oracle, &mut stats);
        // With x = (1,0,0), ϕ forces y2 = y1 ∨ ¬x2 = y1 ∨ 1 = 1, so the soft
        // constraint y2 ↔ 0 must be dropped; y1 and y3 can keep their
        // candidate outputs (0 and 0).
        assert_eq!(candidates, vec![y(1)]);
        assert_eq!(stats.maxsat_calls, 1);
        assert_eq!(oracle.stats().maxsat_calls, 1);
        assert_eq!(oracle.stats().maxsat_incremental_calls, 1);
        assert_eq!(oracle.stats().maxsat_hard_encodings, 1);
    }

    #[test]
    fn from_scratch_reference_agrees_on_paper_example() {
        let (dqbf, _vector, _order, sigma) = paper_repair_state();
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut stats = SynthesisStats::default();
        let candidates = find_candidates_from_scratch(&dqbf, &sigma, &mut oracle, &mut stats);
        assert_eq!(candidates, vec![y(1)]);
        // The reference path pays a full hard encoding per call and is never
        // served under assumptions.
        assert_eq!(oracle.stats().maxsat_hard_encodings, 1);
        assert_eq!(oracle.stats().maxsat_incremental_calls, 0);
    }

    #[test]
    fn repeated_find_candidates_reuse_one_encoding() {
        let (dqbf, _vector, _order, sigma) = paper_repair_state();
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut stats = SynthesisStats::default();
        let mut session = RepairSession::new(&dqbf, &mut oracle);
        // A second counterexample with flipped targets: the previous call's
        // assumptions must be fully retracted.
        let mut flipped = sigma.clone();
        flipped.y_prime = [(y(0), true), (y(1), true), (y(2), true)].into();
        flipped.x = [(x(0), false), (x(1), true), (x(2), false)].into();
        for round in 0..6 {
            let s = if round % 2 == 0 { &sigma } else { &flipped };
            let _ = find_candidates_to_repair(&dqbf, s, &mut session, &mut oracle, &mut stats);
        }
        assert_eq!(oracle.stats().maxsat_hard_encodings, 1);
        assert_eq!(oracle.stats().maxsat_solvers_constructed, 1);
        assert_eq!(oracle.stats().maxsat_calls, 6);
        assert_eq!(oracle.stats().maxsat_incremental_calls, 6);
        // The alternating counterexamples stay deterministic: re-querying
        // the original sigma still selects y2 only.
        let again = find_candidates_to_repair(&dqbf, &sigma, &mut session, &mut oracle, &mut stats);
        assert_eq!(again, vec![y(1)]);
    }

    #[test]
    fn y_hat_respects_order_and_subsets() {
        let (dqbf, _vector, order, _sigma) = paper_repair_state();
        let config = Manthan3Config::default();
        // For y2 (deps {x1,x2}): y1 has H1 ⊂ H2 and appears after y2 in the
        // order, so Ŷ = {y1}; y3's dependency set is incomparable.
        assert_eq!(y_hat(&dqbf, &order, y(1), &config), vec![y(0)]);
        // Disabling the constraint empties Ŷ (the ablation).
        let ablated = Manthan3Config {
            constrain_y_hat: false,
            ..Manthan3Config::default()
        };
        assert!(y_hat(&dqbf, &order, y(1), &ablated).is_empty());
    }

    #[test]
    fn repair_fixes_the_paper_counterexample() {
        let (dqbf, mut vector, order, mut sigma) = paper_repair_state();
        let config = Manthan3Config::default();
        let mut stats = SynthesisStats::default();
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut session = VerifySession::new(&dqbf, &mut oracle);
        let mut repair_session = RepairSession::new(&dqbf, &mut oracle);

        let candidates =
            find_candidates_to_repair(&dqbf, &sigma, &mut repair_session, &mut oracle, &mut stats);
        let outcome = repair_vector(
            &dqbf,
            &config,
            &mut session,
            &mut oracle,
            &mut vector,
            &order,
            &mut sigma,
            candidates,
            &mut stats,
        );
        assert!(!outcome.stuck);
        assert_eq!(outcome.repaired, vec![y(1)]);
        // The repaired candidate now maps the counterexample input to 1, and
        // matches y1 ∨ ¬x2 everywhere y1 is given by f1 = ¬x1.
        let values = |x1: bool, x2: bool, x3: bool, y1: bool| {
            let mut v = vec![false; 6];
            v[0] = x1;
            v[1] = x2;
            v[2] = x3;
            v[3] = y1;
            v
        };
        assert_eq!(
            vector.eval_one(y(1), &values(true, false, false, false)),
            Some(true)
        );
        assert_eq!(stats.repairs_applied, 1);
        assert_eq!(sigma.y.get(&y(1)), Some(&false));
        // The repair query ran on the session's persistent matrix solver.
        assert_eq!(oracle.stats().sat_solvers_constructed, 2);
    }

    #[test]
    fn repair_reports_stuck_when_nothing_can_change() {
        // The XOR limitation example with candidates f1 = x2, f2 = ¬x2 and a
        // counterexample: no G_k is UNSAT because neither function may be
        // constrained by the other's output.
        let dqbf = Dqbf::xor_limitation_example();
        let config = Manthan3Config::default();
        let mut vector = HenkinVector::new();
        let in_x2 = vector.aig_mut().input(1);
        vector.set(Var::new(3), in_x2);
        vector.set(Var::new(4), !in_x2);
        let state = DependencyState::new(dqbf.existentials());
        let order = Order::from_dependencies(dqbf.existentials(), &state);
        let mut sigma = Sigma {
            x: [
                (Var::new(0), false),
                (Var::new(1), false),
                (Var::new(2), false),
            ]
            .into(),
            y: [(Var::new(3), false), (Var::new(4), false)].into(),
            y_prime: [(Var::new(3), false), (Var::new(4), true)].into(),
        };
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut session = VerifySession::new(&dqbf, &mut oracle);
        let mut repair_session = RepairSession::new(&dqbf, &mut oracle);
        let mut stats = SynthesisStats::default();
        let candidates =
            find_candidates_to_repair(&dqbf, &sigma, &mut repair_session, &mut oracle, &mut stats);
        let outcome = repair_vector(
            &dqbf,
            &config,
            &mut session,
            &mut oracle,
            &mut vector,
            &order,
            &mut sigma,
            candidates,
            &mut stats,
        );
        assert!(outcome.stuck);
        assert!(outcome.repaired.is_empty());
    }
}
