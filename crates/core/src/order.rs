//! `FindOrder`: turning the learned inter-output dependencies into a linear
//! order (Algorithm 1, line 8 of the paper).

use manthan3_cnf::Var;
use std::collections::{BTreeMap, BTreeSet};

/// The dependency bookkeeping `D` of Algorithm 1: `depends_on_me[y]` is the
/// set of existential variables that (transitively) depend on `y`, i.e. the
/// variables that are *not* allowed to appear inside `f_y`'s feature set.
///
/// Unlike the paper's pseudo-code, which only pushes `{y_i} ∪ d_i` into `d_k`
/// when `y_k` appears in `f_i`, this implementation maintains the full
/// transitive closure in both directions. Without the closure, chains of
/// outputs with *equal* dependency sets (e.g. the succinct-SAT family, where
/// every `H_i = ∅`) can build reference cycles such as
/// `y_4 → y_2 → y_0 → y_4`, which would make the final substitution step
/// unsound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencyState {
    /// Variables that (transitively) depend on the key (`d_i` in the paper).
    depends_on_me: BTreeMap<Var, BTreeSet<Var>>,
    /// Variables the key (transitively) depends on (the reverse relation).
    suppliers: BTreeMap<Var, BTreeSet<Var>>,
}

impl DependencyState {
    /// Initializes `D` for the given existential variables: every set starts
    /// empty (Algorithm 1, line 2).
    pub fn new(existentials: &[Var]) -> Self {
        DependencyState {
            depends_on_me: existentials.iter().map(|&y| (y, BTreeSet::new())).collect(),
            suppliers: existentials.iter().map(|&y| (y, BTreeSet::new())).collect(),
        }
    }

    /// Records that `dependent` depends on `supplier` (i.e. `supplier` may
    /// appear inside `f_dependent`) and updates the transitive closure
    /// (Algorithm 2, lines 11–12, strengthened as described on the type).
    pub fn record_dependency(&mut self, dependent: Var, supplier: Var) {
        // Everything that depends on `dependent` (plus itself) now also
        // depends on `supplier` and on everything `supplier` depends on.
        let mut dependents: BTreeSet<Var> = self
            .depends_on_me
            .get(&dependent)
            .cloned()
            .unwrap_or_default();
        dependents.insert(dependent);
        let mut suppliers: BTreeSet<Var> =
            self.suppliers.get(&supplier).cloned().unwrap_or_default();
        suppliers.insert(supplier);
        for &s in &suppliers {
            self.depends_on_me
                .entry(s)
                .or_default()
                .extend(dependents.iter().copied());
        }
        for &d in &dependents {
            self.suppliers
                .entry(d)
                .or_default()
                .extend(suppliers.iter().copied());
        }
    }

    /// Records the static constraint from Algorithm 1, lines 3–5: if
    /// `H_j ⊂ H_i` then `y_i` may depend on `y_j`, hence `y_i ∈ d_j`.
    pub fn record_subset_constraint(&mut self, may_depend: Var, supplier: Var) {
        if let Some(set) = self.depends_on_me.get_mut(&supplier) {
            set.insert(may_depend);
        }
    }

    /// Returns `true` if `candidate_feature` is allowed to appear in the
    /// feature set of `target`: it must not already (transitively) depend on
    /// `target`, and must not be `target` itself (Algorithm 2, line 3).
    pub fn allowed_as_feature(&self, target: Var, candidate_feature: Var) -> bool {
        if target == candidate_feature {
            return false;
        }
        match self.depends_on_me.get(&target) {
            Some(set) => !set.contains(&candidate_feature),
            None => true,
        }
    }

    /// The set of variables depending on `y`.
    pub fn dependents(&self, y: Var) -> BTreeSet<Var> {
        self.depends_on_me.get(&y).cloned().unwrap_or_default()
    }
}

/// A linear extension of the learned dependencies
/// (the `Order` of Algorithm 1, line 8).
///
/// Convention (matching the worked example in §5 of the paper): if `y_i`
/// depends on `y_j` (that is, `y_j` appears inside `f_i`), then `y_j` comes
/// **later** in the order — `position(y_i) < position(y_j)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Order {
    sequence: Vec<Var>,
    position: BTreeMap<Var, usize>,
}

impl Order {
    /// Computes a linear extension from the dependency state.
    ///
    /// The construction is a topological sort of the "depends on" relation;
    /// variables with no dependents come first. Ties are broken by variable
    /// index so the result is deterministic.
    pub fn from_dependencies(existentials: &[Var], state: &DependencyState) -> Self {
        // Edge y -> d for every d that depends on y means d must come BEFORE y.
        // Kahn's algorithm on the reversed relation.
        let mut remaining: BTreeSet<Var> = existentials.iter().copied().collect();
        let mut sequence = Vec::with_capacity(existentials.len());
        while !remaining.is_empty() {
            // Pick a variable none of whose dependents is still unplaced
            // *except* variables already known to be unplaceable (cycle
            // safety: fall back to the smallest remaining variable).
            let next = remaining
                .iter()
                .copied()
                .find(|&y| {
                    state
                        .dependents(y)
                        .iter()
                        .all(|d| !remaining.contains(d) || *d == y)
                })
                .or_else(|| remaining.iter().copied().next_back());
            let Some(y) = next else { break };
            // `y` has no unplaced dependents, so everything depending on it is
            // already in the sequence; place it next (dependents first).
            remaining.remove(&y);
            sequence.push(y);
        }
        let position = sequence.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        Order { sequence, position }
    }

    /// The variables in order (dependents first, suppliers later).
    pub fn sequence(&self) -> &[Var] {
        &self.sequence
    }

    /// Position of `y` in the order.
    ///
    /// # Panics
    ///
    /// Panics if `y` is not part of the order.
    pub fn position(&self, y: Var) -> usize {
        self.position[&y]
    }

    /// The order in which functions must be substituted into each other so
    /// that suppliers are expanded before their dependents
    /// (used by `HenkinVector::substitute_down`).
    pub fn substitution_order(&self) -> Vec<Var> {
        self.sequence.iter().rev().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn feature_permission_respects_dependencies() {
        let ys = [v(0), v(1), v(2)];
        let mut d = DependencyState::new(&ys);
        // y0 depends on y1 (y1 appears in f0).
        d.record_dependency(v(0), v(1));
        // Now y1 must not use y0 as a feature, but y2 may use either.
        assert!(!d.allowed_as_feature(v(1), v(0)));
        assert!(d.allowed_as_feature(v(0), v(2)));
        assert!(d.allowed_as_feature(v(2), v(0)));
        assert!(!d.allowed_as_feature(v(1), v(1)));
    }

    #[test]
    fn transitive_dependencies_are_propagated() {
        let ys = [v(0), v(1), v(2)];
        let mut d = DependencyState::new(&ys);
        d.record_dependency(v(0), v(1)); // f0 uses y1
        d.record_dependency(v(1), v(2)); // f1 uses y2
                                         // y2 now has both y1 and y0 as (transitive) dependents.
        let dependents = d.dependents(v(2));
        assert!(dependents.contains(&v(0)));
        assert!(dependents.contains(&v(1)));
        // Therefore y2 may not use y0 as a feature.
        assert!(!d.allowed_as_feature(v(2), v(0)));
    }

    #[test]
    fn subset_constraint_matches_algorithm1() {
        let ys = [v(0), v(1)];
        let mut d = DependencyState::new(&ys);
        // H_1 ⊂ H_0 ⇒ y0 may depend on y1 ⇒ y0 ∈ d_1.
        d.record_subset_constraint(v(0), v(1));
        assert!(d.dependents(v(1)).contains(&v(0)));
        assert!(!d.allowed_as_feature(v(1), v(0)));
        assert!(d.allowed_as_feature(v(0), v(1)));
    }

    #[test]
    fn order_places_dependents_first() {
        let ys = [v(0), v(1), v(2)];
        let mut d = DependencyState::new(&ys);
        d.record_dependency(v(1), v(0)); // f1 uses y0 ⇒ y1 before y0
        let order = Order::from_dependencies(&ys, &d);
        assert!(order.position(v(1)) < order.position(v(0)));
        assert_eq!(order.sequence().len(), 3);
    }

    #[test]
    fn substitution_order_is_reverse() {
        let ys = [v(0), v(1)];
        let mut d = DependencyState::new(&ys);
        d.record_dependency(v(0), v(1));
        let order = Order::from_dependencies(&ys, &d);
        let sub = order.substitution_order();
        // y1 (the supplier) must be substituted before y0 (the dependent).
        let pos_y1 = sub.iter().position(|&x| x == v(1)).unwrap();
        let pos_y0 = sub.iter().position(|&x| x == v(0)).unwrap();
        assert!(pos_y1 < pos_y0);
    }

    #[test]
    fn order_is_total_even_without_dependencies() {
        let ys = [v(5), v(3), v(9)];
        let d = DependencyState::new(&ys);
        let order = Order::from_dependencies(&ys, &d);
        assert_eq!(order.sequence().len(), 3);
        for &y in &ys {
            let _ = order.position(y);
        }
    }
}
