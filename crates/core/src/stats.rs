use crate::oracle::{CertificationFailure, OracleStats};
use std::time::Duration;

/// Counters and timings collected during one synthesis run.
///
/// The benchmark harness reports these per instance; the component
/// benchmarks in `manthan3-bench` exercise the phases individually. The
/// [`SynthesisStats::oracle`] field carries the unified oracle-layer
/// counters (solver constructions, SAT/MaxSAT calls, conflicts), which the
/// session-reuse regression tests assert on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthesisStats {
    /// Number of satisfying assignments used as training data.
    pub samples: usize,
    /// Number of shards the sampling stage ran across (1 = the plain
    /// single-threaded sampler).
    pub sample_shards: usize,
    /// Number of candidate functions learned from data.
    pub candidates_learned: usize,
    /// Number of functions obtained by unique-definition extraction.
    pub unique_definitions: usize,
    /// Number of verification (error-formula) SAT calls.
    pub verification_checks: usize,
    /// Number of counterexamples processed (repair iterations).
    pub repair_iterations: usize,
    /// Number of individual candidate repairs applied.
    pub repairs_applied: usize,
    /// Number of MaxSAT calls made by `FindCandi`.
    pub maxsat_calls: usize,
    /// Number of `G_k` SAT calls made during repair.
    pub repair_sat_calls: usize,
    /// Unified oracle-layer counters (shared with the baseline engines).
    pub oracle: OracleStats,
    /// Wall-clock time spent generating samples.
    pub sampling_time: Duration,
    /// Wall-clock time spent learning candidates.
    pub learning_time: Duration,
    /// Wall-clock time spent in verification checks.
    pub verification_time: Duration,
    /// Wall-clock time spent in the repair loop.
    pub repair_time: Duration,
    /// Total wall-clock time of the synthesis call.
    pub total_time: Duration,
    /// Number of output clusters the compositional engine synthesized
    /// concurrently (0 = the monolithic pipeline ran).
    pub clusters: usize,
    /// Per-cluster synthesis wall-clock times, in cluster order (empty for
    /// monolithic runs).
    pub cluster_walls: Vec<Duration>,
    /// The order (cluster indices) in which the compositional engine
    /// launched its clusters: most Padoa-defined outputs first, ties in
    /// cluster order. Empty for monolithic runs.
    pub cluster_schedule: Vec<usize>,
    /// The first rejected DRAT certificate of a certifying run
    /// ([`Manthan3Config::certify`](crate::Manthan3Config)), with the
    /// offending CNF and proof for offline reproduction. Always `None` on a
    /// sound run or when certification is off.
    pub certification_failure: Option<Box<CertificationFailure>>,
    /// Whole-formula verify calls made at composition time.
    pub compose_verifies: usize,
    /// Cross-cluster (coupled-residue) repair rounds at composition time.
    pub compose_repairs: usize,
}

impl SynthesisStats {
    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "samples={} shards={} learned={} defs={} iters={} repairs={} solvers={} \
             sat_calls={} total={:?}",
            self.samples,
            // 0 = the Sample stage never ran; don't disguise it as 1 shard.
            self.sample_shards,
            self.candidates_learned,
            self.unique_definitions,
            self.repair_iterations,
            self.repairs_applied,
            self.oracle.sat_solvers_constructed,
            self.oracle.sat_calls,
            self.total_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_counters() {
        let stats = SynthesisStats {
            samples: 10,
            repair_iterations: 3,
            ..SynthesisStats::default()
        };
        let s = stats.summary();
        assert!(s.contains("samples=10"));
        assert!(s.contains("iters=3"));
    }

    #[test]
    fn summary_reports_oracle_counters() {
        let stats = SynthesisStats {
            oracle: OracleStats {
                sat_solvers_constructed: 2,
                sat_calls: 17,
                ..OracleStats::default()
            },
            ..SynthesisStats::default()
        };
        let s = stats.summary();
        assert!(s.contains("solvers=2"));
        assert!(s.contains("sat_calls=17"));
    }
}
