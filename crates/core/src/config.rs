use manthan3_dtree::DecisionTreeConfig;
use manthan3_maxsat::RepairStrategy;
use manthan3_sat::{RestartPolicy, SolverProfile};
use std::time::Duration;

/// Configuration of the Manthan3 synthesis engine.
///
/// The defaults correspond to the settings described in the paper scaled to
/// the laptop-sized instances produced by `manthan3-gen`; the ablation
/// benchmarks flip the `use_*` switches.
#[derive(Debug, Clone, PartialEq)]
pub struct Manthan3Config {
    /// Number of satisfying assignments sampled as training data.
    pub num_samples: usize,
    /// Number of shards the sampling stage splits `num_samples` across
    /// (clamped to at least 1). Shards run on threads with derived seeds and
    /// independent adaptive-bias states, share the run's budget and
    /// cancellation token, and are combined by the sampler crate's
    /// bias-weighted merge; `1` keeps the single-threaded sampler.
    pub sample_shards: usize,
    /// Upper bound on verification/repair iterations before giving up.
    pub max_repair_iterations: usize,
    /// Upper bound on individual candidate repairs within one iteration.
    pub max_repairs_per_iteration: usize,
    /// Decision-tree hyper-parameters used for candidate learning.
    pub tree: DecisionTreeConfig,
    /// Random seed (sampling and tie-breaking).
    pub seed: u64,
    /// Run Padoa-based unique-definition extraction before learning
    /// (the role of the UNIQUE tool in the paper's implementation).
    pub use_unique_definitions: bool,
    /// Largest dependency-set size for which unique definitions are
    /// extracted explicitly.
    pub max_unique_definition_deps: usize,
    /// Allow other `Y` variables as decision-tree features when their
    /// dependency sets are subsets (Algorithm 2, line 3). Disabling this is
    /// the `learn-without-Y` ablation.
    pub use_y_features: bool,
    /// Constrain the repair formula `G_k` with the `Ŷ` variables
    /// (Formula 1). Disabling this is the paper's §5 discussion ablation.
    pub constrain_y_hat: bool,
    /// How the FindCandidates MaxSAT queries of the repair loop locate their
    /// optimum on the persistent [`RepairSession`](crate::RepairSession)
    /// encoding: the warm-started linear bound search (the default) or the
    /// core-guided (Fu–Malik/OLL) relaxation, which reaches the optimum in
    /// `#cores + 1` SAT probes however far the optimum jumps between
    /// counterexamples.
    pub repair_strategy: RepairStrategy,
    /// The solver-policy bundle every oracle-constructed SAT and MaxSAT
    /// solver starts from: the modernized defaults (EMA restarts,
    /// LBD-managed reduction, rephasing, incremental watcher repair,
    /// inter-call inprocessing) or the pre-modernization legacy behavior.
    /// The `solver_modernization` benchmark races the two.
    pub solver_profile: SolverProfile,
    /// Optional restart-policy override on top of the profile (`None` keeps
    /// the profile's policy). The portfolio's restart-racing dimension sets
    /// this per racer.
    pub restart_policy: Option<RestartPolicy>,
    /// Certify UNSAT verdicts in-process: every SAT and MaxSAT solver the
    /// oracle constructs logs DRAT proofs, and every UNSAT answer routed
    /// through the oracle is checked immediately by the independent
    /// `manthan3-drat` checker (threaded Config → [`Oracle`](crate::Oracle)
    /// via [`Oracle::with_certification`](crate::Oracle::with_certification);
    /// the bench harness flag `--certify`). Checking never changes a
    /// verdict; rejections are counted in
    /// [`OracleStats::certificates_rejected`](crate::OracleStats::certificates_rejected)
    /// and the first offender surfaces in
    /// [`SynthesisStats::certification_failure`](crate::SynthesisStats).
    pub certify: bool,
    /// Optional wall-clock budget for one synthesis call.
    pub time_budget: Option<Duration>,
    /// Optional conflict budget for each SAT oracle call (`None` = unlimited).
    pub sat_conflict_budget: Option<u64>,
    /// Optional bound on the total number of SAT oracle calls per synthesis
    /// run (`None` = unlimited). Enforced by the shared
    /// [`Budget`](crate::Budget).
    pub sat_call_budget: Option<u64>,
}

impl Default for Manthan3Config {
    fn default() -> Self {
        Manthan3Config {
            num_samples: 400,
            sample_shards: 1,
            max_repair_iterations: 400,
            max_repairs_per_iteration: 64,
            tree: DecisionTreeConfig::default(),
            seed: 0xDA7E_2023,
            use_unique_definitions: true,
            max_unique_definition_deps: 6,
            use_y_features: true,
            constrain_y_hat: true,
            repair_strategy: RepairStrategy::default(),
            solver_profile: SolverProfile::default(),
            restart_policy: None,
            certify: false,
            time_budget: None,
            sat_conflict_budget: None,
            sat_call_budget: None,
        }
    }
}

impl Manthan3Config {
    /// A configuration with a wall-clock budget, used by the benchmark
    /// harness to emulate the paper's per-instance timeout.
    pub fn with_time_budget(budget: Duration) -> Self {
        Manthan3Config {
            time_budget: Some(budget),
            ..Manthan3Config::default()
        }
    }

    /// A lightweight configuration for unit tests (few samples, small trees).
    pub fn fast() -> Self {
        Manthan3Config {
            num_samples: 100,
            max_repair_iterations: 100,
            ..Manthan3Config::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = Manthan3Config::default();
        assert!(c.num_samples > 0);
        assert!(c.max_repair_iterations > 0);
        assert!(c.use_y_features);
        assert!(c.constrain_y_hat);
        assert!(c.time_budget.is_none());
    }

    #[test]
    fn budgeted_constructor_sets_budget() {
        let c = Manthan3Config::with_time_budget(Duration::from_millis(50));
        assert_eq!(c.time_budget, Some(Duration::from_millis(50)));
    }

    #[test]
    fn fast_config_is_smaller() {
        assert!(Manthan3Config::fast().num_samples <= Manthan3Config::default().num_samples);
    }

    #[test]
    fn sampling_defaults_to_a_single_shard() {
        assert_eq!(Manthan3Config::default().sample_shards, 1);
    }

    #[test]
    fn solver_defaults_to_the_modern_profile_with_no_override() {
        let c = Manthan3Config::default();
        assert_eq!(c.solver_profile, SolverProfile::Modern);
        assert_eq!(c.restart_policy, None);
    }

    #[test]
    fn certification_defaults_off() {
        assert!(!Manthan3Config::default().certify);
    }

    #[test]
    fn repair_defaults_to_the_linear_strategy() {
        assert_eq!(
            Manthan3Config::default().repair_strategy,
            RepairStrategy::Linear
        );
    }
}
