//! Persistent incremental oracle sessions: the twin-session architecture of
//! the verify–repair loop.
//!
//! The loop used to rebuild *two* encodings from scratch on every iteration:
//! the error formula `E(X,Y') = ¬ϕ(X,Y') ∧ (Y' ↔ f)` on the verify side, and
//! the FindCandidates MaxSAT instance `ϕ ∧ (X ↔ σ[X])` with soft
//! `(Y ↔ σ[Y'])` on the repair side — even though between iterations only a
//! counterexample's valuations and a few candidate cones change. Following
//! the clausal-abstraction playbook (one persistent solver per abstraction
//! level, per-iteration state expressed as assumptions), the loop now runs
//! on two sessions that both live for the whole synthesis run:
//!
//! # [`VerifySession`] — the verify side
//!
//! Keeps two incremental SAT solvers:
//!
//! * the **error solver** holds `¬ϕ(X,Y')` (encoded once, lazily, on the
//!   first verification)
//!   plus one guarded equivalence `a_i → (y_i ↔ f_i)` per candidate
//!   generation. Each verification solves under the assumptions
//!   `{a_1, …, a_m}` of the *current* generations. When repair replaces
//!   `f_i`, the old activation literal is retired (asserted false) and a
//!   fresh guarded equivalence is added — the solver, its learnt clauses,
//!   and the shared Tseitin encoding cache survive. Because candidate cones
//!   grow monotonically inside one shared AIG, re-encoding a repaired
//!   candidate only pays for the *new* nodes
//!   ([`Aig::encode_cnf_cached`](manthan3_aig::Aig::encode_cnf_cached)).
//! * the **matrix solver** holds `ϕ` and serves the trivial-falsity check,
//!   the counterexample X-extension check, and the repair queries `G_k`
//!   (whose UNSAT cores become repair cubes) — all under assumptions.
//!
//! # [`RepairSession`] — the repair side
//!
//! Keeps one incremental MaxSAT solver for the FindCandidates queries
//! (Algorithm 3, line 2). The hard clauses `ϕ`, one *target indirection*
//! `eq_i ↔ (y_i ↔ t_i)` per output, the soft units `(eq_i)`, and the
//! totalizer over their relaxation variables are all encoded **once** when
//! the session opens. A FindCandidates call then pins the
//! counterexample-dependent valuations purely with assumptions —
//! `X ↔ σ[X]` directly on the matrix variables, `Y ↔ σ[Y']` via the `t_i`
//! targets — so they are retracted automatically between iterations and the
//! outputs selected for repair are exactly those with `eq_i` false in the
//! optimum. No clause is ever added after construction; the CDCL state and
//! the cardinality network survive every iteration.
//!
//! # Literal lifecycle and maintenance cadence
//!
//! Per-iteration state never outlives its solve call on either session: the
//! verify side swaps candidate generations by *retiring* activation literals
//! (asserted false, clauses freed by the next maintenance pass), the repair
//! side pins counterexamples with plain assumptions (nothing to retire).
//! Both sessions run a bounded-state maintenance pass every
//! [`MAINTENANCE_RETIREMENT_INTERVAL`] units of churn — retired generations
//! on the verify side, solve calls on the repair side — halving the learnt
//! database and compacting level-0-satisfied clauses, so
//! hundreds-of-iterations runs keep O(encoding) solver state.
//!
//! All solvers are constructed through the run's [`Oracle`], so budgets and
//! statistics are shared; `OracleStats::sat_solvers_constructed` staying at
//! two and `OracleStats::maxsat_hard_encodings` staying at one per run are
//! the observable witnesses of the reuse.

use crate::oracle::Oracle;
use crate::repair::Sigma;
use crate::stats::SynthesisStats;
use manthan3_aig::AigRef;
use manthan3_cnf::{Assignment, CnfBuilder, Lit, Var};
use manthan3_dqbf::{verify, Dqbf, HenkinVector};
use manthan3_maxsat::{MaxSatResult, MaxSatSolver, MaxSatStats, RepairStrategy, SoftId};
use manthan3_sat::{SolveResult, Solver, SolverStats};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Maintenance cadence shared by both sessions. After this many units of
/// churn — retired candidate generations for [`VerifySession`], solve calls
/// for [`RepairSession`] — the session runs a solver maintenance pass: the
/// learnt database is halved (and its growth threshold reset) and clauses
/// satisfied at level 0 (e.g. retired generations, permanently disabled by
/// their asserted-false activation literals) are freed. This keeps
/// hundreds-of-iterations repair runs from accumulating an unbounded solver
/// state while still amortizing the watch-list rebuild.
const MAINTENANCE_RETIREMENT_INTERVAL: usize = 32;

/// A model of the error formula: the counterexample parts `δ[X]` and
/// `δ[Y']`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Values of the universal variables.
    pub x: BTreeMap<Var, bool>,
    /// Outputs of the current candidate functions.
    pub y_prime: BTreeMap<Var, bool>,
}

/// Verdict of one incremental verification query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The error formula is unsatisfiable: the candidate vector realizes the
    /// specification.
    Valid,
    /// An oracle budget was exhausted before a verdict was reached.
    Budget,
    /// The error formula is satisfiable; the model is returned.
    CounterExample(Delta),
}

/// One candidate generation: the activation literal guarding its
/// equivalence clauses and the function it encodes.
#[derive(Debug, Clone, Copy)]
struct CandidateSlot {
    activation: Lit,
    function: AigRef,
}

/// A persistent incremental oracle session for one synthesis run. See the
/// [module documentation](self).
#[derive(Debug, Clone)]
pub struct VerifySession {
    /// Incremental solver over the matrix `ϕ` (X-extension checks, repair
    /// queries `G_k` and their UNSAT cores).
    phi: Solver,
    /// Incremental solver over the error formula `¬ϕ ∧ (Y' ↔ f)`.
    error: Solver,
    /// Fresh-variable allocator and clause buffer for the error encoding.
    builder: CnfBuilder,
    /// Number of builder clauses already fed into `error`.
    fed_clauses: usize,
    /// Whether `¬ϕ` has been encoded into the error solver (done lazily on
    /// the first verification so preprocessing-only runs never pay for it).
    error_encoded: bool,
    /// Persistent AIG-node → CNF-literal cache for candidate cones.
    encode_cache: HashMap<usize, Lit>,
    /// Identity map: formula variable index → its own positive literal
    /// (candidate functions read other outputs from the `Y'` variables).
    input_map: HashMap<usize, Lit>,
    /// Current candidate generation per output.
    slots: BTreeMap<Var, CandidateSlot>,
    /// Number of candidate cones encoded over the session's lifetime.
    encodings: usize,
    /// Activation literals retired over the session's lifetime.
    retired: usize,
    /// Retirements since the last maintenance pass.
    retired_since_maintenance: usize,
    /// Error-solver maintenance passes performed.
    maintenance_runs: usize,
}

impl VerifySession {
    /// Creates a session for `dqbf`: constructs the two incremental solvers
    /// through `oracle`. The error formula's `¬ϕ` part is encoded lazily on
    /// the first [`VerifySession::verify`] call, so a run that ends in
    /// preprocessing (unsatisfiable matrix, budget) never pays for it.
    pub fn new(dqbf: &Dqbf, oracle: &mut Oracle) -> Self {
        let mut phi = oracle.new_solver();
        phi.add_cnf(dqbf.matrix());
        phi.ensure_vars(dqbf.num_vars());

        let builder = CnfBuilder::new(dqbf.num_vars());
        let error = oracle.new_solver();
        let input_map = (0..dqbf.num_vars())
            .map(|i| (i, Var::new(i as u32).positive()))
            .collect();
        VerifySession {
            phi,
            error,
            builder,
            fed_clauses: 0,
            error_encoded: false,
            encode_cache: HashMap::new(),
            input_map,
            slots: BTreeMap::new(),
            encodings: 0,
            retired: 0,
            retired_since_maintenance: 0,
            maintenance_runs: 0,
        }
    }

    /// Feeds clauses buffered in the builder into the error solver.
    fn flush(&mut self) {
        let cnf = self.builder.cnf();
        self.error.ensure_vars(cnf.num_vars());
        let clauses = cnf.clauses();
        for clause in &clauses[self.fed_clauses..] {
            self.error.add_clause(clause.iter().copied());
        }
        self.fed_clauses = clauses.len();
    }

    /// Checks satisfiability of the bare matrix `ϕ` (a DQBF with an
    /// unsatisfiable matrix is trivially false).
    pub fn check_matrix(&mut self, oracle: &mut Oracle) -> SolveResult {
        oracle.solve(&mut self.phi)
    }

    /// Solves `ϕ` under `assumptions` (X-extension checks and the repair
    /// queries `G_k`).
    pub fn solve_phi(&mut self, oracle: &mut Oracle, assumptions: &[Lit]) -> SolveResult {
        oracle.solve_with_assumptions(&mut self.phi, assumptions)
    }

    /// The model of the last satisfiable `ϕ` query.
    ///
    /// # Panics
    ///
    /// Panics if the last `ϕ` query was not satisfiable.
    pub fn phi_model(&self) -> Assignment {
        self.phi.model()
    }

    /// The UNSAT core (over the assumption literals) of the last
    /// unsatisfiable `ϕ` query — the raw material of repair cubes.
    pub fn phi_unsat_core(&self) -> &[Lit] {
        self.phi.unsat_core()
    }

    /// Verifies `vector` against the specification: refreshes the guarded
    /// candidate equivalences for outputs whose function changed since the
    /// last call, then re-solves the persistent error formula under the
    /// current activation assumptions.
    ///
    /// All functions must live in one shared, monotonically growing AIG
    /// (as maintained by the engine's repair loop); the session's encoding
    /// cache is keyed by node identity within that AIG.
    ///
    /// # Panics
    ///
    /// Panics if some existential variable of `dqbf` has no function in
    /// `vector`.
    pub fn verify(
        &mut self,
        dqbf: &Dqbf,
        vector: &HenkinVector,
        oracle: &mut Oracle,
    ) -> VerifyOutcome {
        if !self.error_encoded {
            verify::encode_negated_matrix(dqbf, &mut self.builder);
            self.error_encoded = true;
        }
        for &y in dqbf.existentials() {
            // invariant: a HenkinVector is total over the existentials by
            // construction.
            let f = vector.get(y).expect("every output has a candidate");
            if self.slots.get(&y).is_some_and(|slot| slot.function == f) {
                continue;
            }
            let retired = self.slots.get(&y).map(|old| old.activation);
            // Gate (Tseitin) clauses are unconditional and flow through the
            // builder; only the per-generation equivalence is guarded.
            let out = vector.aig().encode_cnf_cached(
                f,
                &mut self.builder,
                &self.input_map,
                &mut self.encode_cache,
            );
            let activation = self.builder.fresh_lit();
            self.flush();
            // activation → (y ↔ out), retractable via the activation guard.
            self.error
                .add_guarded_clause(activation, [y.negative(), out]);
            self.error
                .add_guarded_clause(activation, [y.positive(), !out]);
            if let Some(old) = retired {
                // Permanently disable the previous generation's equivalence.
                self.error.retire_activation(old);
                self.retired += 1;
                self.retired_since_maintenance += 1;
            }
            self.slots.insert(
                y,
                CandidateSlot {
                    activation,
                    function: f,
                },
            );
            self.encodings += 1;
        }
        self.flush();
        if self.retired_since_maintenance >= MAINTENANCE_RETIREMENT_INTERVAL {
            self.maintain(oracle);
        }

        let assumptions: Vec<Lit> = self.slots.values().map(|slot| slot.activation).collect();
        match oracle.solve_with_assumptions(&mut self.error, &assumptions) {
            SolveResult::Unsat => VerifyOutcome::Valid,
            SolveResult::Unknown => VerifyOutcome::Budget,
            SolveResult::Sat => {
                let model = self.error.model();
                VerifyOutcome::CounterExample(Delta {
                    x: dqbf
                        .universals()
                        .iter()
                        .map(|&x| (x, model.get(x).unwrap_or(false)))
                        .collect(),
                    y_prime: dqbf
                        .existentials()
                        .iter()
                        .map(|&y| (y, model.get(y).unwrap_or(false)))
                        .collect(),
                })
            }
        }
    }

    /// Number of candidate cones encoded over the session's lifetime
    /// (initial encodings plus one per applied repair).
    pub fn candidate_encodings(&self) -> usize {
        self.encodings
    }

    /// Runs an error-solver maintenance pass immediately: halves the learnt
    /// database (resetting its growth threshold), frees the clauses of
    /// retired candidate generations, and runs one bounded inprocessing
    /// pass (subsumption + vivification; a no-op under the legacy profile).
    /// Called automatically every 32 retirements; exposed for callers that
    /// drive the session manually. The pass runs outside any oracle solve
    /// call, so its work is billed to the oracle's statistics here.
    pub fn maintain(&mut self, oracle: &mut Oracle) {
        let before = self.error.stats();
        self.error.reduce_learnt_db();
        self.error.simplify();
        self.error.inprocess();
        oracle.note_solver_maintenance(&before, &self.error.stats());
        self.retired_since_maintenance = 0;
        self.maintenance_runs += 1;
    }

    /// Number of activation literals retired over the session's lifetime
    /// (one per candidate replaced by repair).
    pub fn retired_activations(&self) -> usize {
        self.retired
    }

    /// Number of error-solver maintenance passes performed so far.
    pub fn maintenance_runs(&self) -> usize {
        self.maintenance_runs
    }

    /// Runtime statistics of the persistent error solver (learnt-clause
    /// count, conflicts, …) — the observable the hygiene watchdogs assert
    /// on.
    pub fn error_solver_stats(&self) -> SolverStats {
        self.error.stats()
    }

    /// Number of problem clauses currently held by the persistent error
    /// solver. Bounded across repair generations thanks to the periodic
    /// maintenance passes.
    pub fn error_solver_clauses(&self) -> usize {
        self.error.num_clauses()
    }
}

/// One output's slot in the persistent FindCandidates encoding: the target
/// indirection variable pinned by assumptions and the soft clause whose
/// violation selects the output for repair.
#[derive(Debug, Clone, Copy)]
struct RepairSlot {
    output: Var,
    /// `t_i`: assumed equal to `σ[y'_i]` on each call.
    target: Var,
    /// The soft unit `(eq_i)` with `eq_i ↔ (y_i ↔ t_i)` as hard clauses.
    soft: SoftId,
}

/// The persistent assumption-based MaxSAT session answering the repair
/// loop's FindCandidates queries. See the [module documentation](self) for
/// the encoding and literal lifecycle.
#[derive(Debug, Clone)]
pub struct RepairSession {
    maxsat: MaxSatSolver,
    slots: Vec<RepairSlot>,
    /// FindCandidates calls answered over the session's lifetime.
    solves: usize,
    /// Solve calls since the last maintenance pass.
    solves_since_maintenance: usize,
    /// MaxSAT-solver maintenance passes performed.
    maintenance_runs: usize,
}

impl RepairSession {
    /// Opens a session for `dqbf`: encodes the matrix, one target
    /// indirection `eq_i ↔ (y_i ↔ t_i)` per existential output, the soft
    /// units `(eq_i)`, and (lazily, inside the MaxSAT solver) the totalizer
    /// — the one and only hard-encoding construction of the whole repair
    /// loop, recorded in `OracleStats::maxsat_hard_encodings`.
    pub fn new(dqbf: &Dqbf, oracle: &mut Oracle) -> Self {
        let mut maxsat = oracle.new_maxsat();
        oracle.note_maxsat_hard_encoding();
        maxsat.add_hard_cnf(dqbf.matrix());
        let mut slots = Vec::with_capacity(dqbf.existentials().len());
        for &y in dqbf.existentials() {
            let t = maxsat.new_var();
            let eq = maxsat.new_var();
            let (yl, tl, eql) = (y.positive(), t.positive(), eq.positive());
            // eq ↔ (y ↔ t), encoded once; t is pinned per call by an
            // assumption, so the soft structure below never changes.
            maxsat.add_hard([!eql, !yl, tl]);
            maxsat.add_hard([!eql, yl, !tl]);
            maxsat.add_hard([eql, !yl, !tl]);
            maxsat.add_hard([eql, yl, tl]);
            let soft = maxsat.add_soft([eql], 1);
            slots.push(RepairSlot {
                output: y,
                target: t,
                soft,
            });
        }
        RepairSession {
            maxsat,
            slots,
            solves: 0,
            solves_since_maintenance: 0,
            maintenance_runs: 0,
        }
    }

    /// Runs `FindCandi` (Algorithm 3, line 2) for the counterexample
    /// `sigma`, entirely under assumptions on the persistent encoding:
    /// `X ↔ σ[X]` pins the matrix variables, `t_i ↔ σ[y'_i]` pins the soft
    /// targets. Returns the outputs whose soft constraint was dropped in the
    /// optimum — the candidates to repair.
    ///
    /// When the oracle is budgeted out (or the hard part is unexpectedly
    /// unsatisfiable under the assumptions), falls back to "repair every
    /// output whose candidate output differs from the witness extension",
    /// exactly like the from-scratch path.
    pub fn find_candidates(
        &mut self,
        dqbf: &Dqbf,
        sigma: &Sigma,
        oracle: &mut Oracle,
        stats: &mut SynthesisStats,
    ) -> Vec<Var> {
        let mut assumptions: Vec<Lit> = Vec::with_capacity(sigma.x.len() + self.slots.len());
        for (&x, &value) in &sigma.x {
            assumptions.push(x.lit(value));
        }
        for slot in &self.slots {
            let target = sigma.y_prime.get(&slot.output).copied().unwrap_or(false);
            assumptions.push(slot.target.lit(target));
        }
        stats.maxsat_calls += 1;
        let result = oracle.solve_maxsat_under_assumptions(&mut self.maxsat, &assumptions);
        self.solves += 1;
        self.solves_since_maintenance += 1;
        if self.solves_since_maintenance >= MAINTENANCE_RETIREMENT_INTERVAL {
            self.maintain(oracle);
        }
        match result {
            MaxSatResult::Optimum { .. } => {
                let violated: BTreeSet<_> = self.maxsat.violated_softs().into_iter().collect();
                self.slots
                    .iter()
                    .filter(|slot| violated.contains(&slot.soft))
                    .map(|slot| slot.output)
                    .collect()
            }
            // A cancelled query falls back exactly like a budgeted-out one —
            // the engine re-checks the oracle before acting on the fallback
            // set and reports `UnknownReason::Cancelled`.
            MaxSatResult::HardUnsat | MaxSatResult::Unknown | MaxSatResult::Cancelled => dqbf
                .existentials()
                .iter()
                .copied()
                .filter(|y| sigma.y.get(y) != sigma.y_prime.get(y))
                .collect(),
        }
    }

    /// Runs a MaxSAT-solver maintenance pass immediately (learnt-DB halving,
    /// level-0 compaction, and one bounded inprocessing pass). Called
    /// automatically every [`MAINTENANCE_RETIREMENT_INTERVAL`] solve calls;
    /// exposed for callers that drive the session manually. The pass runs
    /// outside any oracle solve call, so its work is billed to the oracle's
    /// statistics here.
    pub fn maintain(&mut self, oracle: &mut Oracle) {
        let before = self.maxsat.sat_stats();
        self.maxsat.maintain();
        oracle.note_solver_maintenance(&before, &self.maxsat.sat_stats());
        self.solves_since_maintenance = 0;
        self.maintenance_runs += 1;
    }

    /// FindCandidates calls answered over the session's lifetime.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Number of MaxSAT-solver maintenance passes performed so far.
    pub fn maintenance_runs(&self) -> usize {
        self.maintenance_runs
    }

    /// Runtime statistics of the persistent MaxSAT solver's CDCL core —
    /// the observable the repair-side hygiene watchdog asserts on.
    pub fn solver_stats(&self) -> SolverStats {
        self.maxsat.sat_stats()
    }

    /// Search-effort counters of the persistent MaxSAT solver (SAT probes
    /// issued, cores relaxed) — the unit the repair strategies compete on.
    pub fn maxsat_stats(&self) -> MaxSatStats {
        self.maxsat.stats()
    }

    /// The optimization strategy the session's MaxSAT solver searches with
    /// (inherited from the constructing oracle).
    pub fn strategy(&self) -> RepairStrategy {
        self.maxsat.strategy()
    }

    /// Number of problem clauses currently held by the persistent MaxSAT
    /// solver. Constant across iterations (no clause is added after
    /// construction; maintenance can only shrink it).
    pub fn solver_clauses(&self) -> usize {
        self.maxsat.num_solver_clauses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Budget;
    use manthan3_dqbf::verify::check;

    fn x(i: u32) -> Var {
        Var::new(i)
    }
    fn y(i: u32) -> Var {
        Var::new(3 + i)
    }

    /// The hand-derived valid vector for the paper example.
    fn paper_vector() -> HenkinVector {
        let mut v = HenkinVector::new();
        let in_x1 = v.aig_mut().input(x(0).index());
        let in_x2 = v.aig_mut().input(x(1).index());
        let in_x3 = v.aig_mut().input(x(2).index());
        v.set(y(0), !in_x1);
        let f2 = v.aig_mut().or(!in_x2, !in_x1);
        v.set(y(1), f2);
        let f3 = v.aig_mut().or(in_x2, in_x3);
        v.set(y(2), f3);
        v
    }

    #[test]
    fn session_accepts_a_valid_vector() {
        let dqbf = Dqbf::paper_example();
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut session = VerifySession::new(&dqbf, &mut oracle);
        let vector = paper_vector();
        assert_eq!(
            session.verify(&dqbf, &vector, &mut oracle),
            VerifyOutcome::Valid
        );
        assert_eq!(session.candidate_encodings(), 3);
    }

    #[test]
    fn session_finds_counterexamples_that_falsify_the_matrix() {
        let dqbf = Dqbf::paper_example();
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut session = VerifySession::new(&dqbf, &mut oracle);
        let mut vector = paper_vector();
        // Break f3: constant false. The clause y3 ↔ (x2 ∨ x3) must fail.
        vector.set(y(2), vector.aig().constant(false));
        match session.verify(&dqbf, &vector, &mut oracle) {
            VerifyOutcome::CounterExample(delta) => {
                // Replaying δ[X], δ[Y'] on the matrix must falsify it.
                let mut values = vec![false; dqbf.num_vars()];
                for (&v, &b) in delta.x.iter().chain(delta.y_prime.iter()) {
                    values[v.index()] = b;
                }
                let assignment = Assignment::from_values(values);
                assert!(!dqbf.eval_matrix(&assignment));
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn candidate_swaps_reuse_the_same_solvers() {
        let dqbf = Dqbf::paper_example();
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut session = VerifySession::new(&dqbf, &mut oracle);
        let mut vector = paper_vector();

        // Sabotage f2, verify (counterexample), then restore it in several
        // generations; the session must keep using the same two solvers.
        let good_f2 = vector.get(y(1)).unwrap();
        for round in 0..4 {
            let broken = if round % 2 == 0 {
                vector.aig().constant(round % 4 == 0)
            } else {
                let in_x1 = vector.aig_mut().input(x(0).index());
                in_x1
            };
            vector.set(y(1), broken);
            let verdict = session.verify(&dqbf, &vector, &mut oracle);
            assert!(
                matches!(verdict, VerifyOutcome::CounterExample(_)),
                "round {round}"
            );
            // Consistency with the independent from-scratch checker.
            assert!(!check(&dqbf, &vector).is_valid(), "round {round}");
        }
        vector.set(y(1), good_f2);
        assert_eq!(
            session.verify(&dqbf, &vector, &mut oracle),
            VerifyOutcome::Valid
        );
        assert!(check(&dqbf, &vector).is_valid());

        // Round 0 encodes all three candidates; rounds 1–3 and the final
        // restoration re-encode only the y2 generation that changed.
        assert_eq!(session.candidate_encodings(), 7);
        // One matrix solver + one error solver, despite 5 verification calls.
        assert_eq!(oracle.stats().sat_solvers_constructed, 2);
        assert_eq!(oracle.stats().sat_calls, 5);
    }

    /// Hygiene watchdog (ROADMAP "error-solver hygiene"): a repair-heavy run
    /// — hundreds of candidate generations on one session — must trigger
    /// periodic error-solver maintenance, keep the clause database bounded
    /// (retired generations are freed, the learnt DB is trimmed), and still
    /// produce correct verdicts on the same two solvers.
    #[test]
    fn long_repair_runs_trigger_maintenance_and_stay_bounded() {
        let dqbf = Dqbf::paper_example();
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut session = VerifySession::new(&dqbf, &mut oracle);
        let mut vector = paper_vector();
        let good_f2 = vector.get(y(1)).unwrap();
        let broken_f2 = vector.aig().constant(true);

        let mut clause_watermark = 0usize;
        for round in 0..200 {
            let f2 = if round % 2 == 0 { broken_f2 } else { good_f2 };
            vector.set(y(1), f2);
            let verdict = session.verify(&dqbf, &vector, &mut oracle);
            if round % 2 == 0 {
                assert!(
                    matches!(verdict, VerifyOutcome::CounterExample(_)),
                    "round {round}: broken candidate must yield a counterexample"
                );
            } else {
                assert_eq!(verdict, VerifyOutcome::Valid, "round {round}");
            }
            if round == 20 {
                clause_watermark = session.error_solver_clauses();
            }
        }

        // Round 0 encodes three fresh generations; every later round swaps
        // exactly one, retiring its predecessor.
        assert_eq!(session.retired_activations(), 199);
        assert!(
            session.maintenance_runs() >= 5,
            "only {} maintenance passes over 199 retirements",
            session.maintenance_runs()
        );
        // Retired generations are freed: the clause database is bounded by
        // the early-run watermark plus at most one maintenance interval of
        // not-yet-collected generations, not by the 199 retired generations.
        assert!(
            session.error_solver_clauses() <= clause_watermark + 80,
            "error solver grew to {} clauses (watermark {})",
            session.error_solver_clauses(),
            clause_watermark
        );
        // The learnt DB is trimmed too — it must not retain one learnt
        // clause per historical generation.
        assert!(session.error_solver_stats().learnt_clauses < 400);
        // The arena actually reclaims the freed clauses: 199 retired
        // generations plus periodic learnt-DB halving must cross the GC
        // threshold at least once, and the live footprint stays bounded.
        assert!(
            session.error_solver_stats().arena_collections >= 1,
            "no compacting arena collection over 199 retirements"
        );
        // Maintenance work is billed to the oracle even though it runs
        // outside solve calls.
        assert!(oracle.stats().arena_collections >= 1);
        assert!(oracle.stats().sat_propagations > 0);
        // Maintenance never constructs new solvers.
        assert_eq!(oracle.stats().sat_solvers_constructed, 2);
    }

    /// Repair-side mirror of the error-solver hygiene watchdog: hundreds of
    /// FindCandidates calls on one [`RepairSession`] must trigger periodic
    /// MaxSAT-solver maintenance, keep the clause database bounded by its
    /// construction-time size (assumptions leave no residue; maintenance
    /// only shrinks), and keep answering on the same single solver and
    /// single hard encoding.
    #[test]
    fn long_repair_runs_keep_the_maxsat_solver_bounded() {
        let dqbf = Dqbf::paper_example();
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut session = RepairSession::new(&dqbf, &mut oracle);
        let mut stats = SynthesisStats::default();
        let clause_watermark = session.solver_clauses();

        let sigma_a = Sigma {
            x: [(x(0), true), (x(1), false), (x(2), false)].into(),
            y: [(y(0), true), (y(1), true), (y(2), false)].into(),
            y_prime: [(y(0), false), (y(1), false), (y(2), false)].into(),
        };
        let mut sigma_b = sigma_a.clone();
        sigma_b.x = [(x(0), false), (x(1), true), (x(2), false)].into();
        sigma_b.y_prime = [(y(0), true), (y(1), true), (y(2), true)].into();

        for round in 0..200 {
            let sigma = if round % 2 == 0 { &sigma_a } else { &sigma_b };
            let candidates = session.find_candidates(&dqbf, sigma, &mut oracle, &mut stats);
            if round % 2 == 0 {
                // With x = (1,0,0), ϕ forces y2 = 1, so exactly the y2 soft
                // is dropped — on every even round, however much solver
                // state has accumulated.
                assert_eq!(candidates, vec![y(1)], "round {round}");
            }
        }

        assert_eq!(session.solves(), 200);
        assert!(
            session.maintenance_runs() >= 5,
            "only {} maintenance passes over 200 solves",
            session.maintenance_runs()
        );
        // No clause is ever added after construction: the totalizer is part
        // of the persistent encoding and counterexamples ride in as
        // assumptions, so the database never exceeds its construction-time
        // size plus the lazily encoded cardinality network.
        assert!(
            session.solver_clauses() <= clause_watermark + 60,
            "repair solver grew to {} clauses (watermark {})",
            session.solver_clauses(),
            clause_watermark
        );
        // The learnt DB is trimmed: it must not retain one learnt clause
        // per historical FindCandidates call.
        assert!(session.solver_stats().learnt_clauses < 400);
        // The billed gauges follow the persistent solver's live state.
        assert_eq!(
            oracle.stats().learnt_db_live,
            session.solver_stats().learnt_clauses
        );
        assert!(oracle.stats().sat_propagations > 0);
        // One MaxSAT solver, one hard encoding, 200 assumption-served calls.
        assert_eq!(oracle.stats().maxsat_solvers_constructed, 1);
        assert_eq!(oracle.stats().maxsat_hard_encodings, 1);
        assert_eq!(oracle.stats().maxsat_calls, 200);
        assert_eq!(oracle.stats().maxsat_incremental_calls, 200);
        assert_eq!(stats.maxsat_calls, 200);
    }

    #[test]
    fn phi_queries_share_the_session() {
        let dqbf = Dqbf::paper_example();
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut session = VerifySession::new(&dqbf, &mut oracle);
        assert_eq!(session.check_matrix(&mut oracle), SolveResult::Sat);
        // x1 = 1 forces y1 = … the matrix clause (x1 ∨ y1) is satisfied;
        // assuming ¬(x1 ∨ y1) literals yields UNSAT with a core.
        let result = session.solve_phi(&mut oracle, &[x(0).negative(), y(0).negative()]);
        assert_eq!(result, SolveResult::Unsat);
        assert!(!session.phi_unsat_core().is_empty());
        assert_eq!(oracle.stats().sat_solvers_constructed, 2);
    }
}
