//! The shared oracle layer.
//!
//! Every SAT, MaxSAT, and sampling interaction of the synthesis loop is
//! funnelled through an [`Oracle`], which owns the run's [`Budget`]
//! (wall-clock deadline, per-call conflict budget, total call budget) and
//! collects [`OracleStats`]. The one exception is unique-definition
//! preprocessing, which runs inside `manthan3-dqbf` with its own solvers:
//! those calls inherit the budget's conflict cap (via
//! `unique::extract_definitions_with`) and the engine re-checks the deadline
//! after extraction, but they are not counted in [`OracleStats`].
//! This replaces the ad-hoc `Instant` deadline checks and per-call solver
//! construction that used to be scattered through the engine: budgets are
//! enforced in one place, and the statistics let tests and benchmarks assert
//! structural properties such as "the verify–repair loop constructed exactly
//! one error-formula solver" (see [`crate::VerifySession`]).

use manthan3_cnf::{Cnf, Lit};
use manthan3_maxsat::{MaxSatResult, MaxSatSolver};
use manthan3_sampler::{Sampler, SamplerConfig};
use manthan3_sat::{SolveResult, Solver, SolverConfig};
use std::time::{Duration, Instant};

/// Why a synthesis run ended without a definitive answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnknownReason {
    /// The repair loop could not modify any candidate for the current
    /// counterexample (the incompleteness discussed in §5 of the paper).
    RepairStuck,
    /// The configured number of repair iterations was exhausted.
    IterationLimit,
    /// The configured wall-clock budget was exhausted.
    TimeBudget,
    /// A budgeted oracle call gave up (conflict or call budget).
    OracleBudget,
}

/// The resource budget shared by every oracle call of one synthesis run.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    start: Instant,
    deadline: Option<Instant>,
    conflicts_per_call: Option<u64>,
    max_sat_calls: Option<u64>,
}

impl Budget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        Budget::new(None, None, None)
    }

    /// A budget with the given wall-clock, per-call conflict, and total
    /// SAT-call limits (each `None` = unlimited). The clock starts now.
    pub fn new(
        time: Option<Duration>,
        conflicts_per_call: Option<u64>,
        max_sat_calls: Option<u64>,
    ) -> Self {
        let start = Instant::now();
        Budget {
            start,
            deadline: time.map(|t| start + t),
            conflicts_per_call,
            max_sat_calls,
        }
    }

    /// Returns `true` once the wall-clock deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time elapsed since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The per-call conflict limit, if any.
    pub fn conflicts_per_call(&self) -> Option<u64> {
        self.conflicts_per_call
    }

    /// The total SAT-call limit, if any.
    pub fn max_sat_calls(&self) -> Option<u64> {
        self.max_sat_calls
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// Counters for every oracle interaction of one run.
///
/// Fed into [`SynthesisStats`](crate::SynthesisStats) by the engine; the
/// baseline engines report the same counters on their results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Number of CDCL solvers constructed through the oracle. The persistent
    /// verify–repair session keeps this at two (matrix + error formula) per
    /// run, however many repair iterations execute.
    pub sat_solvers_constructed: usize,
    /// Number of MaxSAT solvers constructed through the oracle.
    pub maxsat_solvers_constructed: usize,
    /// Number of samplers constructed through the oracle.
    pub samplers_constructed: usize,
    /// Number of SAT solve calls (with or without assumptions).
    pub sat_calls: usize,
    /// Number of MaxSAT solve calls.
    pub maxsat_calls: usize,
    /// Total SAT conflicts across all oracle-routed solve calls.
    pub conflicts: u64,
    /// Number of calls that gave up because a budget was exhausted.
    pub budget_exhaustions: usize,
}

/// Constructs solvers and funnels every solve call through the shared
/// [`Budget`], collecting [`OracleStats`] on the way.
#[derive(Debug, Clone)]
pub struct Oracle {
    budget: Budget,
    stats: OracleStats,
}

impl Oracle {
    /// Creates an oracle enforcing `budget`.
    pub fn new(budget: Budget) -> Self {
        Oracle {
            budget,
            stats: OracleStats::default(),
        }
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }

    /// The reason to report when an oracle call gave up: the wall clock if
    /// the deadline has passed, the per-call/total budgets otherwise.
    pub fn give_up_reason(&self) -> UnknownReason {
        if self.budget.expired() {
            UnknownReason::TimeBudget
        } else {
            UnknownReason::OracleBudget
        }
    }

    /// Returns the exhausted-budget reason if no further oracle call may be
    /// made, `None` while resources remain.
    pub fn exhausted(&self) -> Option<UnknownReason> {
        if self.budget.expired() {
            return Some(UnknownReason::TimeBudget);
        }
        if let Some(max) = self.budget.max_sat_calls {
            if self.stats.sat_calls as u64 >= max {
                return Some(UnknownReason::OracleBudget);
            }
        }
        None
    }

    /// Constructs a CDCL solver with the budget's per-call conflict limit.
    pub fn new_solver(&mut self) -> Solver {
        let config = match self.budget.conflicts_per_call {
            Some(c) => SolverConfig::budgeted(c),
            None => SolverConfig::default(),
        };
        self.new_solver_with(config)
    }

    /// Constructs a CDCL solver from an explicit configuration, still
    /// counting it and capping its conflicts by the budget.
    pub fn new_solver_with(&mut self, mut config: SolverConfig) -> Solver {
        if config.max_conflicts.is_none() {
            config.max_conflicts = self.budget.conflicts_per_call;
        }
        self.stats.sat_solvers_constructed += 1;
        Solver::with_config(config)
    }

    /// Solves `solver` under the shared budget.
    pub fn solve(&mut self, solver: &mut Solver) -> SolveResult {
        self.solve_with_assumptions(solver, &[])
    }

    /// Solves `solver` under `assumptions` and the shared budget.
    ///
    /// Returns [`SolveResult::Unknown`] without touching the solver when the
    /// budget is already exhausted; use [`Oracle::give_up_reason`] to map the
    /// verdict to an [`UnknownReason`].
    pub fn solve_with_assumptions(
        &mut self,
        solver: &mut Solver,
        assumptions: &[Lit],
    ) -> SolveResult {
        if self.exhausted().is_some() {
            self.stats.budget_exhaustions += 1;
            return SolveResult::Unknown;
        }
        let before = solver.stats().conflicts;
        let result = solver.solve_with_assumptions(assumptions);
        self.stats.sat_calls += 1;
        self.stats.conflicts += solver.stats().conflicts - before;
        if result == SolveResult::Unknown {
            self.stats.budget_exhaustions += 1;
        }
        result
    }

    /// Constructs a MaxSAT solver with the budget's per-call conflict limit.
    pub fn new_maxsat(&mut self) -> MaxSatSolver {
        self.stats.maxsat_solvers_constructed += 1;
        match self.budget.conflicts_per_call {
            Some(c) => MaxSatSolver::with_conflict_budget(c),
            None => MaxSatSolver::new(),
        }
    }

    /// Runs a MaxSAT solve under the shared budget.
    pub fn solve_maxsat(&mut self, solver: &mut MaxSatSolver) -> MaxSatResult {
        if self.budget.expired() {
            self.stats.budget_exhaustions += 1;
            return MaxSatResult::Unknown;
        }
        let result = solver.solve();
        self.stats.maxsat_calls += 1;
        if result == MaxSatResult::Unknown {
            self.stats.budget_exhaustions += 1;
        }
        result
    }

    /// Constructs a sampler for `cnf`, inheriting the budget's per-call
    /// conflict limit when `config` does not set its own.
    pub fn new_sampler(&mut self, cnf: &Cnf, mut config: SamplerConfig) -> Sampler {
        if config.max_conflicts_per_sample.is_none() {
            config.max_conflicts_per_sample = self.budget.conflicts_per_call;
        }
        self.stats.samplers_constructed += 1;
        Sampler::new(cnf, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Var;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn unlimited_budget_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.expired());
        assert_eq!(b.conflicts_per_call(), None);
        assert_eq!(b.max_sat_calls(), None);
    }

    #[test]
    fn zero_time_budget_expires_immediately() {
        let oracle = Oracle::new(Budget::new(Some(Duration::ZERO), None, None));
        assert_eq!(oracle.exhausted(), Some(UnknownReason::TimeBudget));
        assert_eq!(oracle.give_up_reason(), UnknownReason::TimeBudget);
    }

    #[test]
    fn solve_counts_calls_and_conflicts() {
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut solver = oracle.new_solver();
        solver.add_clause([lit(1), lit(2)]);
        solver.add_clause([lit(-1), lit(2)]);
        assert_eq!(oracle.solve(&mut solver), SolveResult::Sat);
        assert_eq!(
            oracle.solve_with_assumptions(&mut solver, &[lit(-2)]),
            SolveResult::Unsat
        );
        let stats = oracle.stats();
        assert_eq!(stats.sat_solvers_constructed, 1);
        assert_eq!(stats.sat_calls, 2);
        assert_eq!(stats.budget_exhaustions, 0);
    }

    #[test]
    fn call_budget_cuts_off_further_solves() {
        let mut oracle = Oracle::new(Budget::new(None, None, Some(1)));
        let mut solver = oracle.new_solver();
        solver.ensure_vars(1);
        assert_eq!(oracle.solve(&mut solver), SolveResult::Sat);
        assert_eq!(oracle.exhausted(), Some(UnknownReason::OracleBudget));
        assert_eq!(oracle.solve(&mut solver), SolveResult::Unknown);
        assert_eq!(oracle.give_up_reason(), UnknownReason::OracleBudget);
        assert_eq!(oracle.stats().budget_exhaustions, 1);
        // The refused call is not counted as performed.
        assert_eq!(oracle.stats().sat_calls, 1);
    }

    #[test]
    fn conflict_budget_is_inherited_by_constructed_solvers() {
        let mut oracle = Oracle::new(Budget::new(None, Some(7), None));
        let solver = oracle.new_solver();
        assert_eq!(solver.config().max_conflicts, Some(7));
        let sampler_cnf = Cnf::new(2);
        let _ = oracle.new_sampler(&sampler_cnf, SamplerConfig::default());
        assert_eq!(oracle.stats().samplers_constructed, 1);
    }

    #[test]
    fn maxsat_goes_through_the_budget() {
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut maxsat = oracle.new_maxsat();
        maxsat.add_hard([Var::new(0).positive(), Var::new(1).positive()]);
        maxsat.add_soft([Var::new(0).negative()], 1);
        let result = oracle.solve_maxsat(&mut maxsat);
        assert_eq!(result, MaxSatResult::Optimum { cost: 0 });
        assert_eq!(oracle.stats().maxsat_solvers_constructed, 1);
        assert_eq!(oracle.stats().maxsat_calls, 1);
    }
}
