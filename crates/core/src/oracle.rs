//! The shared oracle layer.
//!
//! Every SAT, MaxSAT, and sampling interaction of the synthesis loop is
//! funnelled through an [`Oracle`], which owns the run's [`Budget`]
//! (wall-clock deadline, per-call conflict budget, total call budget) and
//! collects [`OracleStats`]. The one exception is unique-definition
//! preprocessing, which runs inside `manthan3-dqbf` with its own solvers:
//! those calls inherit the budget's conflict cap (via
//! `unique::extract_definitions_with`) and the engine re-checks the deadline
//! after extraction, but they are not counted in [`OracleStats`].
//! This replaces the ad-hoc `Instant` deadline checks and per-call solver
//! construction that used to be scattered through the engine: budgets are
//! enforced in one place, and the statistics let tests and benchmarks assert
//! structural properties such as "the verify–repair loop constructed exactly
//! one error-formula solver" (see [`crate::VerifySession`]).

use manthan3_cnf::{Assignment, Cnf, Lit};
use manthan3_drat::{check, parse_text_proof, CheckOutcome};
use manthan3_maxsat::{MaxSatResult, MaxSatSolver, RepairStrategy};
use manthan3_sampler::{SampleOutcome, Sampler, SamplerConfig, ShardedSampler, ShortfallReason};
use manthan3_sat::{
    CallBudget, CancelToken, Certificate, RestartPolicy, SolveResult, Solver, SolverConfig,
    SolverProfile, SolverStats,
};
use std::time::{Duration, Instant};

/// Why a synthesis run ended without a definitive answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnknownReason {
    /// The repair loop could not modify any candidate for the current
    /// counterexample (the incompleteness discussed in §5 of the paper).
    RepairStuck,
    /// The configured number of repair iterations was exhausted.
    IterationLimit,
    /// The configured wall-clock budget was exhausted.
    TimeBudget,
    /// A budgeted oracle call gave up (conflict or call budget).
    OracleBudget,
    /// The run was cooperatively cancelled (e.g. it lost a portfolio race).
    Cancelled,
}

/// The resource budget shared by every oracle call of one synthesis run.
///
/// Cloning a budget shares its [`CancelToken`] (and the already-armed
/// deadline): a portfolio runner arms one budget with [`Budget::start`] and
/// hands clones to the racing engines, so all of them observe the same
/// absolute deadline and the same cancellation flag.
#[derive(Debug, Clone)]
pub struct Budget {
    /// When the clock was (last) armed; see [`Budget::start`].
    started_at: Instant,
    /// The configured wall-clock allowance, kept so the deadline can be
    /// re-armed relative to a later start.
    time: Option<Duration>,
    deadline: Option<Instant>,
    conflicts_per_call: Option<u64>,
    max_sat_calls: Option<u64>,
    cancel: CancelToken,
}

impl Budget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        Budget::new(None, None, None)
    }

    /// A budget with the given wall-clock, per-call conflict, and total
    /// oracle-call limits (each `None` = unlimited). The clock starts now;
    /// call [`Budget::start`] to re-arm it later (e.g. when a portfolio race
    /// actually begins rather than when its configuration was built).
    pub fn new(
        time: Option<Duration>,
        conflicts_per_call: Option<u64>,
        max_sat_calls: Option<u64>,
    ) -> Self {
        let started_at = Instant::now();
        Budget {
            started_at,
            time,
            deadline: time.map(|t| started_at + t),
            conflicts_per_call,
            max_sat_calls,
            cancel: CancelToken::new(),
        }
    }

    /// Re-arms the clock: elapsed time restarts at zero and the wall-clock
    /// deadline is measured from now. Budgets are often built alongside
    /// engine configurations, well before the run they govern begins; the
    /// runner calls `start` at the moment the work is actually dispatched so
    /// configuration-building time is not billed against the run.
    pub fn start(&mut self) {
        self.started_at = Instant::now();
        self.deadline = self.time.map(|t| self.started_at + t);
    }

    /// Replaces the cancellation token (builder style). Clones made
    /// afterwards share the new token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// The budget's cancellation token. Cancelling it makes every oracle
    /// call routed through this budget (or a clone of it) give up at its
    /// next poll point.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Returns `true` once the budget's token has been cancelled.
    pub fn cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Returns `true` once the wall-clock deadline has passed or the budget
    /// has been cancelled — in both cases no further work should start.
    pub fn expired(&self) -> bool {
        self.cancel.is_cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time elapsed since the budget was (last) started.
    pub fn elapsed(&self) -> Duration {
        self.started_at.elapsed()
    }

    /// The per-call conflict limit, if any.
    pub fn conflicts_per_call(&self) -> Option<u64> {
        self.conflicts_per_call
    }

    /// The total oracle-call limit (SAT and MaxSAT solve calls combined),
    /// if any.
    pub fn max_sat_calls(&self) -> Option<u64> {
        self.max_sat_calls
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// Counters for every oracle interaction of one run.
///
/// Fed into [`SynthesisStats`](crate::SynthesisStats) by the engine; the
/// baseline engines report the same counters on their results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Number of CDCL solvers constructed through the oracle. The persistent
    /// verify–repair session keeps this at two (matrix + error formula) per
    /// run, however many repair iterations execute.
    pub sat_solvers_constructed: usize,
    /// Number of MaxSAT solvers constructed through the oracle.
    pub maxsat_solvers_constructed: usize,
    /// Number of samplers constructed through the oracle.
    pub samplers_constructed: usize,
    /// Number of SAT solve calls (with or without assumptions).
    pub sat_calls: usize,
    /// Number of MaxSAT solve calls.
    pub maxsat_calls: usize,
    /// Number of per-sample solver calls made by oracle-routed samplers.
    /// These draw on the same shared call allowance as SAT and MaxSAT
    /// solves, so `sat_calls + maxsat_calls + sampler_calls` is the total
    /// charge against [`Budget::max_sat_calls`].
    pub sampler_calls: usize,
    /// Number of oracle-routed sampling requests that emitted fewer samples
    /// than requested (UNSAT verdicts, budget cuts, or cancellation — the
    /// request's [`SampleOutcome`] says which).
    pub sample_shortfalls: usize,
    /// Number of full hard-clause MaxSAT encodings constructed. The
    /// persistent repair session keeps this at one per run, however many
    /// FindCandidates calls execute; the from-scratch reference path pays
    /// one per call.
    pub maxsat_hard_encodings: usize,
    /// Number of MaxSAT solve calls served under assumptions on a persistent
    /// encoding (the incremental hits; `maxsat_calls -
    /// maxsat_incremental_calls` are fresh rebuild-and-solve calls).
    pub maxsat_incremental_calls: usize,
    /// Internal SAT probes issued by MaxSAT optimum searches (bound probes,
    /// hard/optimistic checks, core-guided iterations alike). Each probe
    /// draws one call from the shared allowance, exactly like a top-level
    /// SAT solve — this is the unit the repair strategies compete on.
    pub maxsat_probes: u64,
    /// UNSAT cores extracted and relaxed by core-guided MaxSAT searches.
    pub maxsat_cores: u64,
    /// Total SAT conflicts across all oracle-routed solve calls.
    pub conflicts: u64,
    /// Total CDCL decisions across all oracle-routed solve calls.
    pub decisions: u64,
    /// Total unit propagations across all oracle-routed solve calls (SAT and
    /// MaxSAT alike). Together with the harness's wall-clock column this
    /// yields the propagations-per-second throughput metric.
    pub sat_propagations: u64,
    /// Total search restarts across all oracle-routed solve calls.
    pub sat_restarts: u64,
    /// Assumption decision levels carried over between incremental solve
    /// calls instead of being re-decided (trail reuse), across all
    /// oracle-routed solvers.
    pub reused_levels: u64,
    /// Rephasing events (decision phases reset to the best trail seen)
    /// across all oracle-routed solvers.
    pub rephases: u64,
    /// Learnt clauses live in the most recently observed solver (a gauge,
    /// refreshed after every billed solve or maintenance pass; summed across
    /// racers by the portfolio merge).
    pub learnt_db_live: usize,
    /// Glue ≤ 2 learnt clauses in the most recently observed solver (a
    /// gauge, like [`OracleStats::learnt_db_live`]).
    pub glue2_clauses: usize,
    /// Clauses removed by inprocessing subsumption across all oracle-routed
    /// solvers.
    pub inprocess_subsumed: u64,
    /// Clauses strengthened by inprocessing self-subsumption or
    /// vivification across all oracle-routed solvers.
    pub inprocess_strengthened: u64,
    /// Inprocessing passes that actually ran (throttle-skipped calls are not
    /// counted), across all oracle-routed solvers.
    pub inprocess_passes: u64,
    /// Vivification candidates attempted across all oracle-routed solvers.
    pub vivify_candidates: u64,
    /// Vivification attempts that strengthened their clause, across all
    /// oracle-routed solvers.
    pub vivify_strengthened: u64,
    /// Compacting clause-arena garbage collections performed by
    /// oracle-routed solvers.
    pub arena_collections: u64,
    /// Arena words occupied by live clauses in the most recently observed
    /// solver (a gauge, like [`OracleStats::learnt_db_live`]).
    pub arena_live_words: usize,
    /// SAT models re-verified against the full clause database by
    /// oracle-routed solvers (a debug-build self-check; 0 in release
    /// builds).
    pub models_verified: u64,
    /// DRAT certificates of oracle-routed UNSAT verdicts handed to the
    /// independent checker (only under [`Oracle::with_certification`]).
    pub certificates_checked: u64,
    /// Checked certificates the checker rejected — always 0 on a sound run;
    /// the first offender is kept in [`Oracle::certification_failure`].
    pub certificates_rejected: u64,
    /// Total DRAT proof bytes across all checked certificates.
    pub proof_bytes: u64,
    /// Total clause-addition steps across all checked certificates.
    pub proof_adds: u64,
    /// Total clause-deletion steps across all checked certificates.
    pub proof_deletes: u64,
    /// Wall-clock nanoseconds spent inside the in-process proof checker.
    pub certify_nanos: u64,
    /// Number of calls that gave up because a budget was exhausted.
    pub budget_exhaustions: usize,
}

impl OracleStats {
    /// Accumulates `other` into `self`, field by field. Cumulative counters
    /// add; the live-database gauges add too, so the merged value is the
    /// total live footprint across the merged oracles' last-observed
    /// solvers. Used by the portfolio's report merge and the compositional
    /// engine's per-cluster aggregation.
    pub fn absorb(&mut self, other: &OracleStats) {
        self.sat_solvers_constructed += other.sat_solvers_constructed;
        self.maxsat_solvers_constructed += other.maxsat_solvers_constructed;
        self.samplers_constructed += other.samplers_constructed;
        self.sat_calls += other.sat_calls;
        self.maxsat_calls += other.maxsat_calls;
        self.sampler_calls += other.sampler_calls;
        self.sample_shortfalls += other.sample_shortfalls;
        self.maxsat_hard_encodings += other.maxsat_hard_encodings;
        self.maxsat_incremental_calls += other.maxsat_incremental_calls;
        self.maxsat_probes += other.maxsat_probes;
        self.maxsat_cores += other.maxsat_cores;
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.sat_propagations += other.sat_propagations;
        self.sat_restarts += other.sat_restarts;
        self.reused_levels += other.reused_levels;
        self.rephases += other.rephases;
        self.learnt_db_live += other.learnt_db_live;
        self.glue2_clauses += other.glue2_clauses;
        self.inprocess_subsumed += other.inprocess_subsumed;
        self.inprocess_strengthened += other.inprocess_strengthened;
        self.inprocess_passes += other.inprocess_passes;
        self.vivify_candidates += other.vivify_candidates;
        self.vivify_strengthened += other.vivify_strengthened;
        self.arena_collections += other.arena_collections;
        self.arena_live_words += other.arena_live_words;
        self.models_verified += other.models_verified;
        self.certificates_checked += other.certificates_checked;
        self.certificates_rejected += other.certificates_rejected;
        self.proof_bytes += other.proof_bytes;
        self.proof_adds += other.proof_adds;
        self.proof_deletes += other.proof_deletes;
        self.certify_nanos += other.certify_nanos;
        self.budget_exhaustions += other.budget_exhaustions;
    }

    /// Total inprocessing reductions (clauses subsumed away plus clauses
    /// strengthened) — the combined column the benchmark CSVs report next to
    /// the per-kind breakdown.
    pub fn inprocess_reductions(&self) -> u64 {
        self.inprocess_subsumed + self.inprocess_strengthened
    }

    /// Bills the solver-layer work between two [`SolverStats`] snapshots to
    /// the cumulative counters, and refreshes the live-database gauges from
    /// the `after` snapshot. Shared by the solve paths and the session
    /// maintenance hook so every counter means the same thing on both.
    fn bill_solver_delta(&mut self, before: &SolverStats, after: &SolverStats) {
        self.conflicts += after.conflicts - before.conflicts;
        self.decisions += after.decisions - before.decisions;
        self.sat_propagations += after.propagations - before.propagations;
        self.sat_restarts += after.restarts - before.restarts;
        self.reused_levels += after.reused_levels - before.reused_levels;
        self.rephases += after.rephases - before.rephases;
        self.inprocess_subsumed += after.inprocess_subsumed - before.inprocess_subsumed;
        self.inprocess_strengthened += after.inprocess_strengthened - before.inprocess_strengthened;
        self.inprocess_passes += after.inprocess_passes - before.inprocess_passes;
        self.vivify_candidates += after.vivify_candidates - before.vivify_candidates;
        self.vivify_strengthened += after.vivify_strengthened - before.vivify_strengthened;
        self.arena_collections += after.arena_collections - before.arena_collections;
        self.models_verified += after.models_verified - before.models_verified;
        self.learnt_db_live = after.learnt_clauses;
        self.glue2_clauses = after.glue2_clauses;
        self.arena_live_words = after.arena_live_words;
    }
}

/// The evidence kept when an in-process certificate check fails: everything
/// needed to reproduce the rejection offline (dump the CNF and proof, rerun
/// `manthan3-drat`). Only the first rejection of an oracle is retained —
/// one reproducible offender is what a bug report needs, and a broken
/// tracer would otherwise accumulate every subsequent verdict's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificationFailure {
    /// Why the checker (or the certificate plumbing before it) rejected.
    pub reason: String,
    /// The certificate CNF in DIMACS literals (empty when the solver
    /// produced no certificate at all).
    pub cnf: Vec<Vec<i32>>,
    /// The rejected DRAT proof bytes.
    pub proof: Vec<u8>,
}

/// Constructs solvers and funnels every solve call through the shared
/// [`Budget`], collecting [`OracleStats`] on the way.
#[derive(Debug, Clone)]
pub struct Oracle {
    budget: Budget,
    stats: OracleStats,
    /// The shared call allowance behind [`Budget::max_sat_calls`]: every
    /// SAT solve, per-sample sampler solve, and internal MaxSAT probe draws
    /// one call from this counter. Samplers and MaxSAT solvers receive a
    /// clone at construction, so their solves — including the sharded
    /// sampler's worker threads and a MaxSAT bound search's probe loop —
    /// are billed to, and refused by, exactly the same allowance as every
    /// other oracle call.
    calls: CallBudget,
    /// The optimization strategy handed to every MaxSAT solver this oracle
    /// constructs (`Manthan3Config::repair_strategy`, threaded through to
    /// the persistent repair session).
    repair_strategy: RepairStrategy,
    /// The solver-policy bundle every constructed SAT and MaxSAT solver
    /// starts from (`Manthan3Config::solver_profile`).
    solver_profile: SolverProfile,
    /// Optional restart-policy override on top of the profile
    /// (`Manthan3Config::restart_policy`, the portfolio's restart-racing
    /// dimension).
    restart_policy: Option<RestartPolicy>,
    /// When `true`, every constructed SAT and MaxSAT solver logs DRAT
    /// proofs, and every UNSAT verdict routed through this oracle is checked
    /// in-process by the independent `manthan3-drat` checker.
    certify: bool,
    /// The first rejected certificate, kept for offline reproduction
    /// (boxed: the happy path pays one pointer, not the evidence).
    certification_failure: Option<Box<CertificationFailure>>,
}

impl Oracle {
    /// Creates an oracle enforcing `budget`, constructing linear-search
    /// MaxSAT solvers with the modern solver profile.
    pub fn new(budget: Budget) -> Self {
        let calls = CallBudget::new(budget.max_sat_calls);
        Oracle {
            budget,
            stats: OracleStats::default(),
            calls,
            repair_strategy: RepairStrategy::default(),
            solver_profile: SolverProfile::default(),
            restart_policy: None,
            certify: false,
            certification_failure: None,
        }
    }

    /// Replaces the call allowance with an externally shared [`CallBudget`]
    /// (builder style). The compositional engine hands every per-cluster
    /// oracle a clone of one allowance, so concurrent cluster loops draw on
    /// a single global `max_sat_calls` pool instead of each getting a full
    /// private quota.
    pub fn with_call_allowance(mut self, calls: CallBudget) -> Self {
        self.calls = calls;
        self
    }

    /// Selects the [`RepairStrategy`] for subsequently constructed MaxSAT
    /// solvers (builder style).
    pub fn with_repair_strategy(mut self, strategy: RepairStrategy) -> Self {
        self.repair_strategy = strategy;
        self
    }

    /// Selects the [`SolverProfile`] that subsequently constructed SAT and
    /// MaxSAT solvers derive their configuration from (builder style).
    pub fn with_solver_profile(mut self, profile: SolverProfile) -> Self {
        self.solver_profile = profile;
        self
    }

    /// Overrides the restart policy of subsequently constructed solvers on
    /// top of the profile (builder style); `None` keeps the profile's
    /// policy. This is the knob the portfolio's restart-racing dimension
    /// turns.
    pub fn with_restart_policy(mut self, policy: Option<RestartPolicy>) -> Self {
        self.restart_policy = policy;
        self
    }

    /// Enables in-process certification (builder style): every SAT and
    /// MaxSAT solver this oracle constructs logs DRAT proofs
    /// ([`SolverConfig::proof_logging`]), and every UNSAT verdict routed
    /// through the oracle — top-level solves and the closing refutation of a
    /// MaxSAT probe loop alike — is immediately checked by the independent
    /// `manthan3-drat` checker. Rejections are counted in
    /// [`OracleStats::certificates_rejected`] and the first offender is kept
    /// in [`Oracle::certification_failure`]; checking never changes a
    /// verdict. Samplers are exempt: they claim models, never
    /// unsatisfiability, so there is nothing to certify.
    pub fn with_certification(mut self, enabled: bool) -> Self {
        self.certify = enabled;
        self
    }

    /// `true` when [`Oracle::with_certification`] armed in-process checking.
    pub fn certification_enabled(&self) -> bool {
        self.certify
    }

    /// The first rejected certificate of this oracle, `None` on a sound run
    /// (or when certification is off).
    pub fn certification_failure(&self) -> Option<&CertificationFailure> {
        self.certification_failure.as_deref()
    }

    /// Moves the first rejected certificate out of the oracle (the engine
    /// surfaces it through
    /// [`SynthesisStats`](crate::SynthesisStats::certification_failure) so
    /// the harness can dump the offending CNF and proof for offline
    /// reproduction).
    pub fn take_certification_failure(&mut self) -> Option<Box<CertificationFailure>> {
        self.certification_failure.take()
    }

    /// The strategy handed to constructed MaxSAT solvers.
    pub fn repair_strategy(&self) -> RepairStrategy {
        self.repair_strategy
    }

    /// The profile constructed solvers derive their configuration from.
    pub fn solver_profile(&self) -> SolverProfile {
        self.solver_profile
    }

    /// The base configuration of every solver this oracle constructs: the
    /// profile's policy bundle with the optional restart override applied.
    /// Budget fields (conflict cap, cancellation) are layered on at
    /// construction time.
    fn base_solver_config(&self) -> SolverConfig {
        let mut config = SolverConfig::for_profile(self.solver_profile);
        if let Some(policy) = self.restart_policy {
            config.restart_policy = policy;
        }
        config.proof_logging = self.certify;
        config
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }

    /// The reason to report when an oracle call gave up: cancellation first,
    /// then the wall clock, then the per-call/total budgets.
    pub fn give_up_reason(&self) -> UnknownReason {
        if self.budget.cancelled() {
            UnknownReason::Cancelled
        } else if self.budget.expired() {
            UnknownReason::TimeBudget
        } else {
            UnknownReason::OracleBudget
        }
    }

    /// Returns the exhausted-budget reason if no further oracle call may be
    /// made, `None` while resources remain. The call budget counts SAT,
    /// MaxSAT, and per-sample sampler solve calls alike — they all draw on
    /// the same allowance.
    pub fn exhausted(&self) -> Option<UnknownReason> {
        if self.budget.cancelled() {
            return Some(UnknownReason::Cancelled);
        }
        if self.budget.expired() {
            return Some(UnknownReason::TimeBudget);
        }
        if self.calls.exhausted() {
            return Some(UnknownReason::OracleBudget);
        }
        None
    }

    /// The shared call allowance every oracle-routed solve draws on. Exposed
    /// so tests and diagnostics can observe total consumption; samplers get
    /// a clone automatically via [`Oracle::new_sampler`] and
    /// [`Oracle::sample_sharded`].
    pub fn call_allowance(&self) -> &CallBudget {
        &self.calls
    }

    /// Constructs a CDCL solver from the oracle's profile with the budget's
    /// per-call conflict limit.
    pub fn new_solver(&mut self) -> Solver {
        let mut config = self.base_solver_config();
        config.max_conflicts = self.budget.conflicts_per_call;
        self.new_solver_with(config)
    }

    /// Constructs a CDCL solver from an explicit configuration, still
    /// counting it, capping its conflicts by the budget, and attaching the
    /// budget's cancellation token.
    pub fn new_solver_with(&mut self, mut config: SolverConfig) -> Solver {
        if config.max_conflicts.is_none() {
            config.max_conflicts = self.budget.conflicts_per_call;
        }
        if config.cancel.is_none() {
            config.cancel = Some(self.budget.cancel.clone());
        }
        self.stats.sat_solvers_constructed += 1;
        Solver::with_config(config)
    }

    /// Solves `solver` under the shared budget.
    ///
    /// Refuses already-exhausted budgets up front, before delegating — the
    /// delegate re-checks (and is what actually draws the call), but the
    /// early refusal keeps every path from this entry point to the solver
    /// behind an admission check of its own.
    pub fn solve(&mut self, solver: &mut Solver) -> SolveResult {
        if self.exhausted().is_some() {
            self.stats.budget_exhaustions += 1;
            return SolveResult::Unknown;
        }
        self.solve_with_assumptions(solver, &[])
    }

    /// Solves `solver` under `assumptions` and the shared budget.
    ///
    /// Returns [`SolveResult::Unknown`] without touching the solver when the
    /// budget is already exhausted; use [`Oracle::give_up_reason`] to map the
    /// verdict to an [`UnknownReason`].
    pub fn solve_with_assumptions(
        &mut self,
        solver: &mut Solver,
        assumptions: &[Lit],
    ) -> SolveResult {
        if self.exhausted().is_some() || !self.calls.try_acquire() {
            self.stats.budget_exhaustions += 1;
            return SolveResult::Unknown;
        }
        let before = solver.stats();
        let result = solver.solve_with_assumptions(assumptions);
        self.stats.sat_calls += 1;
        self.stats.bill_solver_delta(&before, &solver.stats());
        if result == SolveResult::Unknown {
            self.stats.budget_exhaustions += 1;
        }
        if self.certify && result == SolveResult::Unsat {
            self.check_unsat_certificate(solver.certificate());
        }
        result
    }

    /// Hands one UNSAT verdict's certificate to the independent checker,
    /// billing the proof volume and check time to the statistics. A missing
    /// certificate is itself a rejection — under certification every
    /// oracle-routed UNSAT claim must come with evidence. The first
    /// rejection's CNF and proof are retained for offline reproduction.
    fn check_unsat_certificate(&mut self, certificate: Option<Certificate>) {
        let started = Instant::now();
        self.stats.certificates_checked += 1;
        let verdict = match &certificate {
            None => Err("UNSAT verdict carried no certificate \
                 (was the solver constructed outside this oracle, \
                 without proof logging?)"
                .to_string()),
            Some(cert) => {
                self.stats.proof_bytes += cert.proof.len() as u64;
                self.stats.proof_adds += cert.adds;
                self.stats.proof_deletes += cert.deletes;
                std::str::from_utf8(&cert.proof)
                    .map_err(|e| format!("certificate proof is not ASCII DRAT: {e}"))
                    .and_then(|text| {
                        parse_text_proof(text)
                            .map_err(|e| format!("certificate proof failed to parse: {e}"))
                    })
                    .and_then(|proof| match check(&cert.dimacs_cnf(), &proof) {
                        CheckOutcome::Verified(_) => Ok(()),
                        CheckOutcome::Rejected { step, reason } => {
                            Err(format!("checker rejected step {step}: {reason}"))
                        }
                        CheckOutcome::Cancelled => {
                            Err("checker cancelled mid-verification".to_string())
                        }
                    })
            }
        };
        self.stats.certify_nanos += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Err(reason) = verdict {
            self.stats.certificates_rejected += 1;
            if self.certification_failure.is_none() {
                let (cnf, proof) = certificate
                    .map(|c| (c.dimacs_cnf(), c.proof))
                    .unwrap_or_default();
                self.certification_failure =
                    Some(Box::new(CertificationFailure { reason, cnf, proof }));
            }
        }
    }

    /// Constructs a MaxSAT solver with the budget's per-call conflict limit,
    /// cancellation token, the oracle's [`RepairStrategy`], and the shared
    /// call allowance — every internal SAT probe of the optimum search draws
    /// on exactly the same budget as a top-level SAT solve.
    pub fn new_maxsat(&mut self) -> MaxSatSolver {
        self.stats.maxsat_solvers_constructed += 1;
        let mut solver = MaxSatSolver::with_config(SolverConfig {
            max_conflicts: self.budget.conflicts_per_call,
            cancel: Some(self.budget.cancel.clone()),
            ..self.base_solver_config()
        });
        solver.set_strategy(self.repair_strategy);
        solver.set_call_budget(self.calls.clone());
        solver
    }

    /// The refused-call verdict for a MaxSAT solve that may not start:
    /// cancellation surfaces as [`MaxSatResult::Cancelled`] (mapped to
    /// [`UnknownReason::Cancelled`] by the engine), everything else as
    /// [`MaxSatResult::Unknown`].
    fn refuse_maxsat(&mut self) -> MaxSatResult {
        self.stats.budget_exhaustions += 1;
        if self.budget.cancelled() {
            MaxSatResult::Cancelled
        } else {
            MaxSatResult::Unknown
        }
    }

    /// The shared budget-gating and accounting around one MaxSAT solve:
    /// refuse untouched when the budget is exhausted, otherwise run the
    /// solve and bill its conflicts, probes, and cores (and any give-up
    /// verdict) to the statistics.
    fn run_maxsat(
        &mut self,
        solver: &mut MaxSatSolver,
        incremental: bool,
        solve: impl FnOnce(&mut MaxSatSolver) -> MaxSatResult,
    ) -> MaxSatResult {
        if self.exhausted().is_some() {
            return self.refuse_maxsat();
        }
        let before_sat = solver.sat_stats();
        let before = solver.stats();
        let result = solve(solver);
        self.stats.maxsat_calls += 1;
        if incremental {
            self.stats.maxsat_incremental_calls += 1;
        }
        self.stats
            .bill_solver_delta(&before_sat, &solver.sat_stats());
        self.stats.maxsat_probes += solver.stats().probes - before.probes;
        self.stats.maxsat_cores += solver.stats().cores - before.cores;
        if matches!(result, MaxSatResult::Unknown | MaxSatResult::Cancelled) {
            self.stats.budget_exhaustions += 1;
        }
        if self.certify {
            match result {
                // A hard-UNSAT verdict is an unsatisfiability claim and
                // must come with evidence: the probe loop's closing
                // refutation.
                MaxSatResult::HardUnsat => self.check_unsat_certificate(solver.certificate()),
                // An optimum proved by refuting the bound below it leaves
                // that refutation's certificate behind; optimums reached on
                // a final SAT probe leave none. Check opportunistically —
                // the optimality *lower bound* is what gets certified.
                MaxSatResult::Optimum { .. } => {
                    if let Some(cert) = solver.certificate() {
                        self.check_unsat_certificate(Some(cert));
                    }
                }
                // Budget and cancellation give-ups claim nothing.
                MaxSatResult::Unknown | MaxSatResult::Cancelled => {}
            }
        }
        result
    }

    /// Runs a MaxSAT solve under the shared budget.
    ///
    /// The solve's internal SAT probes each draw one call from the shared
    /// allowance (the solver holds a clone of it, attached at
    /// construction), and their conflicts are billed to the shared conflict
    /// counter; a probe refused mid-search surfaces as
    /// [`MaxSatResult::Unknown`]. Refused without touching the solver when
    /// the budget is already exhausted, exactly like
    /// [`Oracle::solve_with_assumptions`] — with cancellation reported as
    /// [`MaxSatResult::Cancelled`].
    pub fn solve_maxsat(&mut self, solver: &mut MaxSatSolver) -> MaxSatResult {
        self.run_maxsat(solver, false, |s| s.solve())
    }

    /// Runs a MaxSAT solve under `assumptions` and the shared budget — the
    /// incremental counterpart of [`Oracle::solve_maxsat`], used by the
    /// persistent [`RepairSession`](crate::RepairSession): the call is
    /// served by a kept encoding, so it is additionally counted in
    /// [`OracleStats::maxsat_incremental_calls`]. Budget semantics are
    /// identical (probes drawn from the shared allowance, conflicts billed
    /// to the shared counter, refused untouched when exhausted).
    pub fn solve_maxsat_under_assumptions(
        &mut self,
        solver: &mut MaxSatSolver,
        assumptions: &[Lit],
    ) -> MaxSatResult {
        self.run_maxsat(solver, true, |s| s.solve_under_assumptions(assumptions))
    }

    /// Records the construction of a full hard-clause MaxSAT encoding (the
    /// expensive, once-per-session — or, on the from-scratch reference path,
    /// once-per-call — part of a FindCandidates query).
    pub(crate) fn note_maxsat_hard_encoding(&mut self) {
        self.stats.maxsat_hard_encodings += 1;
    }

    /// Bills solver work performed *outside* a solve call — the sessions'
    /// periodic maintenance passes (learnt-DB reduction, level-0 compaction,
    /// inprocessing) — given [`SolverStats`] snapshots taken around the
    /// pass. Keeps the inprocessing counters and
    /// `OracleStats::arena_collections` complete: most of that work happens
    /// between oracle calls, where the per-solve diff-billing cannot see it.
    pub(crate) fn note_solver_maintenance(&mut self, before: &SolverStats, after: &SolverStats) {
        self.stats.bill_solver_delta(before, after);
    }

    /// Fills in the budget-derived fields of a sampler configuration: the
    /// per-call conflict limit and cancellation token are inherited when the
    /// configuration does not set its own, and the shared call allowance is
    /// *always* the oracle's — every per-sample solver call of an
    /// oracle-routed sampler is billed to the same budget as SAT and MaxSAT
    /// solves (and refused once it is exhausted). A caller-supplied
    /// [`CallBudget`] is deliberately overridden here: honouring it would
    /// let sampler work bypass the shared allowance and the
    /// [`OracleStats::sampler_calls`] accounting; construct a [`Sampler`]
    /// directly for privately-budgeted sampling.
    fn sampler_config(&self, mut config: SamplerConfig) -> SamplerConfig {
        if config.max_conflicts_per_sample.is_none() {
            config.max_conflicts_per_sample = self.budget.conflicts_per_call;
        }
        if config.cancel.is_none() {
            config.cancel = Some(self.budget.cancel.clone());
        }
        config.calls = Some(self.calls.clone());
        config
    }

    /// Constructs a sampler for `cnf`, inheriting the budget's per-call
    /// conflict limit, cancellation token, and shared call allowance when
    /// `config` does not set its own. Prefer [`Oracle::sample`] /
    /// [`Oracle::sample_sharded`] for running it, so request statistics
    /// (sampler calls, shortfalls) land in [`OracleStats`].
    pub fn new_sampler(&mut self, cnf: &Cnf, config: SamplerConfig) -> Sampler {
        self.stats.samplers_constructed += 1;
        Sampler::new(cnf, self.sampler_config(config))
    }

    /// Runs one sampling request on `sampler` under the shared budget,
    /// recording the consumed per-sample solver calls and any shortfall in
    /// [`OracleStats`]. Refused without touching the sampler when the budget
    /// is already exhausted, like every other oracle call.
    pub fn sample(&mut self, sampler: &mut Sampler, n: usize) -> (Vec<Assignment>, SampleOutcome) {
        if let Some(refused) = self.refuse_sampling(n) {
            return (Vec::new(), refused);
        }
        let before = self.calls.consumed();
        let (samples, outcome) = sampler.sample_with_outcome(n);
        self.record_sampling(before, &outcome);
        (samples, outcome)
    }

    /// Runs one sharded sampling request for `cnf` under the shared budget:
    /// `config.shards` seed-derived shards race on threads, all drawing on
    /// this oracle's call allowance and cancellation token, and the merged
    /// batch is returned with its [`SampleOutcome`]. Counts one constructed
    /// sampler per shard.
    pub fn sample_sharded(
        &mut self,
        cnf: &Cnf,
        config: SamplerConfig,
        n: usize,
    ) -> (Vec<Assignment>, SampleOutcome) {
        if let Some(refused) = self.refuse_sampling(n) {
            return (Vec::new(), refused);
        }
        self.stats.samplers_constructed += config.shards.max(1);
        let mut sharded = ShardedSampler::new(cnf, self.sampler_config(config));
        let before = self.calls.consumed();
        let (samples, outcome) = sharded.sample(n);
        self.record_sampling(before, &outcome);
        (samples, outcome)
    }

    /// The refused-request outcome when the budget is already exhausted,
    /// `None` while sampling may proceed.
    fn refuse_sampling(&mut self, n: usize) -> Option<SampleOutcome> {
        let reason = self.exhausted()?;
        self.stats.budget_exhaustions += 1;
        self.stats.sample_shortfalls += 1;
        Some(SampleOutcome {
            requested: n,
            emitted: 0,
            reason: Some(match reason {
                UnknownReason::Cancelled => ShortfallReason::Cancelled,
                _ => ShortfallReason::Budget,
            }),
        })
    }

    /// Books one finished sampling request into the statistics.
    fn record_sampling(&mut self, calls_before: u64, outcome: &SampleOutcome) {
        self.stats.sampler_calls += (self.calls.consumed() - calls_before) as usize;
        if outcome.is_short() {
            self.stats.sample_shortfalls += 1;
            if matches!(
                outcome.reason,
                Some(ShortfallReason::Budget) | Some(ShortfallReason::Cancelled)
            ) {
                self.stats.budget_exhaustions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Var;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn unlimited_budget_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.expired());
        assert_eq!(b.conflicts_per_call(), None);
        assert_eq!(b.max_sat_calls(), None);
    }

    #[test]
    fn zero_time_budget_expires_immediately() {
        let oracle = Oracle::new(Budget::new(Some(Duration::ZERO), None, None));
        assert_eq!(oracle.exhausted(), Some(UnknownReason::TimeBudget));
        assert_eq!(oracle.give_up_reason(), UnknownReason::TimeBudget);
    }

    #[test]
    fn solve_counts_calls_and_conflicts() {
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut solver = oracle.new_solver();
        solver.add_clause([lit(1), lit(2)]);
        solver.add_clause([lit(-1), lit(2)]);
        assert_eq!(oracle.solve(&mut solver), SolveResult::Sat);
        assert_eq!(
            oracle.solve_with_assumptions(&mut solver, &[lit(-2)]),
            SolveResult::Unsat
        );
        let stats = oracle.stats();
        assert_eq!(stats.sat_solvers_constructed, 1);
        assert_eq!(stats.sat_calls, 2);
        assert_eq!(stats.budget_exhaustions, 0);
    }

    /// Under [`Oracle::with_certification`] every UNSAT verdict is checked
    /// in-process: constructed solvers inherit proof logging, the checker
    /// accepts the certificates, and the proof-volume counters fill in.
    #[test]
    fn certification_checks_unsat_verdicts_in_process() {
        let mut oracle = Oracle::new(Budget::unlimited()).with_certification(true);
        assert!(oracle.certification_enabled());
        let mut solver = oracle.new_solver();
        assert!(solver.config().proof_logging);
        solver.add_clause([lit(1), lit(2)]);
        solver.add_clause([lit(-1), lit(2)]);
        // A SAT verdict claims nothing; no check happens.
        assert_eq!(oracle.solve(&mut solver), SolveResult::Sat);
        assert_eq!(oracle.stats().certificates_checked, 0);
        assert_eq!(
            oracle.solve_with_assumptions(&mut solver, &[lit(-2)]),
            SolveResult::Unsat
        );
        let stats = oracle.stats();
        assert_eq!(stats.certificates_checked, 1);
        assert_eq!(stats.certificates_rejected, 0);
        assert!(stats.proof_bytes > 0);
        assert!(stats.proof_adds > 0);
        assert!(oracle.certification_failure().is_none());
    }

    /// An UNSAT verdict from a solver that logs no proofs (constructed
    /// outside the oracle) is a certification failure, not a silent pass:
    /// under certification every unsatisfiability claim needs evidence.
    #[test]
    fn certification_flags_missing_certificates() {
        let mut oracle = Oracle::new(Budget::unlimited()).with_certification(true);
        let mut foreign = Solver::new();
        foreign.add_clause([lit(1)]);
        foreign.add_clause([lit(-1)]);
        assert_eq!(oracle.solve(&mut foreign), SolveResult::Unsat);
        let stats = oracle.stats();
        assert_eq!(stats.certificates_checked, 1);
        assert_eq!(stats.certificates_rejected, 1);
        let failure = oracle.certification_failure().expect("first offender kept");
        assert!(failure.reason.contains("no certificate"));
        assert!(failure.cnf.is_empty() && failure.proof.is_empty());
    }

    /// The MaxSAT path certifies its probe loop's closing refutation: a
    /// hard-UNSAT verdict must check out, and an optimum proved by refuting
    /// the bound below it is certified opportunistically.
    #[test]
    fn certification_covers_maxsat_hard_unsat_verdicts() {
        for strategy in [RepairStrategy::Linear, RepairStrategy::CoreGuided] {
            let mut oracle = Oracle::new(Budget::unlimited())
                .with_certification(true)
                .with_repair_strategy(strategy);
            let mut maxsat = oracle.new_maxsat();
            assert!(maxsat.solver_config().proof_logging);
            maxsat.add_hard([lit(1), lit(2)]);
            maxsat.add_hard([lit(-1)]);
            maxsat.add_hard([lit(-2)]);
            maxsat.add_soft([lit(3)], 1);
            assert_eq!(
                oracle.solve_maxsat(&mut maxsat),
                MaxSatResult::HardUnsat,
                "{strategy}"
            );
            let stats = oracle.stats();
            assert_eq!(stats.certificates_checked, 1, "{strategy}");
            assert_eq!(stats.certificates_rejected, 0, "{strategy}");
            assert!(oracle.certification_failure().is_none(), "{strategy}");
        }
    }

    /// Certification is off by default: constructed solvers do not log
    /// proofs and UNSAT verdicts are not checked.
    #[test]
    fn certification_is_off_by_default() {
        let mut oracle = Oracle::new(Budget::unlimited());
        assert!(!oracle.certification_enabled());
        let mut solver = oracle.new_solver();
        assert!(!solver.config().proof_logging);
        solver.add_clause([lit(1)]);
        solver.add_clause([lit(-1)]);
        assert_eq!(oracle.solve(&mut solver), SolveResult::Unsat);
        assert_eq!(oracle.stats().certificates_checked, 0);
        assert_eq!(oracle.stats().proof_bytes, 0);
        assert!(oracle.certification_failure().is_none());
    }

    #[test]
    fn call_budget_cuts_off_further_solves() {
        let mut oracle = Oracle::new(Budget::new(None, None, Some(1)));
        let mut solver = oracle.new_solver();
        solver.ensure_vars(1);
        assert_eq!(oracle.solve(&mut solver), SolveResult::Sat);
        assert_eq!(oracle.exhausted(), Some(UnknownReason::OracleBudget));
        assert_eq!(oracle.solve(&mut solver), SolveResult::Unknown);
        assert_eq!(oracle.give_up_reason(), UnknownReason::OracleBudget);
        assert_eq!(oracle.stats().budget_exhaustions, 1);
        // The refused call is not counted as performed.
        assert_eq!(oracle.stats().sat_calls, 1);
    }

    #[test]
    fn shared_call_allowance_pools_consumption_across_oracles() {
        // Two oracles drawing on one allowance: together they may make only
        // as many solves as the pool permits, regardless of their own
        // budgets' limits.
        let pool = CallBudget::limited(2);
        let mut a =
            Oracle::new(Budget::new(None, None, Some(10))).with_call_allowance(pool.clone());
        let mut b =
            Oracle::new(Budget::new(None, None, Some(10))).with_call_allowance(pool.clone());
        assert_eq!(a.call_allowance(), &pool);
        assert_eq!(b.call_allowance(), &pool);
        let mut sa = a.new_solver();
        sa.ensure_vars(1);
        let mut sb = b.new_solver();
        sb.ensure_vars(1);
        assert_eq!(a.solve(&mut sa), SolveResult::Sat);
        assert_eq!(b.solve(&mut sb), SolveResult::Sat);
        assert_eq!(pool.consumed(), 2);
        // The pool is dry: both oracles are exhausted now.
        assert_eq!(a.exhausted(), Some(UnknownReason::OracleBudget));
        assert_eq!(b.solve(&mut sb), SolveResult::Unknown);
    }

    #[test]
    fn conflict_budget_is_inherited_by_constructed_solvers() {
        let mut oracle = Oracle::new(Budget::new(None, Some(7), None));
        let solver = oracle.new_solver();
        assert_eq!(solver.config().max_conflicts, Some(7));
        let sampler_cnf = Cnf::new(2);
        let _ = oracle.new_sampler(&sampler_cnf, SamplerConfig::default());
        assert_eq!(oracle.stats().samplers_constructed, 1);
    }

    #[test]
    fn maxsat_goes_through_the_budget() {
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut maxsat = oracle.new_maxsat();
        maxsat.add_hard([Var::new(0).positive(), Var::new(1).positive()]);
        maxsat.add_soft([Var::new(0).negative()], 1);
        let result = oracle.solve_maxsat(&mut maxsat);
        assert_eq!(result, MaxSatResult::Optimum { cost: 0 });
        assert_eq!(oracle.stats().maxsat_solvers_constructed, 1);
        assert_eq!(oracle.stats().maxsat_calls, 1);
    }

    /// Mirror of `call_budget_cuts_off_further_solves` for the MaxSAT path:
    /// a total-call budget must cap MaxSAT solves exactly like SAT solves.
    #[test]
    fn call_budget_cuts_off_further_maxsat_solves() {
        let mut oracle = Oracle::new(Budget::new(None, None, Some(1)));
        let mut maxsat = oracle.new_maxsat();
        maxsat.add_hard([Var::new(0).positive()]);
        assert_eq!(
            oracle.solve_maxsat(&mut maxsat),
            MaxSatResult::Optimum { cost: 0 }
        );
        assert_eq!(oracle.exhausted(), Some(UnknownReason::OracleBudget));
        assert_eq!(oracle.solve_maxsat(&mut maxsat), MaxSatResult::Unknown);
        assert_eq!(oracle.give_up_reason(), UnknownReason::OracleBudget);
        assert_eq!(oracle.stats().budget_exhaustions, 1);
        // The refused call is not counted as performed.
        assert_eq!(oracle.stats().maxsat_calls, 1);
    }

    /// MaxSAT calls draw on the same allowance as SAT calls: one of each
    /// exhausts a two-call budget, and either kind of further call is
    /// refused.
    #[test]
    fn maxsat_calls_count_toward_the_shared_call_budget() {
        let mut oracle = Oracle::new(Budget::new(None, None, Some(2)));
        let mut solver = oracle.new_solver();
        solver.ensure_vars(1);
        assert_eq!(oracle.solve(&mut solver), SolveResult::Sat);
        assert_eq!(oracle.exhausted(), None);
        let mut maxsat = oracle.new_maxsat();
        maxsat.add_hard([Var::new(0).positive()]);
        assert_eq!(
            oracle.solve_maxsat(&mut maxsat),
            MaxSatResult::Optimum { cost: 0 }
        );
        assert_eq!(oracle.exhausted(), Some(UnknownReason::OracleBudget));
        assert_eq!(oracle.solve(&mut solver), SolveResult::Unknown);
        assert_eq!(oracle.solve_maxsat(&mut maxsat), MaxSatResult::Unknown);
        assert_eq!(oracle.stats().sat_calls, 1);
        assert_eq!(oracle.stats().maxsat_calls, 1);
        assert_eq!(oracle.stats().budget_exhaustions, 2);
    }

    /// Mirror of `call_budget_cuts_off_further_solves` for the sampling
    /// path: once the shared call budget is exhausted, sampler solves are
    /// refused before the solver is touched.
    #[test]
    fn call_budget_cuts_off_further_sampler_solves() {
        let mut oracle = Oracle::new(Budget::new(None, None, Some(1)));
        let mut solver = oracle.new_solver();
        solver.ensure_vars(1);
        assert_eq!(oracle.solve(&mut solver), SolveResult::Sat);
        assert_eq!(oracle.exhausted(), Some(UnknownReason::OracleBudget));
        let cnf = Cnf::new(2);
        let mut sampler = oracle.new_sampler(&cnf, SamplerConfig::default());
        let (samples, outcome) = oracle.sample(&mut sampler, 5);
        assert!(samples.is_empty());
        assert_eq!(outcome.reason, Some(ShortfallReason::Budget));
        assert_eq!(oracle.give_up_reason(), UnknownReason::OracleBudget);
        // The refused request performed no solver calls and is recorded as a
        // shortfall.
        assert_eq!(oracle.stats().sampler_calls, 0);
        assert_eq!(oracle.stats().sample_shortfalls, 1);
    }

    /// Sampler solves draw on the same allowance as SAT solves: a sampling
    /// request is cut off mid-batch, and afterwards SAT solves are refused
    /// too.
    #[test]
    fn sampler_solves_count_toward_the_shared_call_budget() {
        let mut oracle = Oracle::new(Budget::new(None, None, Some(3)));
        let cnf = Cnf::new(2);
        let mut sampler = oracle.new_sampler(&cnf, SamplerConfig::default());
        let (samples, outcome) = oracle.sample(&mut sampler, 10);
        assert_eq!(samples.len(), 3);
        assert_eq!(outcome.reason, Some(ShortfallReason::Budget));
        assert_eq!(oracle.stats().sampler_calls, 3);
        assert_eq!(oracle.stats().sample_shortfalls, 1);
        assert_eq!(oracle.exhausted(), Some(UnknownReason::OracleBudget));
        let mut solver = oracle.new_solver();
        solver.ensure_vars(1);
        assert_eq!(oracle.solve(&mut solver), SolveResult::Unknown);
        assert_eq!(oracle.stats().sat_calls, 0);
    }

    /// The sharded path bills every shard's solves to the shared allowance.
    #[test]
    fn sharded_sampling_draws_on_the_shared_budget() {
        let mut oracle = Oracle::new(Budget::new(None, None, Some(5)));
        let cnf = Cnf::new(3);
        let config = SamplerConfig {
            shards: 4,
            ..SamplerConfig::default()
        };
        let (samples, outcome) = oracle.sample_sharded(&cnf, config, 20);
        assert!(samples.len() <= 5, "emitted {} > budget 5", samples.len());
        assert_eq!(outcome.reason, Some(ShortfallReason::Budget));
        assert_eq!(oracle.stats().sampler_calls, 5);
        assert_eq!(oracle.stats().samplers_constructed, 4);
        assert_eq!(oracle.exhausted(), Some(UnknownReason::OracleBudget));
    }

    /// A caller-supplied `CallBudget` must not let sampler work bypass the
    /// oracle's shared allowance (or its `sampler_calls` accounting): the
    /// oracle's handle is authoritative for oracle-routed samplers.
    #[test]
    fn caller_supplied_call_budgets_cannot_bypass_the_shared_allowance() {
        let mut oracle = Oracle::new(Budget::new(None, None, Some(2)));
        let cnf = Cnf::new(2);
        let private = CallBudget::unlimited();
        let config = SamplerConfig {
            calls: Some(private.clone()),
            ..SamplerConfig::default()
        };
        let mut sampler = oracle.new_sampler(&cnf, config);
        let (samples, outcome) = oracle.sample(&mut sampler, 10);
        assert_eq!(samples.len(), 2);
        assert_eq!(outcome.reason, Some(ShortfallReason::Budget));
        assert_eq!(oracle.stats().sampler_calls, 2);
        assert_eq!(oracle.exhausted(), Some(UnknownReason::OracleBudget));
        // The private handle was ignored, not drawn on.
        assert_eq!(private.consumed(), 0);
    }

    #[test]
    fn sharded_sampling_is_served_in_full_under_an_unlimited_budget() {
        let mut oracle = Oracle::new(Budget::unlimited());
        let cnf = Cnf::new(3);
        let config = SamplerConfig {
            shards: 2,
            ..SamplerConfig::default()
        };
        let (samples, outcome) = oracle.sample_sharded(&cnf, config, 12);
        assert_eq!(samples.len(), 12);
        assert_eq!(outcome.reason, None);
        // Oversampling headroom means at least one solver call per sample.
        assert!(oracle.stats().sampler_calls >= 12);
        assert_eq!(oracle.stats().sample_shortfalls, 0);
        assert_eq!(oracle.exhausted(), None);
    }

    #[test]
    fn cancelled_sampling_requests_report_cancellation() {
        let mut oracle = Oracle::new(Budget::unlimited());
        oracle.budget().cancel_token().cancel();
        let cnf = Cnf::new(2);
        let config = SamplerConfig {
            shards: 2,
            ..SamplerConfig::default()
        };
        let (samples, outcome) = oracle.sample_sharded(&cnf, config, 4);
        assert!(samples.is_empty());
        assert_eq!(outcome.reason, Some(ShortfallReason::Cancelled));
        assert_eq!(oracle.stats().sampler_calls, 0);
    }

    #[test]
    fn cancellation_refuses_further_oracle_calls() {
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut solver = oracle.new_solver();
        solver.add_clause([lit(1), lit(2)]);
        assert_eq!(oracle.solve(&mut solver), SolveResult::Sat);
        oracle.budget().cancel_token().cancel();
        assert_eq!(oracle.exhausted(), Some(UnknownReason::Cancelled));
        assert_eq!(oracle.give_up_reason(), UnknownReason::Cancelled);
        assert_eq!(oracle.solve(&mut solver), SolveResult::Unknown);
        let mut maxsat = oracle.new_maxsat();
        maxsat.add_hard([lit(1)]);
        // A refused MaxSAT call names cancellation as the reason — never a
        // best-so-far bound, never a bare Unknown.
        assert_eq!(oracle.solve_maxsat(&mut maxsat), MaxSatResult::Cancelled);
        // Refused calls are not performed.
        assert_eq!(oracle.stats().sat_calls, 1);
        assert_eq!(oracle.stats().maxsat_calls, 0);
    }

    /// Mirror of `call_budget_cuts_off_further_solves` for the MaxSAT probe
    /// loop (both strategies): internal bound-search probes draw on the
    /// shared allowance, a search cut off mid-probe reports Unknown, and
    /// afterwards every other oracle call is refused too.
    #[test]
    fn call_budget_cuts_off_the_maxsat_probe_loop() {
        use manthan3_maxsat::RepairStrategy;
        for strategy in [RepairStrategy::Linear, RepairStrategy::CoreGuided] {
            let mut oracle =
                Oracle::new(Budget::new(None, None, Some(2))).with_repair_strategy(strategy);
            let mut maxsat = oracle.new_maxsat();
            // Optimum 2 needs at least three probes on either strategy.
            maxsat.add_hard([lit(1)]);
            maxsat.add_hard([lit(2)]);
            maxsat.add_soft([lit(-1)], 1);
            maxsat.add_soft([lit(-2)], 1);
            assert_eq!(
                oracle.solve_maxsat(&mut maxsat),
                MaxSatResult::Unknown,
                "{strategy}"
            );
            assert_eq!(oracle.stats().maxsat_probes, 2, "{strategy}");
            assert_eq!(oracle.exhausted(), Some(UnknownReason::OracleBudget));
            // The shared allowance is spent: SAT solves are refused too.
            let mut solver = oracle.new_solver();
            solver.ensure_vars(1);
            assert_eq!(oracle.solve(&mut solver), SolveResult::Unknown);
            assert_eq!(oracle.stats().sat_calls, 0, "{strategy}");
        }
    }

    /// The oracle's strategy reaches constructed MaxSAT solvers, and the
    /// core-guided search's probe/core counters land in [`OracleStats`].
    #[test]
    fn core_guided_strategy_flows_into_constructed_solvers() {
        use manthan3_maxsat::RepairStrategy;
        let mut oracle =
            Oracle::new(Budget::unlimited()).with_repair_strategy(RepairStrategy::CoreGuided);
        assert_eq!(oracle.repair_strategy(), RepairStrategy::CoreGuided);
        let mut maxsat = oracle.new_maxsat();
        assert_eq!(maxsat.strategy(), RepairStrategy::CoreGuided);
        maxsat.add_hard([lit(1)]);
        maxsat.add_soft([lit(-1)], 1);
        assert_eq!(
            oracle.solve_maxsat(&mut maxsat),
            MaxSatResult::Optimum { cost: 1 }
        );
        assert_eq!(oracle.stats().maxsat_cores, 1);
        assert!(oracle.stats().maxsat_probes >= 2);
        // Probes are billed to the shared allowance.
        assert_eq!(
            oracle.call_allowance().consumed(),
            oracle.stats().maxsat_probes
        );
    }

    /// The solver profile and restart override flow into every constructed
    /// solver, and the new solver-layer counters are diff-billed by solves.
    #[test]
    fn solver_profile_and_restart_override_flow_into_constructed_solvers() {
        use manthan3_sat::ReductionPolicy;
        let mut oracle =
            Oracle::new(Budget::unlimited()).with_solver_profile(SolverProfile::Legacy);
        assert_eq!(oracle.solver_profile(), SolverProfile::Legacy);
        let solver = oracle.new_solver();
        assert_eq!(solver.config().restart_policy, RestartPolicy::Luby);
        assert_eq!(
            solver.config().reduction_policy,
            ReductionPolicy::ActivityHalving
        );
        assert!(!solver.config().enable_inprocessing);
        // The override beats the profile's restart policy, nothing else.
        let mut oracle = Oracle::new(Budget::unlimited())
            .with_solver_profile(SolverProfile::Legacy)
            .with_restart_policy(Some(RestartPolicy::GlucoseEma));
        let solver = oracle.new_solver();
        assert_eq!(solver.config().restart_policy, RestartPolicy::GlucoseEma);
        assert_eq!(
            solver.config().reduction_policy,
            ReductionPolicy::ActivityHalving
        );
        // MaxSAT solvers derive from the same base configuration.
        let maxsat = oracle.new_maxsat();
        assert_eq!(
            maxsat.solver_config().restart_policy,
            RestartPolicy::GlucoseEma
        );
    }

    #[test]
    fn solves_bill_the_solver_layer_counters() {
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut solver = oracle.new_solver();
        solver.add_clause([lit(1), lit(2)]);
        solver.add_clause([lit(-1), lit(2)]);
        // The assumption forces a solve-time propagation (units added via
        // `add_clause` propagate at add time, outside any billed window).
        assert_eq!(
            oracle.solve_with_assumptions(&mut solver, &[lit(1)]),
            SolveResult::Sat
        );
        let stats = oracle.stats();
        assert!(stats.sat_propagations > 0, "unit propagation was billed");
        // Gauges reflect the observed solver (no conflicts here: empty DB).
        assert_eq!(stats.learnt_db_live, 0);
        assert_eq!(stats.glue2_clauses, 0);
    }

    #[test]
    fn constructed_solvers_inherit_the_cancel_token() {
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut solver = oracle.new_solver();
        solver.add_clause([lit(1)]);
        oracle.budget().cancel_token().cancel();
        // Even bypassing the oracle, the solver itself observes the token.
        assert_eq!(solver.solve(), SolveResult::Unknown);
    }

    #[test]
    fn budget_clones_share_cancellation() {
        let budget = Budget::unlimited();
        let clone = budget.clone();
        budget.cancel_token().cancel();
        assert!(clone.cancelled());
        assert!(clone.expired());
    }

    #[test]
    fn start_rearms_the_deadline() {
        let mut budget = Budget::new(Some(Duration::from_millis(40)), None, None);
        std::thread::sleep(Duration::from_millis(50));
        assert!(budget.expired());
        // The race begins only now: re-arming measures the deadline from
        // here, so the budget is live again.
        budget.start();
        assert!(!budget.expired());
        assert!(budget.elapsed() < Duration::from_millis(40));
    }
}
