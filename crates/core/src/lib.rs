//! Manthan3: data-driven Henkin function synthesis.
//!
//! This crate implements the core contribution of *"Synthesis with Explicit
//! Dependencies"* (DATE 2023): given a DQBF
//! `∀X ∃^{H1}y1 … ∃^{Hm}ym. ϕ(X,Y)`, synthesize a Henkin function vector
//! `f = ⟨f1,…,fm⟩` (each `f_i` over its dependency set `H_i` only) such that
//! `ϕ(X, f(H))` is a tautology — or report that the formula is false.
//!
//! # Architecture: a staged pipeline on a persistent oracle layer
//!
//! [`Manthan3::synthesize`] runs five explicit stages that share one
//! `SynthesisCtx` (the run's candidate vector, statistics, and [`Oracle`]):
//!
//! ```text
//! Preprocess → Sample → Learn → Order → VerifyRepair
//! ```
//!
//! 1. **Preprocess** — open the run's persistent [`VerifySession`], rule out
//!    a trivially false matrix, and extract unique definitions via Padoa's
//!    method (the role of the UNIQUE tool in the paper's implementation).
//! 2. **Sample** — draw satisfying assignments of ϕ as training data
//!    (`manthan3-sampler`), optionally sharded across
//!    [`Manthan3Config::sample_shards`] seed-derived sampler threads that
//!    share the run's budget and cancellation token (the batches are
//!    combined by the sampler crate's bias-weighted merge).
//! 3. **Learn** — per output, learn a decision tree over the valuations of
//!    its Henkin dependencies (plus compatible `Y` variables) and take the
//!    disjunction of all paths to label 1 (`manthan3-dtree`), recording the
//!    inter-candidate dependencies this introduces.
//! 4. **Order** — derive a linear extension of the learned dependencies.
//! 5. **VerifyRepair** — the CEGIS loop (Algorithms 1 and 3).
//!
//! Two pieces make the hot loop incremental:
//!
//! * The [`Oracle`] owns the run's [`Budget`] (wall-clock deadline, per-call
//!   conflict budget, total call budget shared by SAT *and* MaxSAT solves)
//!   and funnels the synthesis loop's SAT, MaxSAT, and sampling calls
//!   through it, collecting [`OracleStats`] (unique-definition
//!   preprocessing runs its own solvers but inherits the conflict cap and
//!   cancellation token). The baseline engines in `manthan3-baselines` run
//!   on the same layer, so all engines share budget semantics and report
//!   comparable counters.
//! * The [`VerifySession`] Tseitin-encodes the error formula
//!   `E(X,Y') = ¬ϕ(X,Y') ∧ (Y' ↔ f)` **once**, guards each candidate
//!   function's equivalence behind an activation literal, and re-solves
//!   under assumptions on each verification. When repair replaces a
//!   candidate, the old activation literal is retired and a fresh guarded
//!   equivalence is appended — the solver, its learnt clauses, and the
//!   shared encoding cache all survive, so iteration cost tracks the *size
//!   of the change*, not the size of the formula. Every 32 retirements the
//!   session runs a maintenance pass on the error solver (learnt-DB
//!   trimming plus garbage collection of retired generations), so even
//!   hundreds-of-iterations repair runs keep a bounded solver state. The
//!   repair queries `G_k` (and their UNSAT cores, which become repair
//!   cubes) run on the same session's persistent matrix solver.
//! * The [`RepairSession`] is the MaxSAT twin: the FindCandidates encoding
//!   (matrix hard clauses, per-output target indirections, soft units, and
//!   the totalizer) is built **once** on the first counterexample, and
//!   every FindCandidates query is answered under assumptions pinning
//!   `σ[X]` and `σ[Y']` — counterexample state is retracted automatically
//!   between iterations, nothing is re-encoded. With both sessions in
//!   place the CEGIS loop is allocation-stable end to end:
//!   `OracleStats::maxsat_hard_encodings` stays at one however many repair
//!   iterations run, next to `sat_solvers_constructed` staying at two.
//!
//! # Repair strategy selection
//!
//! How the session locates each FindCandidates optimum is configurable via
//! [`Manthan3Config::repair_strategy`] (threaded Config → [`Oracle`] →
//! [`RepairSession`], raced as a portfolio configuration dimension by
//! `manthan3-portfolio`, and exposed as `--repair-strategy` by the bench
//! harness):
//!
//! * [`RepairStrategy::Linear`] (default) — the warm-started two-phase
//!   totalizer-bound search; one SAT probe per cost unit the optimum moved
//!   since the previous counterexample.
//! * [`RepairStrategy::CoreGuided`] — Fu–Malik/OLL core-guided
//!   optimization over the same persistent encoding: UNSAT cores over the
//!   soft-unit assumption literals are relaxed with per-core totalizers
//!   (cached across counterexamples, bounds raised incrementally), reaching
//!   the optimum in `#cores + 1` probes however far it jumped.
//!   `OracleStats::{maxsat_probes, maxsat_cores}` make the probe economy
//!   observable; `benches/synthesis.rs::repair_core_guided` asserts the
//!   win.
//!
//! # Cancellation: racing engines in a portfolio
//!
//! Every [`Budget`] carries a [`CancelToken`](manthan3_sat::CancelToken)
//! shared by its clones. The token flows from the budget into every solver
//! the oracle constructs (`Budget` → `Oracle` → CDCL/MaxSAT/sampler
//! configurations), and the CDCL search loop polls it alongside its
//! conflict budget, so cancelling the token stops all in-flight oracle work
//! within milliseconds; the engine then reports
//! [`UnknownReason::Cancelled`]. A portfolio runner (see the
//! `manthan3-portfolio` crate) arms one budget with [`Budget::start`] at
//! race time, hands each engine a clone via
//! [`Manthan3::synthesize_with_budget`], and cancels the token as soon as
//! the first engine returns a decisive verdict — the losing engines stop
//! almost immediately instead of burning the remaining wall-clock budget.
//!
//! Manthan3 is sound (every returned vector passes the independent
//! certificate check of `manthan3_dqbf::verify`) but **not complete**: for
//! some true instances the repair loop cannot make progress (the paper's §5
//! "Limitations"); the engine then reports
//! [`UnknownReason::RepairStuck`].
//!
//! # Examples
//!
//! ```
//! use manthan3_core::{Manthan3, Manthan3Config, SynthesisOutcome};
//! use manthan3_dqbf::{verify, Dqbf};
//!
//! let dqbf = Dqbf::paper_example();
//! let engine = Manthan3::new(Manthan3Config::default());
//! let result = engine.synthesize(&dqbf);
//! match result.outcome {
//!     SynthesisOutcome::Realizable(vector) => {
//!         assert!(verify::check(&dqbf, &vector).is_valid());
//!     }
//!     other => panic!("expected synthesis to succeed, got {other:?}"),
//! }
//! // However many repair iterations ran, the whole loop used one matrix
//! // solver and one error-formula solver.
//! assert_eq!(result.stats.oracle.sat_solvers_constructed, 2);
//! ```
//!
//! Driving the session directly (as the benchmarks do):
//!
//! ```
//! use manthan3_core::{Budget, Oracle, VerifyOutcome, VerifySession};
//! use manthan3_dqbf::{Dqbf, HenkinVector};
//! use manthan3_cnf::Var;
//!
//! let dqbf = Dqbf::paper_example();
//! let mut oracle = Oracle::new(Budget::unlimited());
//! let mut session = VerifySession::new(&dqbf, &mut oracle);
//!
//! // The hand-derived correct vector from the paper.
//! let mut vector = HenkinVector::new();
//! let x1 = vector.aig_mut().input(0);
//! let x2 = vector.aig_mut().input(1);
//! let x3 = vector.aig_mut().input(2);
//! vector.set(Var::new(3), !x1);
//! let f2 = vector.aig_mut().or(!x2, !x1);
//! vector.set(Var::new(4), f2);
//! let f3 = vector.aig_mut().or(x2, x3);
//! vector.set(Var::new(5), f3);
//! assert_eq!(session.verify(&dqbf, &vector, &mut oracle), VerifyOutcome::Valid);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod config;
mod engine;
mod learn;
mod oracle;
mod order;
mod preprocess;
mod repair;
mod session;
mod stats;

pub use compose::{CompositionalConfig, CompositionalEngine};
pub use config::Manthan3Config;
pub use engine::{Manthan3, SynthesisOutcome, SynthesisResult};
pub use manthan3_maxsat::RepairStrategy;
pub use manthan3_sat::{CallBudget, RestartPolicy, SolverProfile};
pub use oracle::{Budget, CertificationFailure, Oracle, OracleStats, UnknownReason};
pub use order::{DependencyState, Order};
pub use repair::{
    find_candidates_from_scratch, find_candidates_to_repair, repair_vector, RepairOutcome, Sigma,
};
pub use session::{Delta, RepairSession, VerifyOutcome, VerifySession};
pub use stats::SynthesisStats;
