//! Manthan3: data-driven Henkin function synthesis.
//!
//! This crate implements the core contribution of *"Synthesis with Explicit
//! Dependencies"* (DATE 2023): given a DQBF
//! `∀X ∃^{H1}y1 … ∃^{Hm}ym. ϕ(X,Y)`, synthesize a Henkin function vector
//! `f = ⟨f1,…,fm⟩` (each `f_i` over its dependency set `H_i` only) such that
//! `ϕ(X, f(H))` is a tautology — or report that the formula is false.
//!
//! The engine follows the paper's Algorithms 1–3:
//!
//! 1. **Data generation** — sample satisfying assignments of ϕ
//!    (`manthan3-sampler`).
//! 2. **Candidate learning** — per output, learn a decision tree over the
//!    valuations of its Henkin dependencies (plus compatible `Y` variables)
//!    and take the disjunction of all paths to label 1 (`manthan3-dtree`).
//! 3. **Ordering** — derive a linear extension of the learned inter-output
//!    dependencies.
//! 4. **Verification** — SAT check of the error formula
//!    `E(X,Y') = ¬ϕ(X,Y') ∧ (Y' ↔ f)`.
//! 5. **Repair** — MaxSAT-based selection of repair candidates and
//!    UNSAT-core-guided strengthening/weakening of the selected candidates.
//!
//! Manthan3 is sound (every returned vector passes the independent
//! certificate check of `manthan3_dqbf::verify`) but **not complete**: for
//! some true instances the repair loop cannot make progress (the paper's §5
//! "Limitations"); the engine then reports
//! [`UnknownReason::RepairStuck`].
//!
//! # Examples
//!
//! ```
//! use manthan3_core::{Manthan3, Manthan3Config, SynthesisOutcome};
//! use manthan3_dqbf::{verify, Dqbf};
//!
//! let dqbf = Dqbf::paper_example();
//! let engine = Manthan3::new(Manthan3Config::default());
//! let result = engine.synthesize(&dqbf);
//! match result.outcome {
//!     SynthesisOutcome::Realizable(vector) => {
//!         assert!(verify::check(&dqbf, &vector).is_valid());
//!     }
//!     other => panic!("expected synthesis to succeed, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod learn;
mod order;
mod preprocess;
mod repair;
mod stats;

pub use config::Manthan3Config;
pub use engine::{Manthan3, SynthesisOutcome, SynthesisResult, UnknownReason};
pub use stats::SynthesisStats;
