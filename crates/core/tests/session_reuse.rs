//! Regression tests for the persistent incremental oracle layer: however
//! many verify/repair iterations a run takes, it must construct exactly one
//! matrix solver and one error-formula solver, and its verdicts must agree
//! with the independent from-scratch certificate checker.

use manthan3_core::{Manthan3, Manthan3Config, SynthesisOutcome};
use manthan3_dqbf::verify;
use manthan3_gen::suite::suite;

#[test]
fn suite_runs_reuse_one_incremental_session() {
    let engine = Manthan3::new(Manthan3Config::fast());
    let mut repair_heavy_runs = 0usize;
    for instance in suite(5, 1) {
        let result = engine.synthesize(&instance.dqbf);
        let oracle = &result.stats.oracle;

        // The whole verify–repair loop runs on one persistent session: one
        // matrix solver + one error-formula solver, independent of how many
        // iterations were needed. (A run that never reaches verification
        // may legitimately construct fewer.)
        assert!(
            oracle.sat_solvers_constructed <= 2,
            "{}: constructed {} solvers over {} verification checks",
            instance.name,
            oracle.sat_solvers_constructed,
            result.stats.verification_checks
        );
        assert!(
            oracle.samplers_constructed <= 1,
            "{}: constructed {} samplers",
            instance.name,
            oracle.samplers_constructed
        );
        assert!(
            oracle.maxsat_hard_encodings <= 1,
            "{}: built {} MaxSAT hard encodings over {} repair iterations",
            instance.name,
            oracle.maxsat_hard_encodings,
            result.stats.repair_iterations
        );
        if result.stats.repair_iterations > 0 {
            repair_heavy_runs += 1;
        }

        // Verdicts must be identical to the from-scratch path: realizable
        // vectors pass the independent re-encoding check, and definite
        // verdicts match the generator's ground truth.
        match &result.outcome {
            SynthesisOutcome::Realizable(vector) => {
                assert!(
                    verify::check(&instance.dqbf, vector).is_valid(),
                    "{}: vector fails the from-scratch certificate check",
                    instance.name
                );
                if let Some(expected) = instance.expected {
                    assert!(expected, "{}: synthesized a false instance", instance.name);
                }
            }
            SynthesisOutcome::Unrealizable => {
                if let Some(expected) = instance.expected {
                    assert!(!expected, "{}: misreported a true instance", instance.name);
                }
            }
            SynthesisOutcome::Unknown(_) => {}
        }
    }
    // The suite must actually exercise the repair path, otherwise the
    // reuse assertion above is vacuous.
    assert!(
        repair_heavy_runs > 0,
        "no suite instance exercised the repair loop"
    );
}

#[test]
fn many_repair_iterations_share_one_error_solver() {
    // A planted instance that needs repair: force learning from few samples
    // so initial candidates are wrong and several repair iterations run.
    let config = Manthan3Config {
        num_samples: 4,
        use_unique_definitions: false,
        ..Manthan3Config::fast()
    };
    let engine = Manthan3::new(config);
    let mut exercised = false;
    for seed in 0..8u64 {
        let instance = manthan3_gen::planted::planted_true(
            &manthan3_gen::planted::PlantedParams::default(),
            seed,
        );
        let result = engine.synthesize(&instance.dqbf);
        if result.stats.repair_iterations >= 2 {
            exercised = true;
            assert_eq!(
                result.stats.oracle.sat_solvers_constructed, 2,
                "seed {seed}: repair iterations must not construct new solvers"
            );
            // Every verification and every repair G_k query went through the
            // same two solvers.
            assert!(
                result.stats.oracle.sat_calls
                    >= result.stats.verification_checks + result.stats.repair_sat_calls,
                "seed {seed}: oracle accounting is inconsistent"
            );
            // The MaxSAT side is equally incremental: one hard encoding for
            // the whole run, every FindCandidates call an assumption-served
            // solve on it.
            assert_eq!(
                result.stats.oracle.maxsat_hard_encodings, 1,
                "seed {seed}: repair iterations must not rebuild the MaxSAT encoding"
            );
            assert_eq!(result.stats.oracle.maxsat_solvers_constructed, 1);
            assert_eq!(
                result.stats.oracle.maxsat_incremental_calls, result.stats.oracle.maxsat_calls,
                "seed {seed}: a FindCandidates call bypassed the repair session"
            );
            assert!(
                result.stats.oracle.maxsat_calls >= result.stats.repair_iterations,
                "seed {seed}: every repair iteration starts with a FindCandidates call"
            );
        }
        if let SynthesisOutcome::Realizable(vector) = &result.outcome {
            assert!(verify::check(&instance.dqbf, vector).is_valid());
        }
    }
    assert!(exercised, "no seed produced a repair-heavy run");
}

/// The ISSUE 3 acceptance criterion: across a repair-heavy run of at least
/// 20 repair iterations, the oracle must record exactly one MaxSAT
/// hard-encoding construction, with every FindCandidates call served under
/// assumptions on the persistent repair session.
#[test]
fn twenty_plus_repair_iterations_build_one_maxsat_encoding() {
    // One candidate repaired per counterexample round and learning starved
    // to two samples: the loop has to grind through many iterations.
    let config = Manthan3Config {
        num_samples: 2,
        use_unique_definitions: false,
        max_repairs_per_iteration: 1,
        max_repair_iterations: 800,
        ..Manthan3Config::fast()
    };
    let engine = Manthan3::new(config);
    let mut deepest_run = 0usize;
    for seed in 0..6u64 {
        let params = manthan3_gen::planted::PlantedParams {
            num_universals: 14,
            num_existentials: 20,
            max_dependencies: 5,
            ..manthan3_gen::planted::PlantedParams::default()
        };
        let instance = manthan3_gen::planted::planted_true(&params, seed);
        let result = engine.synthesize(&instance.dqbf);
        let oracle = &result.stats.oracle;
        deepest_run = deepest_run.max(result.stats.repair_iterations);
        if result.stats.repair_iterations > 0 {
            assert_eq!(
                oracle.maxsat_hard_encodings, 1,
                "seed {seed}: {} repair iterations rebuilt the MaxSAT encoding",
                result.stats.repair_iterations
            );
            assert_eq!(
                oracle.maxsat_incremental_calls, oracle.maxsat_calls,
                "seed {seed}: a FindCandidates call bypassed the session"
            );
            assert!(oracle.maxsat_calls >= result.stats.repair_iterations);
        }
        if let SynthesisOutcome::Realizable(vector) = &result.outcome {
            assert!(verify::check(&instance.dqbf, vector).is_valid());
        }
    }
    assert!(
        deepest_run >= 20,
        "no run reached 20 repair iterations (deepest: {deepest_run}); \
         the acceptance assertion above is too weak"
    );
}
