//! Regression tests for the persistent incremental oracle layer: however
//! many verify/repair iterations a run takes, it must construct exactly one
//! matrix solver and one error-formula solver, and its verdicts must agree
//! with the independent from-scratch certificate checker.

use manthan3_core::{Manthan3, Manthan3Config, SynthesisOutcome};
use manthan3_dqbf::verify;
use manthan3_gen::suite::suite;

#[test]
fn suite_runs_reuse_one_incremental_session() {
    let engine = Manthan3::new(Manthan3Config::fast());
    let mut repair_heavy_runs = 0usize;
    for instance in suite(5, 1) {
        let result = engine.synthesize(&instance.dqbf);
        let oracle = &result.stats.oracle;

        // The whole verify–repair loop runs on one persistent session: one
        // matrix solver + one error-formula solver, independent of how many
        // iterations were needed. (A run that never reaches verification
        // may legitimately construct fewer.)
        assert!(
            oracle.sat_solvers_constructed <= 2,
            "{}: constructed {} solvers over {} verification checks",
            instance.name,
            oracle.sat_solvers_constructed,
            result.stats.verification_checks
        );
        assert!(
            oracle.samplers_constructed <= 1,
            "{}: constructed {} samplers",
            instance.name,
            oracle.samplers_constructed
        );
        if result.stats.repair_iterations > 0 {
            repair_heavy_runs += 1;
        }

        // Verdicts must be identical to the from-scratch path: realizable
        // vectors pass the independent re-encoding check, and definite
        // verdicts match the generator's ground truth.
        match &result.outcome {
            SynthesisOutcome::Realizable(vector) => {
                assert!(
                    verify::check(&instance.dqbf, vector).is_valid(),
                    "{}: vector fails the from-scratch certificate check",
                    instance.name
                );
                if let Some(expected) = instance.expected {
                    assert!(expected, "{}: synthesized a false instance", instance.name);
                }
            }
            SynthesisOutcome::Unrealizable => {
                if let Some(expected) = instance.expected {
                    assert!(!expected, "{}: misreported a true instance", instance.name);
                }
            }
            SynthesisOutcome::Unknown(_) => {}
        }
    }
    // The suite must actually exercise the repair path, otherwise the
    // reuse assertion above is vacuous.
    assert!(
        repair_heavy_runs > 0,
        "no suite instance exercised the repair loop"
    );
}

#[test]
fn many_repair_iterations_share_one_error_solver() {
    // A planted instance that needs repair: force learning from few samples
    // so initial candidates are wrong and several repair iterations run.
    let config = Manthan3Config {
        num_samples: 4,
        use_unique_definitions: false,
        ..Manthan3Config::fast()
    };
    let engine = Manthan3::new(config);
    let mut exercised = false;
    for seed in 0..8u64 {
        let instance = manthan3_gen::planted::planted_true(
            &manthan3_gen::planted::PlantedParams::default(),
            seed,
        );
        let result = engine.synthesize(&instance.dqbf);
        if result.stats.repair_iterations >= 2 {
            exercised = true;
            assert_eq!(
                result.stats.oracle.sat_solvers_constructed, 2,
                "seed {seed}: repair iterations must not construct new solvers"
            );
            // Every verification and every repair G_k query went through the
            // same two solvers.
            assert!(
                result.stats.oracle.sat_calls
                    >= result.stats.verification_checks + result.stats.repair_sat_calls,
                "seed {seed}: oracle accounting is inconsistent"
            );
        }
        if let SynthesisOutcome::Realizable(vector) = &result.outcome {
            assert!(verify::check(&instance.dqbf, vector).is_valid());
        }
    }
    assert!(exercised, "no seed produced a repair-heavy run");
}
