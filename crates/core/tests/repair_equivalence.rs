//! Repair-equivalence suite: the incremental [`RepairSession`] must be
//! indistinguishable from the from-scratch MaxSAT rebuild it replaced, and
//! the core-guided repair strategy indistinguishable from the linear one.
//!
//! Two angles, both on `suite(7, 1)`-class instances:
//!
//! * **Per-query equivalence** (randomized): for randomly generated
//!   counterexamples σ, the linear session's candidate set, the core-guided
//!   session's candidate set, and the from-scratch set must be *optimal
//!   solutions of the same objective* — equal cardinality (the optimum
//!   cost, all softs being unit weight) and each feasible for the other
//!   encodings (leaving every unselected output pinned to its σ[Y'] value
//!   keeps `ϕ ∧ σ[X]` satisfiable). Literal set equality is not required:
//!   distinct optimal solutions are legitimate tie-breaks of the same
//!   optimum.
//! * **Loop convergence**: driving the full verify–repair loop from
//!   identical (constant-false) candidate vectors, the incremental (either
//!   strategy) and the from-scratch FindCandidates paths must converge to
//!   the same verdict, and every claimed vector must pass the independent
//!   certificate check.

use manthan3_cnf::{Lit, Var};
use manthan3_core::{
    find_candidates_from_scratch, find_candidates_to_repair, repair_vector, Budget,
    DependencyState, Manthan3Config, Oracle, Order, RepairSession, RepairStrategy, Sigma,
    SynthesisStats, VerifyOutcome, VerifySession,
};
use manthan3_dqbf::{verify, Dqbf, HenkinVector};
use manthan3_gen::suite::suite;
use manthan3_sat::SolveResult;
use std::collections::BTreeMap;

/// Deterministic splitmix64, so the test needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random valuation of `vars` driven by the splitmix stream.
fn random_valuation(vars: &[Var], state: &mut u64) -> BTreeMap<Var, bool> {
    vars.iter()
        .map(|&v| (v, splitmix64(state) & 1 == 1))
        .collect()
}

/// `true` if leaving every output *outside* `selected` pinned to its σ[Y']
/// value keeps `ϕ ∧ σ[X]` satisfiable — i.e. `selected` is a feasible
/// candidate set for the FindCandidates objective.
fn is_feasible_candidate_set(
    dqbf: &Dqbf,
    sigma: &Sigma,
    selected: &[Var],
    session: &mut VerifySession,
    oracle: &mut Oracle,
) -> bool {
    let mut assumptions: Vec<Lit> = sigma.x.iter().map(|(&x, &v)| x.lit(v)).collect();
    for &y in dqbf.existentials() {
        if !selected.contains(&y) {
            assumptions.push(y.lit(sigma.y_prime.get(&y).copied().unwrap_or(false)));
        }
    }
    session.solve_phi(oracle, &assumptions) == SolveResult::Sat
}

#[test]
fn randomized_sigmas_yield_equivalent_candidate_sets() {
    let mut rng_state = 0x5EED_2026u64;
    let mut compared = 0usize;
    for instance in suite(7, 1) {
        let dqbf = &instance.dqbf;
        if dqbf.existentials().is_empty() {
            continue;
        }
        let mut oracle = Oracle::new(Budget::unlimited());
        let mut verify_session = VerifySession::new(dqbf, &mut oracle);
        if verify_session.check_matrix(&mut oracle) != SolveResult::Sat {
            continue;
        }
        let mut repair_session = RepairSession::new(dqbf, &mut oracle);
        // The core-guided twin runs on its own oracle so its strategy (and
        // its probe accounting) is independent of the linear session's.
        let mut oracle_cg =
            Oracle::new(Budget::unlimited()).with_repair_strategy(RepairStrategy::CoreGuided);
        let mut repair_session_cg = RepairSession::new(dqbf, &mut oracle_cg);
        assert_eq!(repair_session_cg.strategy(), RepairStrategy::CoreGuided);
        let mut stats = SynthesisStats::default();
        for _ in 0..8 {
            // A random σ[X] that extends to a model of ϕ (the only shape the
            // engine ever queries), with the witness extension as σ[Y] and a
            // random candidate output vector σ[Y'].
            let x = random_valuation(dqbf.universals(), &mut rng_state);
            let x_assumptions: Vec<Lit> = x.iter().map(|(&v, &b)| v.lit(b)).collect();
            if verify_session.solve_phi(&mut oracle, &x_assumptions) != SolveResult::Sat {
                continue;
            }
            let pi = verify_session.phi_model();
            let sigma = Sigma {
                x,
                y: dqbf
                    .existentials()
                    .iter()
                    .map(|&y| (y, pi.get(y).unwrap_or(false)))
                    .collect(),
                y_prime: random_valuation(dqbf.existentials(), &mut rng_state),
            };

            let incremental = find_candidates_to_repair(
                dqbf,
                &sigma,
                &mut repair_session,
                &mut oracle,
                &mut stats,
            );
            let core_guided = find_candidates_to_repair(
                dqbf,
                &sigma,
                &mut repair_session_cg,
                &mut oracle_cg,
                &mut stats,
            );
            let scratch = find_candidates_from_scratch(dqbf, &sigma, &mut oracle, &mut stats);

            // Same optimum cost (every soft is unit weight)…
            assert_eq!(
                incremental.len(),
                scratch.len(),
                "{}: incremental optimum {:?} vs from-scratch optimum {:?}",
                instance.name,
                incremental,
                scratch
            );
            assert_eq!(
                core_guided.len(),
                scratch.len(),
                "{}: core-guided optimum {:?} vs from-scratch optimum {:?}",
                instance.name,
                core_guided,
                scratch
            );
            // …and each solution is feasible for the shared objective.
            for (label, selected) in [
                ("incremental", &incremental),
                ("core-guided", &core_guided),
                ("from-scratch", &scratch),
            ] {
                assert!(
                    is_feasible_candidate_set(
                        dqbf,
                        &sigma,
                        selected,
                        &mut verify_session,
                        &mut oracle
                    ),
                    "{}: {label} set {selected:?} is not a feasible repair set",
                    instance.name
                );
            }
            compared += 1;
        }
        // The core-guided session shares the incremental accounting shape:
        // one hard encoding, every query under assumptions, and its probe
        // loop billed (with any extracted cores) to its own oracle.
        assert_eq!(
            oracle_cg.stats().maxsat_incremental_calls,
            repair_session_cg.solves()
        );
        assert_eq!(oracle_cg.stats().maxsat_hard_encodings, 1);
        assert_eq!(
            oracle_cg.stats().maxsat_probes,
            repair_session_cg.maxsat_stats().probes
        );
        assert_eq!(
            oracle_cg.stats().maxsat_cores,
            repair_session_cg.maxsat_stats().cores
        );
        // The session answered all its sigmas under assumptions on one
        // encoding; every other hard encoding belongs to a from-scratch
        // reference call (which pays one per call).
        assert_eq!(
            oracle.stats().maxsat_incremental_calls,
            repair_session.solves()
        );
        assert_eq!(
            oracle.stats().maxsat_hard_encodings,
            1 + (oracle.stats().maxsat_calls - oracle.stats().maxsat_incremental_calls)
        );
    }
    assert!(
        compared >= 40,
        "only {compared} sigma comparisons ran; the suite no longer exercises the query"
    );
}

/// How one custom verify–repair loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopVerdict {
    Valid,
    Unrealizable,
    Stuck,
    IterationLimit,
}

/// Drives the verify–repair loop from an all-constant-false candidate
/// vector, selecting repair candidates either on the persistent session
/// (searching with the given strategy) or with the from-scratch rebuild
/// (`incremental: None`), and reports how it converged.
fn run_loop(dqbf: &Dqbf, incremental: Option<RepairStrategy>) -> (LoopVerdict, usize) {
    let config = Manthan3Config::default();
    let mut stats = SynthesisStats::default();
    let mut oracle =
        Oracle::new(Budget::unlimited()).with_repair_strategy(incremental.unwrap_or_default());
    let mut verify_session = VerifySession::new(dqbf, &mut oracle);
    let mut repair_session = incremental.map(|_| RepairSession::new(dqbf, &mut oracle));
    let order = Order::from_dependencies(
        dqbf.existentials(),
        &DependencyState::new(dqbf.existentials()),
    );

    let mut vector = HenkinVector::new();
    let constant_false = vector.aig().constant(false);
    for &y in dqbf.existentials() {
        vector.set(y, constant_false);
    }

    for iteration in 0..256 {
        let delta = match verify_session.verify(dqbf, &vector, &mut oracle) {
            VerifyOutcome::Valid => {
                // The claimed vector must survive the independent
                // from-scratch certificate check, exactly like the engine's.
                vector.substitute_down(&order.substitution_order());
                assert!(
                    verify::check(dqbf, &vector).is_valid(),
                    "loop-repaired vector fails the certificate check"
                );
                return (LoopVerdict::Valid, iteration);
            }
            VerifyOutcome::Budget => unreachable!("unlimited budget"),
            VerifyOutcome::CounterExample(delta) => delta,
        };
        let x_assumptions: Vec<Lit> = dqbf
            .universals()
            .iter()
            .map(|&x| x.lit(delta.x.get(&x).copied().unwrap_or(false)))
            .collect();
        let pi = match verify_session.solve_phi(&mut oracle, &x_assumptions) {
            SolveResult::Unsat => return (LoopVerdict::Unrealizable, iteration),
            SolveResult::Unknown => unreachable!("unlimited budget"),
            SolveResult::Sat => verify_session.phi_model(),
        };
        let mut sigma = Sigma {
            x: delta.x,
            y: dqbf
                .existentials()
                .iter()
                .map(|&y| (y, pi.get(y).unwrap_or(false)))
                .collect(),
            y_prime: delta.y_prime,
        };
        let candidates = match &mut repair_session {
            Some(session) => {
                find_candidates_to_repair(dqbf, &sigma, session, &mut oracle, &mut stats)
            }
            None => find_candidates_from_scratch(dqbf, &sigma, &mut oracle, &mut stats),
        };
        let outcome = repair_vector(
            dqbf,
            &config,
            &mut verify_session,
            &mut oracle,
            &mut vector,
            &order,
            &mut sigma,
            candidates,
            &mut stats,
        );
        if outcome.stuck {
            return (LoopVerdict::Stuck, iteration);
        }
    }
    (LoopVerdict::IterationLimit, 256)
}

#[test]
fn loops_converge_to_the_same_verdicts() {
    let mut valid_runs = 0usize;
    for instance in suite(7, 1) {
        let dqbf = &instance.dqbf;
        if dqbf.existentials().is_empty() {
            continue;
        }
        let (incremental_verdict, _) = run_loop(dqbf, Some(RepairStrategy::Linear));
        let (core_guided_verdict, _) = run_loop(dqbf, Some(RepairStrategy::CoreGuided));
        let (scratch_verdict, _) = run_loop(dqbf, None);
        assert_eq!(
            incremental_verdict, scratch_verdict,
            "{}: incremental and from-scratch loops diverged",
            instance.name
        );
        assert_eq!(
            core_guided_verdict, scratch_verdict,
            "{}: core-guided and from-scratch loops diverged",
            instance.name
        );
        match incremental_verdict {
            LoopVerdict::Valid => {
                valid_runs += 1;
                if let Some(expected) = instance.expected {
                    assert!(expected, "{}: repaired a false instance", instance.name);
                }
            }
            LoopVerdict::Unrealizable => {
                if let Some(expected) = instance.expected {
                    assert!(!expected, "{}: misreported a true instance", instance.name);
                }
            }
            LoopVerdict::Stuck | LoopVerdict::IterationLimit => {}
        }
    }
    assert!(
        valid_runs > 0,
        "no instance was repaired to validity; the convergence check is vacuous"
    );
}
