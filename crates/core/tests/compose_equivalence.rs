//! Compositional/monolithic equivalence properties (ISSUE 8 satellite): on
//! randomly generated decomposable instances the [`CompositionalEngine`] must
//! agree with the monolithic [`Manthan3`] pipeline verdict-for-verdict, and
//! every Realizable vector — from either engine, whatever the cluster cap —
//! must pass the independent whole-formula certificate check. Planted
//! instances make the ground truth known, so "agree" is checkable as "both
//! synthesize", not merely "don't contradict each other".
//!
//! Two deterministic forced-coupling cases ride along: a cap-1 split whose
//! coupling clause is satisfied by the per-cluster functions outright
//! (composition verifies with zero repairs), and the propositionally
//! unsatisfiable (¬y1)(¬y2)(y1∨y2) split where the composition verify *must*
//! counterexample and the coupled-residue repair path must deliver the
//! Unrealizable verdict.

use manthan3_cnf::{Lit, Var};
use manthan3_core::{
    CompositionalConfig, CompositionalEngine, Manthan3, Manthan3Config, SynthesisOutcome,
};
use manthan3_dqbf::{verify, Dqbf};
use manthan3_gen::planted::{planted_true, PlantedParams};
use proptest::prelude::*;

/// Engine settings shared by both pipelines: no wall clock (determinism),
/// the fast structural budgets (debug-build test speed).
fn engine_config() -> Manthan3Config {
    Manthan3Config {
        num_samples: 60,
        ..Manthan3Config::fast()
    }
}

fn compositional_config(max_cluster_size: Option<usize>) -> CompositionalConfig {
    CompositionalConfig {
        engine: engine_config(),
        max_cluster_size,
        compose_repairs: true,
        threads: 1,
    }
}

/// One block of a decomposable instance: a small planted-true sub-DQBF.
#[derive(Debug, Clone)]
struct Block {
    num_universals: usize,
    num_existentials: usize,
    seed: u64,
}

/// Builds the block-offset union of the planted blocks. With `couple`, each
/// adjacent block pair additionally gets one *widened* clause — a clause of
/// the left block extended with an output of the right block. The widened
/// clause is a superset of a block clause, hence implied by it, so the
/// instance stays realizable; but it chains the blocks into one natural
/// co-occurrence cluster, which is exactly what a cluster cap then splits
/// back apart (making the widened clauses coupling clauses).
fn assemble(blocks: &[Block], couple: bool) -> Dqbf {
    let mut dqbf = Dqbf::new();
    let mut offset = 0u32;
    let mut block_templates: Vec<Vec<Lit>> = Vec::new();
    let mut block_first_output: Vec<Var> = Vec::new();
    for block in blocks {
        let base = planted_true(
            &PlantedParams {
                num_universals: block.num_universals,
                num_existentials: block.num_existentials,
                max_dependencies: block.num_universals,
                ..PlantedParams::default()
            },
            block.seed,
        )
        .dqbf;
        let shift = |v: Var| Var::new(v.index() as u32 + offset);
        for &x in base.universals() {
            dqbf.add_universal(shift(x));
        }
        for &y in base.existentials() {
            dqbf.add_existential(shift(y), base.dependencies(y).iter().map(|&d| shift(d)));
        }
        for clause in base.matrix().clauses() {
            dqbf.add_clause(clause.iter().map(|l| shift(l.var()).lit(l.is_positive())));
        }
        let template = base
            .matrix()
            .clauses()
            .iter()
            .find(|cl| cl.iter().any(|l| base.existentials().contains(&l.var())))
            .expect("a planted matrix constrains its outputs");
        block_templates.push(
            template
                .iter()
                .map(|l| shift(l.var()).lit(l.is_positive()))
                .collect(),
        );
        block_first_output.push(shift(
            *base
                .existentials()
                .first()
                .expect("a planted block has outputs"),
        ));
        offset += base.num_vars() as u32;
    }
    if couple {
        for pair in 0..blocks.len().saturating_sub(1) {
            let mut widened = block_templates[pair].clone();
            widened.push(block_first_output[pair + 1].positive());
            dqbf.add_clause(widened);
        }
    }
    dqbf
}

/// A strategy over 1–3 planted blocks plus the coupling flag and a cluster
/// cap (0 ⇒ uncapped). The vendored proptest has no `prop_flat_map`, so the
/// block count selects a prefix of three independently drawn blocks.
fn instances() -> impl Strategy<Value = (Vec<Block>, bool, usize)> {
    let block = (2usize..=4, 1usize..=3, 0u64..1024).prop_map(|(u, e, seed)| Block {
        num_universals: u,
        num_existentials: e,
        seed,
    });
    (
        proptest::collection::vec(block, 3),
        1usize..=3,
        any::<bool>(),
        0usize..=3,
    )
        .prop_map(|(blocks, count, couple, cap)| {
            (blocks.into_iter().take(count).collect(), couple, cap)
        })
}

fn synthesized(dqbf: &Dqbf, outcome: &SynthesisOutcome) -> bool {
    matches!(outcome, SynthesisOutcome::Realizable(v) if verify::check(dqbf, v).is_valid())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On planted (ground-truth realizable) decomposable instances, the
    /// monolithic and compositional pipelines both synthesize, and both
    /// vectors pass the independent whole-formula certificate check — for
    /// the natural decomposition and under an arbitrary cluster cap alike.
    #[test]
    fn compositional_agrees_with_monolithic_on_planted_instances(
        (blocks, couple, cap) in instances()
    ) {
        let dqbf = assemble(&blocks, couple);
        let monolithic = Manthan3::new(engine_config()).synthesize(&dqbf);
        prop_assert!(
            synthesized(&dqbf, &monolithic.outcome),
            "monolithic failed a planted instance: {:?}",
            monolithic.outcome
        );
        let cap = if cap == 0 { None } else { Some(cap) };
        let compositional =
            CompositionalEngine::new(compositional_config(cap)).synthesize(&dqbf);
        prop_assert!(
            synthesized(&dqbf, &compositional.outcome),
            "compositional (cap {cap:?}, {} clusters) diverged from the monolithic \
             verdict on a planted instance: {:?}",
            compositional.stats.clusters,
            compositional.outcome
        );
        prop_assert!(compositional.stats.clusters >= 1);
    }

    /// Poisoning one block with a propositional contradiction over its first
    /// output makes the whole matrix unsatisfiable; both engines must report
    /// Unrealizable — for the compositional engine this exercises the
    /// cluster-verdict transfer (a cluster's Unrealizable is the formula's).
    #[test]
    fn poisoned_block_is_unrealizable_for_both_engines(
        (blocks, couple, cap) in instances()
    ) {
        let mut dqbf = assemble(&blocks, couple);
        let &y = dqbf.existentials().first().expect("planted outputs");
        dqbf.add_clause([y.positive()]);
        dqbf.add_clause([y.negative()]);
        let monolithic = Manthan3::new(engine_config()).synthesize(&dqbf);
        prop_assert!(
            matches!(monolithic.outcome, SynthesisOutcome::Unrealizable),
            "monolithic missed the planted contradiction: {:?}",
            monolithic.outcome
        );
        let cap = if cap == 0 { None } else { Some(cap) };
        let compositional =
            CompositionalEngine::new(compositional_config(cap)).synthesize(&dqbf);
        prop_assert!(
            matches!(compositional.outcome, SynthesisOutcome::Unrealizable),
            "compositional (cap {cap:?}) missed the planted contradiction: {:?}",
            compositional.outcome
        );
    }
}

/// A cap-1 split whose coupling clause the per-cluster functions already
/// satisfy: composition verifies on the first try, zero coupled-residue
/// repairs.
#[test]
fn implied_coupling_composes_without_repair() {
    let x = Var::new(0);
    let (y1, y2) = (Var::new(1), Var::new(2));
    let mut dqbf = Dqbf::new();
    dqbf.add_universal(x);
    dqbf.add_existential(y1, [x]);
    dqbf.add_existential(y2, [x]);
    dqbf.add_clause([y1.positive(), x.positive()]);
    dqbf.add_clause([y2.positive(), x.negative()]);
    // Implied by the first clause: a superset.
    dqbf.add_clause([y1.positive(), x.positive(), y2.positive()]);
    let result = CompositionalEngine::new(compositional_config(Some(1))).synthesize(&dqbf);
    assert!(synthesized(&dqbf, &result.outcome), "{:?}", result.outcome);
    assert_eq!(result.stats.clusters, 2);
    assert_eq!(result.stats.compose_repairs, 0);
    assert!(result.stats.compose_verifies >= 1);
}

/// The propositionally unsatisfiable forced-coupling instance: each cap-1
/// cluster is realizable on its own ((¬y1) and (¬y2) alone), so the
/// falsity is only visible to the composition verify, and the coupled-residue
/// repair must merge the clusters and return Unrealizable.
#[test]
fn coupled_contradiction_is_found_by_the_composition_repair() {
    let x = Var::new(0);
    let (y1, y2) = (Var::new(1), Var::new(2));
    let mut dqbf = Dqbf::new();
    dqbf.add_universal(x);
    dqbf.add_existential(y1, [x]);
    dqbf.add_existential(y2, [x]);
    dqbf.add_clause([y1.negative()]);
    dqbf.add_clause([y2.negative()]);
    dqbf.add_clause([y1.positive(), y2.positive()]);
    let result = CompositionalEngine::new(compositional_config(Some(1))).synthesize(&dqbf);
    assert!(
        matches!(result.outcome, SynthesisOutcome::Unrealizable),
        "{:?}",
        result.outcome
    );
    assert_eq!(result.stats.clusters, 2);
    assert!(result.stats.compose_verifies >= 1);
    assert!(result.stats.compose_repairs >= 1);
}
