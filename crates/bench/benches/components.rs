//! Component micro-benchmarks: the substrates Manthan3 is built from
//! (SAT, MaxSAT, sampling, decision-tree learning, AIG-to-CNF encoding).
//!
//! These support the per-phase cost discussion in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use manthan3_aig::Aig;
use manthan3_cnf::{CnfBuilder, Lit, Var};
use manthan3_dtree::{Dataset, DecisionTree, DecisionTreeConfig};
use manthan3_gen::planted::{planted_true, PlantedParams};
use manthan3_maxsat::MaxSatSolver;
use manthan3_sampler::{Sampler, SamplerConfig};
use manthan3_sat::Solver;
use std::collections::HashMap;
use std::time::Duration;

fn planted_matrix() -> manthan3_cnf::Cnf {
    let params = PlantedParams {
        num_universals: 10,
        num_existentials: 8,
        max_dependencies: 4,
        ..PlantedParams::default()
    };
    planted_true(&params, 7).dqbf.matrix().clone()
}

fn bench_sat(c: &mut Criterion) {
    let cnf = planted_matrix();
    c.bench_function("sat/solve_planted_matrix", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            solver.add_cnf(&cnf);
            std::hint::black_box(solver.solve())
        })
    });
}

fn bench_maxsat(c: &mut Criterion) {
    let cnf = planted_matrix();
    c.bench_function("maxsat/findcandi_style_query", |b| {
        b.iter(|| {
            let mut solver = MaxSatSolver::new();
            solver.add_hard_cnf(&cnf);
            for v in 0..8u32 {
                solver.add_soft([Lit::positive(Var::new(10 + v))], 1);
            }
            std::hint::black_box(solver.solve())
        })
    });
}

fn bench_sampler(c: &mut Criterion) {
    let cnf = planted_matrix();
    c.bench_function("sampler/draw_100_samples", |b| {
        b.iter(|| {
            let mut sampler = Sampler::new(&cnf, SamplerConfig::default());
            std::hint::black_box(sampler.sample(100).len())
        })
    });
}

fn bench_dtree(c: &mut Criterion) {
    // 400 rows over 12 features with a hidden 3-variable function.
    let rows: Vec<(Vec<bool>, bool)> = (0..400u32)
        .map(|i| {
            let features: Vec<bool> = (0..12)
                .map(|j| (i * 2654435761).wrapping_shr(j) & 1 == 1)
                .collect();
            let label = features[2] ^ (features[5] & features[9]);
            (features, label)
        })
        .collect();
    let dataset = Dataset::from_rows(rows);
    c.bench_function("dtree/learn_400x12", |b| {
        b.iter(|| {
            std::hint::black_box(DecisionTree::learn(
                &dataset,
                &DecisionTreeConfig::default(),
            ))
        })
    });
}

fn bench_aig_encode(c: &mut Criterion) {
    let mut aig = Aig::new();
    let inputs: Vec<_> = (0..16).map(|i| aig.input(i)).collect();
    let mut acc = inputs[0];
    for chunk in inputs.windows(2) {
        let x = aig.xor(chunk[0], chunk[1]);
        acc = aig.ite(x, acc, chunk[1]);
    }
    let map: HashMap<usize, Lit> = (0..16)
        .map(|i| (i, Var::new(i as u32).positive()))
        .collect();
    c.bench_function("aig/encode_cnf_16_inputs", |b| {
        b.iter(|| {
            let mut builder = CnfBuilder::new(16);
            std::hint::black_box(aig.encode_cnf(acc, &mut builder, &map))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = components;
    config = config();
    targets = bench_sat, bench_maxsat, bench_sampler, bench_dtree, bench_aig_encode
}
criterion_main!(components);
