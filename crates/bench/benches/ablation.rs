//! Ablation benchmarks for Manthan3's design choices (DESIGN.md ABL-*):
//!
//! * learning with vs. without other `Y` variables as features,
//! * the `Ŷ` constraint in the repair formula `G_k` (the paper's §5
//!   discussion),
//! * unique-definition preprocessing on vs. off,
//! * training-sample count sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manthan3_core::{Manthan3, Manthan3Config};
use manthan3_gen::planted::{planted_true, PlantedParams};
use std::time::Duration;

fn instance() -> manthan3_gen::Instance {
    planted_true(
        &PlantedParams {
            num_universals: 6,
            num_existentials: 4,
            max_dependencies: 3,
            ..PlantedParams::default()
        },
        33,
    )
}

fn variants() -> Vec<(&'static str, Manthan3Config)> {
    vec![
        ("default", Manthan3Config::fast()),
        (
            "no_y_features",
            Manthan3Config {
                use_y_features: false,
                ..Manthan3Config::fast()
            },
        ),
        (
            "no_y_hat_constraint",
            Manthan3Config {
                constrain_y_hat: false,
                ..Manthan3Config::fast()
            },
        ),
        (
            "no_unique_definitions",
            Manthan3Config {
                use_unique_definitions: false,
                ..Manthan3Config::fast()
            },
        ),
        (
            "samples_50",
            Manthan3Config {
                num_samples: 50,
                ..Manthan3Config::fast()
            },
        ),
        (
            "samples_800",
            Manthan3Config {
                num_samples: 800,
                ..Manthan3Config::fast()
            },
        ),
    ]
}

fn bench_ablations(c: &mut Criterion) {
    let instance = instance();
    let mut group = c.benchmark_group("ablation");
    for (name, config) in variants() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                std::hint::black_box(Manthan3::new(config.clone()).synthesize(&instance.dqbf))
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = ablation;
    config = config();
    targets = bench_ablations
}
criterion_main!(ablation);
