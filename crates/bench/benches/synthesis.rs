//! End-to-end synthesis benchmarks: one small instance per benchmark family,
//! each engine (Manthan3, HQS2-like expansion, Pedant-like arbiter).
//!
//! These are the per-engine timings underlying the Figure 6–10 data at a
//! micro scale; the full figure data is produced by the `harness` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manthan3_baselines::{ArbiterConfig, ArbiterSolver, ExpansionConfig, ExpansionSolver};
use manthan3_core::{Manthan3, Manthan3Config};
use manthan3_gen::controller::{controller, ControllerParams};
use manthan3_gen::pec::{pec, PecParams};
use manthan3_gen::planted::{planted_true, PlantedParams};
use manthan3_gen::skolem::{skolem, SkolemParams};
use manthan3_gen::succinct::{succinct, SuccinctParams};
use manthan3_gen::Instance;
use std::time::Duration;

fn small_instances() -> Vec<Instance> {
    vec![
        planted_true(
            &PlantedParams {
                num_universals: 5,
                num_existentials: 3,
                max_dependencies: 3,
                ..PlantedParams::default()
            },
            21,
        ),
        pec(
            &PecParams {
                num_inputs: 3,
                num_gates: 4,
                num_blackboxes: 1,
                restrict_observability: false,
            },
            21,
        ),
        controller(
            &ControllerParams {
                num_clients: 3,
                observation_window: 3,
            },
            21,
        ),
        succinct(
            &SuccinctParams {
                num_propositional: 6,
                num_clauses: 18,
                planted_satisfiable: true,
            },
            21,
        ),
        skolem(
            &SkolemParams {
                num_universals: 4,
                num_existentials: 2,
                drop_probability: 0.1,
            },
            21,
        ),
    ]
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    for instance in small_instances() {
        group.bench_with_input(
            BenchmarkId::new("manthan3", &instance.name),
            &instance,
            |b, inst| {
                b.iter(|| {
                    std::hint::black_box(
                        Manthan3::new(Manthan3Config::fast()).synthesize(&inst.dqbf),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hqs2like", &instance.name),
            &instance,
            |b, inst| {
                b.iter(|| {
                    std::hint::black_box(
                        ExpansionSolver::new(ExpansionConfig::default()).synthesize(&inst.dqbf),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pedantlike", &instance.name),
            &instance,
            |b, inst| {
                b.iter(|| {
                    std::hint::black_box(
                        ArbiterSolver::new(ArbiterConfig::default()).synthesize(&inst.dqbf),
                    )
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = synthesis;
    config = config();
    targets = bench_engines
}
criterion_main!(synthesis);
