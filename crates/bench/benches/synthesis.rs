//! End-to-end synthesis benchmarks: one small instance per benchmark family,
//! each engine (Manthan3, HQS2-like expansion, Pedant-like arbiter).
//!
//! These are the per-engine timings underlying the Figure 6–10 data at a
//! micro scale; the full figure data is produced by the `harness` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manthan3_baselines::{ArbiterConfig, ArbiterSolver, ExpansionConfig, ExpansionSolver};
use manthan3_core::{Budget, Manthan3, Manthan3Config, Oracle, VerifySession};
use manthan3_dqbf::{Dqbf, HenkinVector};
use manthan3_gen::controller::{controller, ControllerParams};
use manthan3_gen::pec::{pec, PecParams};
use manthan3_gen::planted::{planted_true, PlantedParams};
use manthan3_gen::skolem::{skolem, SkolemParams};
use manthan3_gen::succinct::{succinct, SuccinctParams};
use manthan3_gen::Instance;
use std::time::Duration;

fn small_instances() -> Vec<Instance> {
    vec![
        planted_true(
            &PlantedParams {
                num_universals: 5,
                num_existentials: 3,
                max_dependencies: 3,
                ..PlantedParams::default()
            },
            21,
        ),
        pec(
            &PecParams {
                num_inputs: 3,
                num_gates: 4,
                num_blackboxes: 1,
                restrict_observability: false,
            },
            21,
        ),
        controller(
            &ControllerParams {
                num_clients: 3,
                observation_window: 3,
            },
            21,
        ),
        succinct(
            &SuccinctParams {
                num_propositional: 6,
                num_clauses: 18,
                planted_satisfiable: true,
            },
            21,
        ),
        skolem(
            &SkolemParams {
                num_universals: 4,
                num_existentials: 2,
                drop_probability: 0.1,
            },
            21,
        ),
    ]
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    for instance in small_instances() {
        group.bench_with_input(
            BenchmarkId::new("manthan3", &instance.name),
            &instance,
            |b, inst| {
                b.iter(|| {
                    std::hint::black_box(
                        Manthan3::new(Manthan3Config::fast()).synthesize(&inst.dqbf),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hqs2like", &instance.name),
            &instance,
            |b, inst| {
                b.iter(|| {
                    std::hint::black_box(
                        ExpansionSolver::new(ExpansionConfig::default()).synthesize(&inst.dqbf),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pedantlike", &instance.name),
            &instance,
            |b, inst| {
                b.iter(|| {
                    std::hint::black_box(
                        ArbiterSolver::new(ArbiterConfig::default()).synthesize(&inst.dqbf),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Builds a verification workload: a planted instance, plus two candidate
/// vectors sharing one AIG that differ in a single output — the shape of a
/// repair iteration (one candidate changed, the rest untouched).
fn verification_workload() -> (Dqbf, HenkinVector, HenkinVector) {
    let instance = planted_true(
        &PlantedParams {
            num_universals: 8,
            num_existentials: 6,
            max_dependencies: 4,
            ..PlantedParams::default()
        },
        5,
    );
    let dqbf = instance.dqbf;
    let mut base = HenkinVector::new();
    for &y in dqbf.existentials() {
        // Arbitrary (mostly wrong) candidates: the parity of the first two
        // dependencies, or constant false.
        let deps: Vec<_> = dqbf.dependencies(y).iter().copied().collect();
        let f = match deps.as_slice() {
            [] => base.aig().constant(false),
            [d] => {
                let i = base.aig_mut().input(d.index());
                i
            }
            [a, b, ..] => {
                let ia = base.aig_mut().input(a.index());
                let ib = base.aig_mut().input(b.index());
                base.aig_mut().xor(ia, ib)
            }
        };
        base.set(y, f);
    }
    // The alternative generation: one output's candidate is extended, the
    // way repair strengthens/weakens a function.
    let &swapped = dqbf.existentials().first().expect("instance has outputs");
    let current = base.get(swapped).expect("candidate set");
    let first_universal = dqbf.universals()[0];
    let extra = base.aig_mut().input(first_universal.index());
    let extended = base.aig_mut().or(current, extra);
    let mut alt = base.clone();
    alt.set(swapped, extended);
    (dqbf, base, alt)
}

/// The acceptance benchmark for the persistent session: a verify loop of
/// `LOOP_ITERATIONS` iterations with one candidate change per iteration —
/// the shape of the engine's verify–repair loop. On the reused incremental
/// session each iteration pays only for the changed candidate (activation
/// swap + cached encoding); the from-scratch variant re-encodes the error
/// formula and rebuilds the solver every iteration, so its cost scales with
/// the full encoding instead of the change.
fn bench_verification_session(c: &mut Criterion) {
    const LOOP_ITERATIONS: usize = 24;
    let (dqbf, base, alt) = verification_workload();
    let mut group = c.benchmark_group("verify_session");

    group.bench_function("incremental_reuse", |b| {
        b.iter(|| {
            let mut oracle = Oracle::new(Budget::unlimited());
            let mut session = VerifySession::new(&dqbf, &mut oracle);
            for i in 0..LOOP_ITERATIONS {
                let vector = if i % 2 == 0 { &base } else { &alt };
                std::hint::black_box(session.verify(&dqbf, vector, &mut oracle));
            }
        })
    });

    group.bench_function("from_scratch", |b| {
        b.iter(|| {
            for i in 0..LOOP_ITERATIONS {
                let vector = if i % 2 == 0 { &base } else { &alt };
                // The pre-oracle-layer behaviour: fresh solver + full error
                // formula encoding on every iteration.
                let mut oracle = Oracle::new(Budget::unlimited());
                let mut session = VerifySession::new(&dqbf, &mut oracle);
                std::hint::black_box(session.verify(&dqbf, vector, &mut oracle));
            }
        })
    });

    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = synthesis;
    config = config();
    targets = bench_engines, bench_verification_session
}
criterion_main!(synthesis);
