//! End-to-end synthesis benchmarks: one small instance per benchmark family,
//! each engine (Manthan3, HQS2-like expansion, Pedant-like arbiter).
//!
//! These are the per-engine timings underlying the Figure 6–10 data at a
//! micro scale; the full figure data is produced by the `harness` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manthan3_baselines::{ArbiterConfig, ArbiterSolver, ExpansionConfig, ExpansionSolver};
use manthan3_bench::{run_engine, EngineKind, RunRecord};
use manthan3_cnf::{Assignment, Cnf, Lit, Var};
use manthan3_core::{
    find_candidates_from_scratch, find_candidates_to_repair, Budget, CompositionalConfig,
    CompositionalEngine, Manthan3, Manthan3Config, Oracle, RepairSession, RepairStrategy, Sigma,
    SolverProfile, SynthesisOutcome, SynthesisStats, VerifySession,
};
use manthan3_dqbf::{verify, Dqbf, HenkinVector};
use manthan3_gen::controller::{controller, ControllerParams};
use manthan3_gen::pec::{pec, PecParams};
use manthan3_gen::planted::{planted_true, PlantedParams};
use manthan3_gen::skolem::{skolem, SkolemParams};
use manthan3_gen::succinct::{succinct, SuccinctParams};
use manthan3_gen::suite::suite;
use manthan3_gen::Instance;
use manthan3_portfolio::{Portfolio, PortfolioConfig};
use manthan3_sampler::{SamplerConfig, ShardedSampler};
use manthan3_sat::{SolveResult, Solver, SolverConfig};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

fn small_instances() -> Vec<Instance> {
    vec![
        planted_true(
            &PlantedParams {
                num_universals: 5,
                num_existentials: 3,
                max_dependencies: 3,
                ..PlantedParams::default()
            },
            21,
        ),
        pec(
            &PecParams {
                num_inputs: 3,
                num_gates: 4,
                num_blackboxes: 1,
                restrict_observability: false,
            },
            21,
        ),
        controller(
            &ControllerParams {
                num_clients: 3,
                observation_window: 3,
            },
            21,
        ),
        succinct(
            &SuccinctParams {
                num_propositional: 6,
                num_clauses: 18,
                planted_satisfiable: true,
            },
            21,
        ),
        skolem(
            &SkolemParams {
                num_universals: 4,
                num_existentials: 2,
                drop_probability: 0.1,
            },
            21,
        ),
    ]
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    for instance in small_instances() {
        group.bench_with_input(
            BenchmarkId::new("manthan3", &instance.name),
            &instance,
            |b, inst| {
                b.iter(|| {
                    std::hint::black_box(
                        Manthan3::new(Manthan3Config::fast()).synthesize(&inst.dqbf),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hqs2like", &instance.name),
            &instance,
            |b, inst| {
                b.iter(|| {
                    std::hint::black_box(
                        ExpansionSolver::new(ExpansionConfig::default()).synthesize(&inst.dqbf),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pedantlike", &instance.name),
            &instance,
            |b, inst| {
                b.iter(|| {
                    std::hint::black_box(
                        ArbiterSolver::new(ArbiterConfig::default()).synthesize(&inst.dqbf),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Builds a verification workload: a planted instance, plus two candidate
/// vectors sharing one AIG that differ in a single output — the shape of a
/// repair iteration (one candidate changed, the rest untouched).
fn verification_workload() -> (Dqbf, HenkinVector, HenkinVector) {
    let instance = planted_true(
        &PlantedParams {
            num_universals: 8,
            num_existentials: 6,
            max_dependencies: 4,
            ..PlantedParams::default()
        },
        5,
    );
    let dqbf = instance.dqbf;
    let mut base = HenkinVector::new();
    for &y in dqbf.existentials() {
        // Arbitrary (mostly wrong) candidates: the parity of the first two
        // dependencies, or constant false.
        let deps: Vec<_> = dqbf.dependencies(y).iter().copied().collect();
        let f = match deps.as_slice() {
            [] => base.aig().constant(false),
            [d] => {
                let i = base.aig_mut().input(d.index());
                i
            }
            [a, b, ..] => {
                let ia = base.aig_mut().input(a.index());
                let ib = base.aig_mut().input(b.index());
                base.aig_mut().xor(ia, ib)
            }
        };
        base.set(y, f);
    }
    // The alternative generation: one output's candidate is extended, the
    // way repair strengthens/weakens a function.
    let &swapped = dqbf.existentials().first().expect("instance has outputs");
    let current = base.get(swapped).expect("candidate set");
    let first_universal = dqbf.universals()[0];
    let extra = base.aig_mut().input(first_universal.index());
    let extended = base.aig_mut().or(current, extra);
    let mut alt = base.clone();
    alt.set(swapped, extended);
    (dqbf, base, alt)
}

/// The acceptance benchmark for the persistent session: a verify loop of
/// `LOOP_ITERATIONS` iterations with one candidate change per iteration —
/// the shape of the engine's verify–repair loop. On the reused incremental
/// session each iteration pays only for the changed candidate (activation
/// swap + cached encoding); the from-scratch variant re-encodes the error
/// formula and rebuilds the solver every iteration, so its cost scales with
/// the full encoding instead of the change.
///
/// The 200-iteration length doubles as the error-solver hygiene watchdog
/// (ROADMAP "error-solver hygiene"): it spans several of the session's
/// periodic maintenance passes (learnt-DB trimming plus garbage collection
/// of retired activation generations, every 32 retirements), so a
/// regression that lets the solver state grow with the generation count
/// shows up here as super-linear per-iteration cost.
fn bench_verification_session(c: &mut Criterion) {
    const LOOP_ITERATIONS: usize = 200;
    let (dqbf, base, alt) = verification_workload();
    let mut group = c.benchmark_group("verify_session");

    group.bench_function("incremental_reuse", |b| {
        b.iter(|| {
            let mut oracle = Oracle::new(Budget::unlimited());
            let mut session = VerifySession::new(&dqbf, &mut oracle);
            for i in 0..LOOP_ITERATIONS {
                let vector = if i % 2 == 0 { &base } else { &alt };
                std::hint::black_box(session.verify(&dqbf, vector, &mut oracle));
            }
        })
    });

    group.bench_function("from_scratch", |b| {
        b.iter(|| {
            for i in 0..LOOP_ITERATIONS {
                let vector = if i % 2 == 0 { &base } else { &alt };
                // The pre-oracle-layer behaviour: fresh solver + full error
                // formula encoding on every iteration.
                let mut oracle = Oracle::new(Budget::unlimited());
                let mut session = VerifySession::new(&dqbf, &mut oracle);
                std::hint::black_box(session.verify(&dqbf, vector, &mut oracle));
            }
        })
    });

    group.finish();
}

/// The acceptance benchmark for the parallel portfolio (ISSUE 2): on the
/// full generated suite `suite(7, 1)` the racing portfolio must synthesize
/// at least as many instances as the post-hoc sequential VBS, in total
/// wall-clock below the *sum* of the sequential per-engine runs — the
/// cooperative cancellation stops the losing engines within milliseconds,
/// so the race never pays for more than (roughly) the winner.
///
/// The full-suite comparison runs once and is printed (and asserted); the
/// criterion-timed series then races a small cross-family subset so the
/// parallel and sequential paths stay comparable over time.
///
/// The assertions are robust to machine variance: every instance this suite
/// solves at all is solved in a few tens of milliseconds — more than an
/// order of magnitude under the 250 ms budget — and the comparison holds
/// with a ~4x margin even on a single-core host (where the racing threads
/// time-slice); additional cores only widen the gap.
fn bench_portfolio(c: &mut Criterion) {
    let instances = suite(7, 1);
    let budget = Duration::from_millis(250);

    let sequential_start = Instant::now();
    let records: Vec<RunRecord> = instances
        .iter()
        .flat_map(|instance| {
            EngineKind::ALL
                .iter()
                .map(|&engine| run_engine(engine, instance, budget))
        })
        .collect();
    let sequential_wall = sequential_start.elapsed();
    let vbs_solved: BTreeSet<&String> = records
        .iter()
        .filter(|r| r.synthesized)
        .map(|r| &r.instance)
        .collect();

    let race_start = Instant::now();
    let mut race_solved = 0usize;
    for instance in &instances {
        let config = PortfolioConfig::with_time_budget(budget);
        let result = Portfolio::new(config).run(&instance.dqbf);
        if result
            .vector()
            .is_some_and(|v| verify::check(&instance.dqbf, v).is_valid())
        {
            race_solved += 1;
        }
    }
    let race_wall = race_start.elapsed();

    println!(
        "portfolio acceptance on suite(7, 1): sequential VBS solved {} in {:.2}s total, \
         parallel race solved {} in {:.2}s total",
        vbs_solved.len(),
        sequential_wall.as_secs_f64(),
        race_solved,
        race_wall.as_secs_f64(),
    );
    assert!(
        race_solved >= vbs_solved.len(),
        "parallel portfolio solved {race_solved} < sequential VBS {}",
        vbs_solved.len()
    );
    assert!(
        race_wall < sequential_wall,
        "parallel race ({race_wall:?}) is not below the sum of sequential runs \
         ({sequential_wall:?})"
    );

    let subset: Vec<Instance> = instances.into_iter().take(30).step_by(5).collect();
    let mut group = c.benchmark_group("portfolio");
    group.bench_function("parallel_race", |b| {
        b.iter(|| {
            for instance in &subset {
                let config = PortfolioConfig::with_time_budget(budget);
                std::hint::black_box(Portfolio::new(config).run(&instance.dqbf));
            }
        })
    });
    group.bench_function("sequential_engines", |b| {
        b.iter(|| {
            for instance in &subset {
                for engine in EngineKind::ALL {
                    std::hint::black_box(run_engine(engine, instance, budget));
                }
            }
        })
    });
    group.finish();
}

/// Deterministic splitmix64 so the workload needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A repair-heavy FindCandidates workload on a `suite(7, 1)` instance: the
/// satisfiable suite instance with the largest matrix × output product, plus
/// a deterministic sequence of counterexamples σ whose σ[X] all extend to a
/// model of ϕ (the only shape the engine ever queries).
fn repair_workload(iterations: usize) -> (Dqbf, Vec<Sigma>) {
    let dqbf = suite(7, 1)
        .into_iter()
        .map(|i| i.dqbf)
        .filter(|d| {
            if d.existentials().len() < 3 {
                return false;
            }
            let mut solver = Solver::new();
            solver.add_cnf(d.matrix());
            solver.ensure_vars(d.num_vars());
            solver.solve() == SolveResult::Sat
        })
        .max_by_key(|d| d.matrix().clauses().len() * d.existentials().len())
        .expect("the suite contains satisfiable instances with outputs");

    let mut phi = Solver::new();
    phi.add_cnf(dqbf.matrix());
    phi.ensure_vars(dqbf.num_vars());
    let mut rng_state = 0x0BE5_EED5u64;
    let mut sigmas = Vec::with_capacity(iterations);
    while sigmas.len() < iterations {
        let x: BTreeMap<Var, bool> = dqbf
            .universals()
            .iter()
            .map(|&v| (v, splitmix64(&mut rng_state) & 1 == 1))
            .collect();
        let assumptions: Vec<Lit> = x.iter().map(|(&v, &b)| v.lit(b)).collect();
        if phi.solve_with_assumptions(&assumptions) != SolveResult::Sat {
            continue;
        }
        let pi = phi.model();
        sigmas.push(Sigma {
            y: dqbf
                .existentials()
                .iter()
                .map(|&y| (y, pi.get(y).unwrap_or(false)))
                .collect(),
            y_prime: dqbf
                .existentials()
                .iter()
                .map(|&y| (y, splitmix64(&mut rng_state) & 1 == 1))
                .collect(),
            x,
        });
    }
    (dqbf, sigmas)
}

/// Runs the FindCandidates sweep on one persistent [`RepairSession`];
/// returns the oracle for the stats assertions.
fn sweep_incremental(dqbf: &Dqbf, sigmas: &[Sigma]) -> Oracle {
    let mut oracle = Oracle::new(Budget::unlimited());
    let mut session = RepairSession::new(dqbf, &mut oracle);
    let mut stats = SynthesisStats::default();
    for sigma in sigmas {
        std::hint::black_box(find_candidates_to_repair(
            dqbf,
            sigma,
            &mut session,
            &mut oracle,
            &mut stats,
        ));
    }
    oracle
}

/// Runs the same sweep on the pre-incremental path: a full hard-clause
/// MaxSAT rebuild per call.
fn sweep_from_scratch(dqbf: &Dqbf, sigmas: &[Sigma]) {
    let mut oracle = Oracle::new(Budget::unlimited());
    let mut stats = SynthesisStats::default();
    for sigma in sigmas {
        std::hint::black_box(find_candidates_from_scratch(
            dqbf,
            sigma,
            &mut oracle,
            &mut stats,
        ));
    }
}

/// The acceptance benchmark for the persistent repair session (ISSUE 3): a
/// FindCandidates sweep of well over 20 repair iterations must be served by
/// exactly one MaxSAT hard-encoding construction — every call under
/// assumptions — and beat the from-scratch rebuild-per-call path on wall
/// clock for the same sigma sequence on the same instance.
///
/// The one-shot comparison repeats both sweeps several times so the margin
/// dominates timer noise; the criterion-timed series then tracks both paths
/// over time.
fn bench_repair_session(c: &mut Criterion) {
    const REPAIR_ITERATIONS: usize = 30;
    const ACCEPTANCE_ROUNDS: usize = 20;
    let (dqbf, sigmas) = repair_workload(REPAIR_ITERATIONS);

    let incremental_start = Instant::now();
    let mut oracle = None;
    for _ in 0..ACCEPTANCE_ROUNDS {
        oracle = Some(sweep_incremental(&dqbf, &sigmas));
    }
    let incremental_wall = incremental_start.elapsed();
    let stats = *oracle.expect("at least one sweep ran").stats();
    assert_eq!(
        stats.maxsat_hard_encodings, 1,
        "a {REPAIR_ITERATIONS}-iteration repair sweep must build exactly one hard encoding"
    );
    assert_eq!(stats.maxsat_incremental_calls, REPAIR_ITERATIONS);
    assert_eq!(stats.maxsat_calls, REPAIR_ITERATIONS);

    let scratch_start = Instant::now();
    for _ in 0..ACCEPTANCE_ROUNDS {
        sweep_from_scratch(&dqbf, &sigmas);
    }
    let scratch_wall = scratch_start.elapsed();

    println!(
        "repair_incremental acceptance: {REPAIR_ITERATIONS} FindCandidates calls x \
         {ACCEPTANCE_ROUNDS} rounds — incremental session {:.2}ms, from-scratch rebuild {:.2}ms \
         ({:.1}x)",
        incremental_wall.as_secs_f64() * 1e3,
        scratch_wall.as_secs_f64() * 1e3,
        scratch_wall.as_secs_f64() / incremental_wall.as_secs_f64().max(1e-9),
    );
    assert!(
        incremental_wall < scratch_wall,
        "incremental repair session ({incremental_wall:?}) is not faster than the from-scratch \
         MaxSAT rebuild ({scratch_wall:?})"
    );

    let mut group = c.benchmark_group("repair_incremental");
    group.bench_function("incremental_session", |b| {
        b.iter(|| sweep_incremental(&dqbf, &sigmas))
    });
    group.bench_function("from_scratch", |b| {
        b.iter(|| sweep_from_scratch(&dqbf, &sigmas))
    });
    group.finish();
}

/// A moving-optimum FindCandidates workload (ISSUE 5): on the repair-heavy
/// suite instance, counterexamples alternate between σ[Y'] = the witness
/// extension (optimum 0 — every soft satisfiable) and σ[Y'] = the flipped
/// witness (a high optimum), so the optimum jumps on every call and the
/// warm-started linear search re-pays its climb each time.
fn moving_optimum_workload(iterations: usize) -> (Dqbf, Vec<Sigma>) {
    let (dqbf, base_sigmas) = repair_workload(iterations.div_ceil(2));
    let mut sigmas = Vec::with_capacity(iterations);
    for sigma in base_sigmas {
        // The witness extension satisfies every soft: optimum 0.
        let mut calm = sigma.clone();
        calm.y_prime = calm.y.clone();
        sigmas.push(calm);
        // The flipped witness disagrees everywhere the matrix pins an
        // output: the optimum jumps high.
        let mut spiky = sigma.clone();
        spiky.y_prime = sigma.y.iter().map(|(&y, &b)| (y, !b)).collect();
        sigmas.push(spiky);
    }
    sigmas.truncate(iterations);
    (dqbf, sigmas)
}

/// Runs the FindCandidates sweep on one persistent [`RepairSession`] with
/// the given strategy; returns the per-call candidate-set sizes (the optima,
/// all softs being unit weight) and the oracle for the probe accounting.
fn sweep_with_strategy(
    dqbf: &Dqbf,
    sigmas: &[Sigma],
    strategy: RepairStrategy,
) -> (Vec<usize>, Oracle) {
    let mut oracle = Oracle::new(Budget::unlimited()).with_repair_strategy(strategy);
    let mut session = RepairSession::new(dqbf, &mut oracle);
    let mut stats = SynthesisStats::default();
    let optima = sigmas
        .iter()
        .map(|sigma| {
            find_candidates_to_repair(dqbf, sigma, &mut session, &mut oracle, &mut stats).len()
        })
        .collect();
    (optima, oracle)
}

/// The acceptance benchmark for core-guided repair (ISSUE 5): on the
/// moving-optimum workload, the core-guided strategy must reach the *same*
/// optima as the warm-started linear search on every counterexample while
/// issuing strictly fewer SAT probes — the structural payoff of relaxing
/// cores instead of climbing bounds when the optimum jumps between
/// counterexamples.
fn bench_repair_core_guided(c: &mut Criterion) {
    const REPAIR_ITERATIONS: usize = 24;
    let (dqbf, sigmas) = moving_optimum_workload(REPAIR_ITERATIONS);

    let (linear_optima, linear_oracle) =
        sweep_with_strategy(&dqbf, &sigmas, RepairStrategy::Linear);
    let (core_optima, core_oracle) =
        sweep_with_strategy(&dqbf, &sigmas, RepairStrategy::CoreGuided);

    assert_eq!(
        linear_optima, core_optima,
        "the strategies disagreed on a FindCandidates optimum"
    );
    assert!(
        linear_optima.iter().sum::<usize>() > 0,
        "the moving-optimum workload never left optimum 0; the comparison is vacuous"
    );
    let linear_probes = linear_oracle.stats().maxsat_probes;
    let core_probes = core_oracle.stats().maxsat_probes;
    println!(
        "repair_core_guided acceptance: {REPAIR_ITERATIONS} FindCandidates calls on a \
         moving-optimum sigma sequence — linear {linear_probes} SAT probes, core-guided \
         {core_probes} probes ({} cores), identical optima (sum {})",
        core_oracle.stats().maxsat_cores,
        core_optima.iter().sum::<usize>(),
    );
    assert!(
        core_probes < linear_probes,
        "core-guided issued {core_probes} probes, not strictly fewer than the linear \
         search's {linear_probes}"
    );
    // Both sweeps ran fully incrementally: one hard encoding each.
    assert_eq!(linear_oracle.stats().maxsat_hard_encodings, 1);
    assert_eq!(core_oracle.stats().maxsat_hard_encodings, 1);

    let mut group = c.benchmark_group("repair_core_guided");
    group.bench_function("core_guided", |b| {
        b.iter(|| {
            std::hint::black_box(sweep_with_strategy(
                &dqbf,
                &sigmas,
                RepairStrategy::CoreGuided,
            ))
        })
    });
    group.bench_function("linear", |b| {
        b.iter(|| std::hint::black_box(sweep_with_strategy(&dqbf, &sigmas, RepairStrategy::Linear)))
    });
    group.finish();
}

/// The sampling workload for the sharded-sampling acceptance (ISSUE 4): the
/// satisfiable `suite(7, 1)` matrix with the most clause × variable work per
/// sample.
fn sampling_workload() -> Cnf {
    suite(7, 1)
        .into_iter()
        .map(|i| i.dqbf)
        .filter(|d| {
            let mut solver = Solver::new();
            solver.add_cnf(d.matrix());
            solver.ensure_vars(d.num_vars());
            solver.solve() == SolveResult::Sat
        })
        .max_by_key(|d| d.matrix().clauses().len() * d.num_vars())
        .map(|d| d.matrix().clone())
        .expect("the suite contains satisfiable instances")
}

/// Draws `n` samples through a sharded sampler and returns the batch with
/// its wall-clock time.
fn timed_sharded_request(
    cnf: &Cnf,
    shards: usize,
    seed: u64,
    n: usize,
) -> (Vec<Assignment>, Duration) {
    let config = SamplerConfig {
        seed,
        shards,
        ..SamplerConfig::default()
    };
    let start = Instant::now();
    let mut sampler = ShardedSampler::new(cnf, config);
    let (samples, outcome) = sampler.sample(n);
    let wall = start.elapsed();
    assert_eq!(outcome.reason, None, "workload request must be met in full");
    assert_eq!(samples.len(), n);
    (samples, wall)
}

/// Per-variable true-ratios of a merged batch.
fn batch_ratios(samples: &[Assignment], num_vars: usize) -> Vec<f64> {
    let mut trues = vec![0usize; num_vars];
    for sample in samples {
        for (v, &value) in sample.as_slice().iter().enumerate() {
            if value {
                trues[v] += 1;
            }
        }
    }
    trues
        .into_iter()
        .map(|t| t as f64 / samples.len() as f64)
        .collect()
}

/// The acceptance benchmark for sharded sampling (ISSUE 4): on a
/// `suite(7, 1)` sampling workload, 4 shards must (a) beat 1 shard on wall
/// clock and (b) keep the merged per-variable distribution within tolerance
/// of the single sampler's — the bias-weighted merge contract.
///
/// The wall-clock comparison needs hardware parallelism to mean anything:
/// a 4-shard run does the same total solver work as a 1-shard run, so on a
/// single-core host (where the shard threads time-slice) the strict
/// assertion degrades to a no-pathological-overhead bound, mirroring how
/// the portfolio bench reasons about core counts.
fn bench_sharded_sampling(c: &mut Criterion) {
    const REQUEST: usize = 1200;
    const ROUNDS: usize = 4;
    let cnf = sampling_workload();

    let mut single_wall = Duration::ZERO;
    let mut sharded_wall = Duration::ZERO;
    let mut max_ratio_gap = 0.0f64;
    for round in 0..ROUNDS as u64 {
        let (single, t_single) = timed_sharded_request(&cnf, 1, 4000 + round, REQUEST);
        let (sharded, t_sharded) = timed_sharded_request(&cnf, 4, 4000 + round, REQUEST);
        single_wall += t_single;
        sharded_wall += t_sharded;
        let single_ratios = batch_ratios(&single, cnf.num_vars());
        let sharded_ratios = batch_ratios(&sharded, cnf.num_vars());
        for (a, b) in single_ratios.iter().zip(&sharded_ratios) {
            max_ratio_gap = max_ratio_gap.max((a - b).abs());
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "sharded_sampling acceptance: {REQUEST} samples x {ROUNDS} rounds on {} vars / {} \
         clauses — 1 shard {:.2}ms, 4 shards {:.2}ms ({:.2}x, {cores} cores), max per-variable \
         ratio gap {max_ratio_gap:.3}",
        cnf.num_vars(),
        cnf.clauses().len(),
        single_wall.as_secs_f64() * 1e3,
        sharded_wall.as_secs_f64() * 1e3,
        single_wall.as_secs_f64() / sharded_wall.as_secs_f64().max(1e-9),
    );
    assert!(
        max_ratio_gap <= 0.15,
        "merged distribution drifted from the single-sampler contract: \
         max per-variable ratio gap {max_ratio_gap:.3}"
    );
    if cores >= 2 {
        assert!(
            sharded_wall < single_wall,
            "4-shard sampling ({sharded_wall:?}) is not faster than 1 shard \
             ({single_wall:?}) on a {cores}-core host"
        );
    } else {
        assert!(
            sharded_wall < single_wall * 2,
            "4-shard sampling ({sharded_wall:?}) pays pathological overhead over 1 shard \
             ({single_wall:?}) on a single core"
        );
    }

    let mut group = c.benchmark_group("sharded_sampling");
    for shards in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| std::hint::black_box(timed_sharded_request(&cnf, shards, 99, REQUEST / 4)))
        });
    }
    group.finish();
}

/// Builds the witness-multiplicity query of one suite instance: `copies`
/// copies of the matrix sharing the universals, each pair forced to differ
/// on at least one existential (per-pair XOR difference flags plus one long
/// at-least-one-difference clause). Under a universal cube the query is SAT
/// iff the instance admits `copies` pairwise distinct witness completions —
/// near the instance's witness count this sits at a hardness cliff that
/// produces real CDCL search (tens of thousands of conflicts), which the
/// plain matrices (conflict-free under unit propagation) never do.
fn multiplicity_query(dqbf: &Dqbf, copies: usize) -> (Cnf, Vec<Var>) {
    let n = dqbf.num_vars();
    let existentials = dqbf.existentials().to_vec();
    let mut cnf = Cnf::new(n);
    let mut next = n as u32;
    // twins[c][v] = copy c's variable for existential v (copy 0 = original).
    let mut twins: Vec<Vec<Option<Var>>> = vec![vec![None; n]; copies];
    for (i, twin) in twins.iter_mut().enumerate() {
        for &e in &existentials {
            twin[e.index()] = if i == 0 {
                Some(e)
            } else {
                next += 1;
                Some(Var::new(next - 1))
            };
        }
    }
    for twin in &twins {
        for clause in dqbf.matrix().clauses() {
            let mapped: Vec<Lit> = clause
                .iter()
                .map(|l| match twin[l.var().index()] {
                    Some(t) => t.lit(l.is_positive()),
                    None => *l,
                })
                .collect();
            cnf.add_clause(mapped);
        }
    }
    for i in 0..copies {
        for j in i + 1..copies {
            let mut diff = Vec::new();
            for &e in &existentials {
                let d = Var::new(next);
                next += 1;
                let y = twins[i][e.index()].unwrap().positive();
                let y2 = twins[j][e.index()].unwrap().positive();
                cnf.add_clause([!d.positive(), y, y2]);
                cnf.add_clause([!d.positive(), !y, !y2]);
                diff.push(d.positive());
            }
            cnf.add_clause(diff);
        }
    }
    cnf.ensure_vars(next as usize);
    (cnf, dqbf.universals().to_vec())
}

/// Runs the suite-wide solver-session workload under one configuration: per
/// instance, an incremental solver on its witness-multiplicity query answers
/// four random universal-cube calls, with session maintenance (reduction,
/// simplification, inprocessing) every second call. Returns the per-call
/// verdicts in instance order.
fn multiplicity_sweep(instances: &[Instance], config: &SolverConfig) -> Vec<SolveResult> {
    let mut verdicts = Vec::new();
    for instance in instances {
        let copies = 10.min(instance.dqbf.existentials().len());
        let (cnf, universals) = multiplicity_query(&instance.dqbf, copies);
        let mut solver = Solver::with_config(config.clone());
        solver.add_cnf(&cnf);
        let mut state = 0xDEAD_BEEFu64;
        for call in 0..4u32 {
            let mut assumptions = Vec::new();
            for &u in &universals {
                if splitmix64(&mut state).is_multiple_of(2) {
                    assumptions.push(u.lit(splitmix64(&mut state) & 1 == 1));
                }
            }
            verdicts.push(solver.solve_with_assumptions(&assumptions));
            if call % 2 == 1 {
                solver.reduce_learnt_db();
                solver.simplify();
                solver.inprocess();
            }
        }
    }
    verdicts
}

/// The acceptance benchmark of the CDCL solver-layer modernization (ISSUE
/// 6): on the `suite(7, 1)` witness-multiplicity workload, the modern
/// configuration must beat the pre-PR solver configuration —
/// [`SolverConfig::legacy`]: Luby restarts, activity-halving reduction, no
/// rephasing, full watch rebuilds, no inprocessing, per-clause heap storage
/// — by ≥ 1.3x wall clock with identical per-instance verdicts. Engine runs
/// under both profiles must also keep `sat_solvers_constructed == 2` (the
/// PR 1 invariant) across the suite, including its repair-heavy instances.
///
/// The criterion-timed series then tracks both configurations on the cliff
/// slice of the workload — the instances a bounded probe can NOT settle,
/// i.e. the ones whose multiplicity queries force real CDCL search. The
/// sub-cliff instances are conflict-free under unit propagation and would
/// only dilute the series with storage-independent noise, and a conflict
/// cap on the timed sweep itself would truncate precisely the search the
/// modernization speeds up, so the slice runs unbudgeted.
fn bench_solver_modernization(c: &mut Criterion) {
    let instances = suite(7, 1);

    let modern_start = Instant::now();
    let modern_verdicts = multiplicity_sweep(&instances, &SolverConfig::default());
    let modern_wall = modern_start.elapsed();
    let legacy_start = Instant::now();
    let legacy_verdicts = multiplicity_sweep(&instances, &SolverConfig::legacy());
    let legacy_wall = legacy_start.elapsed();
    assert_eq!(
        modern_verdicts, legacy_verdicts,
        "solver configurations disagree on per-instance verdicts"
    );
    let speedup = legacy_wall.as_secs_f64() / modern_wall.as_secs_f64().max(1e-9);
    println!(
        "solver_modernization acceptance: {} calls over {} instances — modern {:.2}s, \
         pre-PR configuration {:.2}s ({speedup:.2}x)",
        modern_verdicts.len(),
        instances.len(),
        modern_wall.as_secs_f64(),
        legacy_wall.as_secs_f64(),
    );
    assert!(
        speedup >= 1.3,
        "modern solver configuration ({modern_wall:?}) is not ≥ 1.3x faster than the pre-PR \
         configuration ({legacy_wall:?}): {speedup:.2}x"
    );

    // Engine-level invariants under both profiles: one SAT solver for the
    // verify session plus one for sampling (never rebuilt per iteration),
    // and agreeing outcomes, across the whole suite — which includes the
    // repair-heavy instances.
    let mut repaired = 0usize;
    for instance in &instances {
        let run = |profile: SolverProfile| {
            Manthan3::new(Manthan3Config {
                solver_profile: profile,
                ..Manthan3Config::default()
            })
            .synthesize(&instance.dqbf)
        };
        let modern = run(SolverProfile::Modern);
        let legacy = run(SolverProfile::Legacy);
        for result in [&modern, &legacy] {
            assert_eq!(
                result.stats.oracle.sat_solvers_constructed, 2,
                "instance {} rebuilt SAT solvers mid-run",
                instance.name
            );
        }
        assert_eq!(
            std::mem::discriminant(&modern.outcome),
            std::mem::discriminant(&legacy.outcome),
            "profiles disagree on instance {}",
            instance.name
        );
        if modern.stats.repair_iterations > 0 {
            repaired += 1;
        }
    }
    assert!(
        repaired >= 3,
        "the suite exercised only {repaired} repair-heavy runs"
    );

    // Cliff slice: instances whose multiplicity query a 3000-conflict probe
    // cannot settle (tens of thousands of conflicts each under the full
    // sweep). These are the runs whose search the modernization speeds up;
    // the rest of the suite is conflict-free under unit propagation and
    // indistinguishable across configurations.
    let probe_config = SolverConfig {
        max_conflicts: Some(3000),
        ..SolverConfig::default()
    };
    let timed: Vec<Instance> = instances
        .into_iter()
        .filter(|instance| {
            multiplicity_sweep(std::slice::from_ref(instance), &probe_config)
                .contains(&SolveResult::Unknown)
        })
        .collect();
    assert!(
        !timed.is_empty(),
        "no suite instance reached the multiplicity hardness cliff"
    );

    let mut group = c.benchmark_group("solver_modernization");
    for (name, config) in [
        ("modern", SolverConfig::default()),
        ("legacy_baseline", SolverConfig::legacy()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(multiplicity_sweep(&timed, &config)))
        });
    }
    group.finish();
}

/// The compositional workload (ISSUE 8): `k` disjoint block-offset copies of
/// a planted-true instance, plus two layers of widened clauses. Each widened
/// clause is a superset of a per-copy clause (hence implied by it), so the
/// per-copy Skolem functions already satisfy every one of them — they only
/// shape the co-occurrence graph. The *glue* layer (template widened with all
/// of the copy's outputs) welds each copy into a single natural cluster; the
/// *coupling* layer (left copy's template widened with the first output of
/// the right copy) then chains the copies into one natural cluster — exactly
/// the shape `max_cluster_size` exists to split, and a split at the per-copy
/// output count recovers the copy partition in BFS order. Returns the
/// instance and that per-copy output count.
fn compositional_workload(k: usize) -> (Dqbf, usize) {
    let base = planted_true(
        &PlantedParams {
            num_universals: 8,
            num_existentials: 6,
            max_dependencies: 5,
            ..PlantedParams::default()
        },
        21,
    )
    .dqbf;
    let n = base.num_vars();
    let offset = |v: Var, c: usize| Var::new((v.index() + c * n) as u32);
    let mut dqbf = Dqbf::new();
    for c in 0..k {
        for &x in base.universals() {
            dqbf.add_universal(offset(x, c));
        }
    }
    for c in 0..k {
        for &y in base.existentials() {
            let deps: Vec<Var> = base.dependencies(y).iter().map(|&d| offset(d, c)).collect();
            dqbf.add_existential(offset(y, c), deps);
        }
    }
    for c in 0..k {
        for clause in base.matrix().clauses() {
            let mapped: Vec<Lit> = clause
                .iter()
                .map(|l| offset(l.var(), c).lit(l.is_positive()))
                .collect();
            dqbf.add_clause(mapped);
        }
    }
    let template = base
        .matrix()
        .clauses()
        .iter()
        .find(|cl| cl.iter().any(|l| base.existentials().contains(&l.var())))
        .expect("the planted matrix constrains its outputs");
    let &first_output = base
        .existentials()
        .first()
        .expect("the planted instance has outputs");
    // The glue layer: the template widened with every output of the copy, so
    // the copy's outputs form one co-occurrence clique (one natural cluster
    // per copy instead of whatever the planted matrix fragments into).
    for c in 0..k {
        let mut glued: Vec<Lit> = template
            .iter()
            .map(|l| offset(l.var(), c).lit(l.is_positive()))
            .collect();
        for &y in base.existentials() {
            let lit = offset(y, c).positive();
            if !glued.contains(&lit) {
                glued.push(lit);
            }
        }
        dqbf.add_clause(glued);
    }
    // The coupling layer: widen one output-mentioning clause of each copy
    // with the first output of the next copy.
    for c in 0..k - 1 {
        let mut widened: Vec<Lit> = template
            .iter()
            .map(|l| offset(l.var(), c).lit(l.is_positive()))
            .collect();
        widened.push(offset(first_output, c + 1).positive());
        dqbf.add_clause(widened);
    }
    (dqbf, base.existentials().len())
}

/// The acceptance benchmark for compositional decomposition (ISSUE 8): on
/// the `k`-copy coupled workload, the compositional engine (cluster cap =
/// the per-copy output count, recovering the copy partition) must reach the
/// same verdict as the monolithic Manthan3 run — both vectors passing the
/// independent whole-formula certificate check — and beat it on wall clock
/// on a multi-core host. On a single core the cluster loops time-slice and
/// the strict assertion degrades to a no-pathological-overhead bound,
/// mirroring the sharded-sampling and portfolio benches. A capless run on
/// the same instance must degenerate to the monolithic pipeline (one
/// natural cluster) with at most one extra whole-formula verify.
///
/// The acceptance result is also written to `target/BENCH_compositional.json`
/// so the perf trajectory is machine-readable across PRs.
fn bench_compositional(c: &mut Criterion) {
    const COPIES: usize = 4;
    const ROUNDS: usize = 5;
    let (dqbf, per_copy_outputs) = compositional_workload(COPIES);

    let compositional_config = CompositionalConfig {
        max_cluster_size: Some(per_copy_outputs),
        ..CompositionalConfig::default()
    };

    let mut monolithic_wall = Duration::ZERO;
    let mut compositional_wall = Duration::ZERO;
    let mut clusters = 0usize;
    let mut verdict = String::new();
    for _ in 0..ROUNDS {
        let start = Instant::now();
        let monolithic = Manthan3::new(Manthan3Config::default()).synthesize(&dqbf);
        monolithic_wall += start.elapsed();

        let start = Instant::now();
        let compositional =
            CompositionalEngine::new(compositional_config.clone()).synthesize(&dqbf);
        compositional_wall += start.elapsed();

        // Identical verdicts, both independently certificate-checked.
        let SynthesisOutcome::Realizable(mono_vector) = &monolithic.outcome else {
            panic!(
                "monolithic engine failed the planted workload: {:?}",
                monolithic.outcome
            );
        };
        let SynthesisOutcome::Realizable(comp_vector) = &compositional.outcome else {
            panic!(
                "compositional engine failed the planted workload: {:?}",
                compositional.outcome
            );
        };
        assert!(verify::check(&dqbf, mono_vector).is_valid());
        assert!(verify::check(&dqbf, comp_vector).is_valid());
        assert!(
            compositional.stats.clusters >= 2,
            "the cluster cap must split the coupled workload (got {} clusters)",
            compositional.stats.clusters
        );
        clusters = compositional.stats.clusters;
        verdict = "realizable".to_string();
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "compositional acceptance: {COPIES}-copy coupled workload ({} outputs) x {ROUNDS} \
         rounds — monolithic {:.2}ms, compositional {:.2}ms across {clusters} clusters \
         ({:.2}x, {cores} cores)",
        dqbf.existentials().len(),
        monolithic_wall.as_secs_f64() * 1e3,
        compositional_wall.as_secs_f64() * 1e3,
        monolithic_wall.as_secs_f64() / compositional_wall.as_secs_f64().max(1e-9),
    );
    if cores >= 2 {
        assert!(
            compositional_wall < monolithic_wall,
            "compositional synthesis ({compositional_wall:?}) is not faster than the \
             monolithic engine ({monolithic_wall:?}) on a {cores}-core host"
        );
    } else {
        assert!(
            compositional_wall < monolithic_wall * 2,
            "compositional synthesis ({compositional_wall:?}) pays pathological overhead \
             over the monolithic engine ({monolithic_wall:?}) on a single core"
        );
    }

    // Single-cluster degeneracy: without the cap the coupling chains every
    // copy into one natural cluster, so the engine must delegate to the
    // monolithic pipeline — same verdict, at most one extra verify.
    let capless = CompositionalEngine::default().synthesize(&dqbf);
    let SynthesisOutcome::Realizable(capless_vector) = &capless.outcome else {
        panic!("capless compositional run failed: {:?}", capless.outcome);
    };
    assert!(verify::check(&dqbf, capless_vector).is_valid());
    assert_eq!(capless.stats.clusters, 1, "capless run must degenerate");
    assert!(
        capless.stats.compose_verifies <= 1,
        "degenerate run paid {} composition verifies",
        capless.stats.compose_verifies
    );

    // The machine-readable perf-trajectory record.
    let json = format!(
        "{{\n  \"instance\": \"planted_x{COPIES}_coupled\",\n  \"clusters\": {clusters},\n  \
         \"monolithic_wall_s\": {:.4},\n  \"compositional_wall_s\": {:.4},\n  \
         \"verdict\": \"{verdict}\"\n}}\n",
        monolithic_wall.as_secs_f64(),
        compositional_wall.as_secs_f64(),
    );
    // Anchor on the manifest dir: criterion benches run with the package —
    // not the workspace — as working directory.
    let target = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target");
    std::fs::write(format!("{target}/BENCH_compositional.json"), json)
        .expect("write target/BENCH_compositional.json");

    let mut group = c.benchmark_group("compositional");
    group.bench_function("compositional", |b| {
        b.iter(|| {
            std::hint::black_box(
                CompositionalEngine::new(compositional_config.clone()).synthesize(&dqbf),
            )
        })
    });
    group.bench_function("monolithic", |b| {
        b.iter(|| std::hint::black_box(Manthan3::new(Manthan3Config::default()).synthesize(&dqbf)))
    });
    group.finish();
}

/// The acceptance benchmark of the certifying solver layer (ISSUE 10): every
/// UNSAT verdict the engine reaches across the `suite(7, 1)` workload —
/// under both the modern and the pre-PR legacy solver profile — must come
/// with a DRAT certificate the independent `manthan3-drat` checker accepts.
/// A single rejection is a soundness alarm and fails the bench outright.
/// Certification may not change any verdict, and the logging + in-process
/// checking overhead must stay bounded relative to the plain run.
///
/// The criterion-timed series then tracks certified-vs-plain synthesis on
/// one repair-heavy instance, so the proof-logging overhead has a
/// machine-readable trajectory across PRs.
fn bench_certified(c: &mut Criterion) {
    let instances = suite(7, 1);

    let mut checked_total = 0u64;
    let mut proof_bytes_total = 0u64;
    let mut certified_wall = Duration::ZERO;
    let mut plain_wall = Duration::ZERO;
    for instance in &instances {
        for profile in [SolverProfile::Modern, SolverProfile::Legacy] {
            let start = Instant::now();
            let certified = Manthan3::new(Manthan3Config {
                certify: true,
                solver_profile: profile,
                ..Manthan3Config::default()
            })
            .synthesize(&instance.dqbf);
            certified_wall += start.elapsed();

            let start = Instant::now();
            let plain = Manthan3::new(Manthan3Config {
                solver_profile: profile,
                ..Manthan3Config::default()
            })
            .synthesize(&instance.dqbf);
            plain_wall += start.elapsed();

            // Soundness: no rejected certificates, anywhere, ever.
            assert_eq!(
                certified.stats.oracle.certificates_rejected, 0,
                "instance {} ({profile:?}) produced a rejected DRAT certificate",
                instance.name
            );
            assert!(
                certified.stats.certification_failure.is_none(),
                "instance {} ({profile:?}) surfaced a certification failure",
                instance.name
            );
            // Certification is observation, not interference: verdicts agree
            // with the plain run, and a synthesized vector still passes the
            // independent whole-formula check.
            assert_eq!(
                std::mem::discriminant(&certified.outcome),
                std::mem::discriminant(&plain.outcome),
                "certification changed the verdict on instance {}",
                instance.name
            );
            if let SynthesisOutcome::Realizable(vector) = &certified.outcome {
                assert!(verify::check(&instance.dqbf, vector).is_valid());
            }
            checked_total += certified.stats.oracle.certificates_checked;
            proof_bytes_total += certified.stats.oracle.proof_bytes;
        }
    }
    assert!(
        checked_total > 0,
        "the suite produced no UNSAT verdicts to certify"
    );
    assert!(
        proof_bytes_total > 0,
        "certifying runs logged no proof bytes"
    );
    let overhead = certified_wall.as_secs_f64() / plain_wall.as_secs_f64().max(1e-9);
    println!(
        "certified acceptance: {checked_total} UNSAT certificates checked, 0 rejected, \
         {proof_bytes_total} proof bytes over {} instances x 2 profiles — certified \
         {:.2}s vs plain {:.2}s ({overhead:.2}x overhead)",
        instances.len(),
        certified_wall.as_secs_f64(),
        plain_wall.as_secs_f64(),
    );
    // Proof logging + in-process RUP/RAT checking must not dominate the run.
    // The bound is deliberately loose (checking is quadratic on the hardest
    // refutations) but still catches pathological regressions.
    assert!(
        overhead <= 5.0,
        "certification overhead {overhead:.2}x exceeds the 5x acceptance bound \
         (certified {certified_wall:?}, plain {plain_wall:?})"
    );

    // Timed series on one repair-heavy instance: the certified-vs-plain gap
    // is the per-PR proof-logging overhead trajectory.
    let timed = instances
        .iter()
        .find(|instance| {
            Manthan3::new(Manthan3Config::default())
                .synthesize(&instance.dqbf)
                .stats
                .repair_iterations
                > 0
        })
        .expect("the suite contains a repair-heavy instance");
    let mut group = c.benchmark_group("certified");
    group.bench_function("certified", |b| {
        b.iter(|| {
            std::hint::black_box(
                Manthan3::new(Manthan3Config {
                    certify: true,
                    ..Manthan3Config::default()
                })
                .synthesize(&timed.dqbf),
            )
        })
    });
    group.bench_function("plain", |b| {
        b.iter(|| {
            std::hint::black_box(Manthan3::new(Manthan3Config::default()).synthesize(&timed.dqbf))
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = synthesis;
    config = config();
    targets = bench_engines, bench_verification_session, bench_repair_session,
        bench_repair_core_guided, bench_sharded_sampling, bench_portfolio,
        bench_solver_modernization, bench_compositional, bench_certified
}
criterion_main!(synthesis);
