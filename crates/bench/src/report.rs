//! VBS bookkeeping, cactus/scatter series and the summary table
//! (the data behind Figures 6–10 and the in-text counts of the paper).

use crate::{EngineKind, RunRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

/// Per-instance synthesis time of one engine (only instances it synthesized).
pub fn solved_times(records: &[RunRecord], engine: EngineKind) -> BTreeMap<String, f64> {
    records
        .iter()
        .filter(|r| r.engine == engine && r.synthesized)
        .map(|r| (r.instance.clone(), r.seconds()))
        .collect()
}

/// The Virtual Best Synthesizer over a set of engines: per instance, the
/// minimum synthesis time among the engines that synthesized it.
pub fn vbs(records: &[RunRecord], engines: &[EngineKind]) -> BTreeMap<String, f64> {
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    for &engine in engines {
        for (instance, time) in solved_times(records, engine) {
            best.entry(instance)
                .and_modify(|t| *t = t.min(time))
                .or_insert(time);
        }
    }
    best
}

/// Turns per-instance times into a cactus series: the `i`-th entry is the
/// time below which `i + 1` instances were synthesized.
pub fn cactus(times: &BTreeMap<String, f64>) -> Vec<f64> {
    let mut sorted: Vec<f64> = times.values().copied().collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted
}

/// Rows of the Figure 6 cactus plot: `(instances_synthesized, time_vbs,
/// time_vbs_plus_manthan3, time_portfolio)`; entries are padded with empty
/// strings when one series has synthesized fewer instances. The last column
/// holds the *true wall-clock* times of the parallel portfolio engine and is
/// entirely empty unless the records contain [`EngineKind::Portfolio`] runs
/// (harness flag `--engine portfolio`) — unlike the two VBS columns, which
/// are post-hoc minima over sequential runs.
pub fn fig6_rows(records: &[RunRecord]) -> Vec<Vec<String>> {
    let without = cactus(&vbs(
        records,
        &[EngineKind::Hqs2Like, EngineKind::PedantLike],
    ));
    let with = cactus(&vbs(records, &EngineKind::ALL));
    let live = cactus(&solved_times(records, EngineKind::Portfolio));
    let len = without.len().max(with.len()).max(live.len());
    let fmt =
        |series: &[f64], i: usize| series.get(i).map(|t| format!("{t:.4}")).unwrap_or_default();
    (0..len)
        .map(|i| {
            vec![
                (i + 1).to_string(),
                fmt(&without, i),
                fmt(&with, i),
                fmt(&live, i),
            ]
        })
        .collect()
}

/// Rows of a scatter plot comparing two portfolios: per instance, the
/// synthesis time of each side (or `timeout` seconds when not synthesized).
pub fn scatter_rows(
    records: &[RunRecord],
    x_engines: &[EngineKind],
    y_engines: &[EngineKind],
    timeout: Duration,
) -> Vec<Vec<String>> {
    let xs = vbs(records, x_engines);
    let ys = vbs(records, y_engines);
    let instances: BTreeSet<String> = records.iter().map(|r| r.instance.clone()).collect();
    let cap = timeout.as_secs_f64();
    instances
        .into_iter()
        .map(|name| {
            let x = xs.get(&name).copied().unwrap_or(cap);
            let y = ys.get(&name).copied().unwrap_or(cap);
            vec![name, format!("{x:.4}"), format!("{y:.4}")]
        })
        .collect()
}

/// The aggregate counts reported in the text of the paper's evaluation
/// section.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Total number of instances.
    pub total_instances: usize,
    /// Instances synthesized per engine.
    pub synthesized: BTreeMap<EngineKind, usize>,
    /// Instances decided (synthesized or proved false) per engine.
    pub decided: BTreeMap<EngineKind, usize>,
    /// Instances synthesized by the VBS of the two baselines.
    pub vbs_without_manthan3: usize,
    /// Instances synthesized by the VBS of all three engines.
    pub vbs_with_manthan3: usize,
    /// Instances only Manthan3 synthesized.
    pub manthan3_unique: usize,
    /// Instances where Manthan3 was the (strictly) fastest synthesizer.
    pub manthan3_fastest: usize,
    /// Instances Manthan3 synthesized but the HQS2-like engine did not.
    pub manthan3_not_hqs2: usize,
    /// Instances Manthan3 synthesized but the Pedant-like engine did not.
    pub manthan3_not_pedant: usize,
    /// Instances some baseline synthesized but Manthan3 did not.
    pub missed_by_manthan3: usize,
    /// Instances within 10 seconds of the baseline VBS for Manthan3
    /// (the green region of Figure 7).
    pub manthan3_within_10s_of_vbs: usize,
    /// Instances synthesized by the live parallel portfolio engine, when its
    /// records are present (`--engine portfolio`): the wall-clock
    /// counterpart of `vbs_with_manthan3`.
    pub portfolio_synthesized: Option<usize>,
    /// Instances decided by the live parallel portfolio engine, when its
    /// records are present.
    pub portfolio_decided: Option<usize>,
    /// Instances synthesized by the compositional engine, when its records
    /// are present (`--engine compositional`).
    pub compositional_synthesized: Option<usize>,
    /// Instances decided by the compositional engine, when its records are
    /// present.
    pub compositional_decided: Option<usize>,
    /// Total output clusters across the compositional runs, when present
    /// (instances × their partition sizes; equals the instance count when
    /// every instance degenerated to the monolithic pipeline).
    pub compositional_clusters: Option<usize>,
    /// Sum over the compositional runs of their longest per-cluster wall
    /// clock — the critical path a perfectly parallel schedule pays.
    pub cluster_wall_max_s: Option<f64>,
    /// Sum over the compositional runs of their total per-cluster wall
    /// clock — what a sequential schedule would have paid.
    pub cluster_wall_sum_s: Option<f64>,
    /// Total MaxSAT solve calls across every run of the suite.
    pub maxsat_calls: usize,
    /// Full hard-clause MaxSAT encodings constructed across every run (the
    /// fresh encodes; the persistent repair session pays one per
    /// repair-exercising run).
    pub maxsat_fresh_encodes: usize,
    /// MaxSAT calls served under assumptions on a persistent encoding (the
    /// incremental hits).
    pub maxsat_incremental_hits: usize,
    /// Internal SAT probes issued by MaxSAT optimum searches across every
    /// run — the unit the linear and core-guided repair strategies compete
    /// on (`--repair-strategy`).
    pub maxsat_probes: u64,
    /// UNSAT cores extracted and relaxed by core-guided MaxSAT searches
    /// across every run (zero for all-linear suites).
    pub maxsat_cores: u64,
    /// Total repair iterations across the Manthan3 runs.
    pub repair_iterations: usize,
    /// Total wall-clock seconds the Manthan3 runs spent in their sampling
    /// stage (the `sample_wall_s` summary row).
    pub sample_wall_s: f64,
    /// The sample-shard count the suite ran with (maximum across records;
    /// 1 = the plain single-threaded sampler).
    pub sample_shards: usize,
    /// Total per-sample solver calls billed to the shared oracle budgets
    /// across every run.
    pub sampler_calls: usize,
    /// Total sampling requests that emitted fewer samples than requested.
    pub sample_shortfalls: usize,
    /// MaxSAT calls per repair iteration over the Manthan3 runs (zero when
    /// the suite needed no repairs). Tracks the one-FindCandidates-per-
    /// counterexample shape of the incremental loop.
    pub maxsat_calls_per_repair_iteration: f64,
    /// Total unit propagations billed to the solver layer across every run.
    pub sat_propagations: u64,
    /// Propagations per second of engine wall-clock across the suite (the
    /// solver-modernization throughput headline).
    pub sat_propagations_per_sec: f64,
    /// Total CDCL conflicts across every run.
    pub conflicts: u64,
    /// Total CDCL decisions across every run.
    pub decisions: u64,
    /// Total CDCL restarts across every run.
    pub sat_restarts: u64,
    /// Assumption decision levels reused between incremental solve calls
    /// across every run.
    pub reused_levels: u64,
    /// Rephasing events across every run.
    pub rephases: u64,
    /// Live learnt clauses left in the solvers at the end of each run,
    /// summed across runs (for the portfolio: summed across its racers).
    pub learnt_db_live: usize,
    /// Glue (LBD ≤ 2) learnt clauses alive at the end of each run, summed
    /// across runs.
    pub glue2_clauses: usize,
    /// Clauses subsumed away by inter-call inprocessing across every run
    /// (zero under the legacy profile).
    pub inprocess_subsumed: u64,
    /// Clauses strengthened by inter-call inprocessing across every run.
    pub inprocess_strengthened: u64,
    /// Inprocessing passes that actually ran across every run.
    pub inprocess_passes: u64,
    /// Vivification candidates attempted across every run.
    pub vivify_candidates: u64,
    /// Vivification attempts that strengthened their clause across every
    /// run.
    pub vivify_strengthened: u64,
    /// Clause-arena compacting garbage collections across every run.
    pub arena_collections: u64,
    /// Arena words occupied by live clauses at the end of each run, summed
    /// across runs.
    pub arena_live_words: usize,
    /// SAT models re-verified against the full clause database across every
    /// run (a debug-build self-check; 0 in release harness runs).
    pub models_verified: u64,
    /// DRAT certificates of UNSAT verdicts handed to the in-process checker
    /// across every run (0 unless `--certify` ran).
    pub certificates_checked: u64,
    /// Checked certificates the independent checker rejected across every
    /// run — any non-zero value is a soundness alarm.
    pub certificates_rejected: u64,
    /// Total DRAT proof bytes across all checked certificates.
    pub proof_bytes: u64,
    /// Total clause-addition proof steps across all checked certificates.
    pub proof_adds: u64,
    /// Total clause-deletion proof steps across all checked certificates.
    pub proof_deletes: u64,
    /// Total wall-clock seconds spent inside the in-process proof checker.
    pub certify_wall_s: f64,
    /// Calls refused because a budget was exhausted, across every run.
    pub budget_exhaustions: usize,
    /// CDCL solvers constructed through the oracles across every run.
    pub sat_solvers_constructed: usize,
    /// MaxSAT solvers constructed through the oracles across every run.
    pub maxsat_solvers_constructed: usize,
    /// Samplers constructed through the oracles across every run.
    pub samplers_constructed: usize,
}

/// Computes the summary table from the run records.
pub fn summary(records: &[RunRecord]) -> Summary {
    let instances: BTreeSet<String> = records.iter().map(|r| r.instance.clone()).collect();
    let per_engine: BTreeMap<EngineKind, BTreeMap<String, f64>> = EngineKind::ALL
        .iter()
        .map(|&e| (e, solved_times(records, e)))
        .collect();
    let baseline_vbs = vbs(records, &[EngineKind::Hqs2Like, EngineKind::PedantLike]);
    let full_vbs = vbs(records, &EngineKind::ALL);
    let manthan3 = &per_engine[&EngineKind::Manthan3];
    let hqs = &per_engine[&EngineKind::Hqs2Like];
    let pedant = &per_engine[&EngineKind::PedantLike];

    let synthesized = EngineKind::ALL
        .iter()
        .map(|&e| (e, per_engine[&e].len()))
        .collect();
    let decided = EngineKind::ALL
        .iter()
        .map(|&e| {
            (
                e,
                records
                    .iter()
                    .filter(|r| r.engine == e && r.decided)
                    .count(),
            )
        })
        .collect();

    let manthan3_unique = manthan3
        .keys()
        .filter(|i| !baseline_vbs.contains_key(*i))
        .count();
    let manthan3_fastest = manthan3
        .iter()
        .filter(|(i, t)| baseline_vbs.get(*i).is_none_or(|b| *t < b))
        .count();
    let manthan3_not_hqs2 = manthan3.keys().filter(|i| !hqs.contains_key(*i)).count();
    let manthan3_not_pedant = manthan3.keys().filter(|i| !pedant.contains_key(*i)).count();
    let missed_by_manthan3 = baseline_vbs
        .keys()
        .filter(|i| !manthan3.contains_key(*i))
        .count();
    let manthan3_within_10s_of_vbs = manthan3
        .iter()
        .filter(|(i, t)| baseline_vbs.get(*i).is_some_and(|b| **t <= *b + 10.0))
        .count();
    let portfolio_records: Vec<&RunRecord> = records
        .iter()
        .filter(|r| r.engine == EngineKind::Portfolio)
        .collect();
    let (portfolio_synthesized, portfolio_decided) = if portfolio_records.is_empty() {
        (None, None)
    } else {
        (
            Some(portfolio_records.iter().filter(|r| r.synthesized).count()),
            Some(portfolio_records.iter().filter(|r| r.decided).count()),
        )
    };
    let compositional_records: Vec<&RunRecord> = records
        .iter()
        .filter(|r| r.engine == EngineKind::Compositional)
        .collect();
    let (
        compositional_synthesized,
        compositional_decided,
        compositional_clusters,
        cluster_wall_max_s,
        cluster_wall_sum_s,
    ) = if compositional_records.is_empty() {
        (None, None, None, None, None)
    } else {
        (
            Some(
                compositional_records
                    .iter()
                    .filter(|r| r.synthesized)
                    .count(),
            ),
            Some(compositional_records.iter().filter(|r| r.decided).count()),
            Some(compositional_records.iter().map(|r| r.clusters).sum()),
            Some(
                compositional_records
                    .iter()
                    .map(|r| r.cluster_wall_max.as_secs_f64())
                    .sum(),
            ),
            Some(
                compositional_records
                    .iter()
                    .map(|r| r.cluster_wall_sum.as_secs_f64())
                    .sum(),
            ),
        )
    };

    let maxsat_calls = records.iter().map(|r| r.oracle.maxsat_calls).sum();
    let maxsat_fresh_encodes = records.iter().map(|r| r.oracle.maxsat_hard_encodings).sum();
    let maxsat_incremental_hits = records
        .iter()
        .map(|r| r.oracle.maxsat_incremental_calls)
        .sum();
    let maxsat_probes = records.iter().map(|r| r.oracle.maxsat_probes).sum();
    let maxsat_cores = records.iter().map(|r| r.oracle.maxsat_cores).sum();
    // The per-iteration ratio is a Manthan3 shape invariant (one
    // FindCandidates call per counterexample), so it is computed over the
    // Manthan3 records only — the portfolio merges counters across engines
    // without per-engine iteration counts.
    let manthan3_records: Vec<&RunRecord> = records
        .iter()
        .filter(|r| r.engine == EngineKind::Manthan3)
        .collect();
    let repair_iterations: usize = manthan3_records.iter().map(|r| r.repair_iterations).sum();
    let sample_wall_s: f64 = manthan3_records
        .iter()
        .map(|r| r.sample_wall.as_secs_f64())
        .sum();
    let sample_shards = records.iter().map(|r| r.sample_shards).max().unwrap_or(0);
    let sampler_calls: usize = records.iter().map(|r| r.oracle.sampler_calls).sum();
    let sample_shortfalls: usize = records.iter().map(|r| r.oracle.sample_shortfalls).sum();
    let manthan3_maxsat_calls: usize = manthan3_records.iter().map(|r| r.oracle.maxsat_calls).sum();
    let maxsat_calls_per_repair_iteration = if repair_iterations == 0 {
        0.0
    } else {
        manthan3_maxsat_calls as f64 / repair_iterations as f64
    };
    let sat_propagations: u64 = records.iter().map(|r| r.oracle.sat_propagations).sum();
    let total_seconds: f64 = records.iter().map(|r| r.seconds()).sum();
    let sat_propagations_per_sec = if total_seconds > 0.0 {
        sat_propagations as f64 / total_seconds
    } else {
        0.0
    };
    let conflicts: u64 = records.iter().map(|r| r.oracle.conflicts).sum();
    let decisions: u64 = records.iter().map(|r| r.oracle.decisions).sum();
    let sat_restarts: u64 = records.iter().map(|r| r.oracle.sat_restarts).sum();
    let reused_levels: u64 = records.iter().map(|r| r.oracle.reused_levels).sum();
    let rephases: u64 = records.iter().map(|r| r.oracle.rephases).sum();
    let learnt_db_live: usize = records.iter().map(|r| r.oracle.learnt_db_live).sum();
    let glue2_clauses: usize = records.iter().map(|r| r.oracle.glue2_clauses).sum();
    let inprocess_subsumed: u64 = records.iter().map(|r| r.oracle.inprocess_subsumed).sum();
    let inprocess_strengthened: u64 = records
        .iter()
        .map(|r| r.oracle.inprocess_strengthened)
        .sum();
    let inprocess_passes: u64 = records.iter().map(|r| r.oracle.inprocess_passes).sum();
    let vivify_candidates: u64 = records.iter().map(|r| r.oracle.vivify_candidates).sum();
    let vivify_strengthened: u64 = records.iter().map(|r| r.oracle.vivify_strengthened).sum();
    let arena_collections: u64 = records.iter().map(|r| r.oracle.arena_collections).sum();
    let arena_live_words: usize = records.iter().map(|r| r.oracle.arena_live_words).sum();
    let models_verified: u64 = records.iter().map(|r| r.oracle.models_verified).sum();
    let certificates_checked: u64 = records.iter().map(|r| r.oracle.certificates_checked).sum();
    let certificates_rejected: u64 = records.iter().map(|r| r.oracle.certificates_rejected).sum();
    let proof_bytes: u64 = records.iter().map(|r| r.oracle.proof_bytes).sum();
    let proof_adds: u64 = records.iter().map(|r| r.oracle.proof_adds).sum();
    let proof_deletes: u64 = records.iter().map(|r| r.oracle.proof_deletes).sum();
    let certify_wall_s: f64 = records
        .iter()
        .map(|r| r.oracle.certify_nanos as f64 / 1e9)
        .sum();
    let budget_exhaustions: usize = records.iter().map(|r| r.oracle.budget_exhaustions).sum();
    let sat_solvers_constructed: usize = records
        .iter()
        .map(|r| r.oracle.sat_solvers_constructed)
        .sum();
    let maxsat_solvers_constructed: usize = records
        .iter()
        .map(|r| r.oracle.maxsat_solvers_constructed)
        .sum();
    let samplers_constructed: usize = records.iter().map(|r| r.oracle.samplers_constructed).sum();

    Summary {
        total_instances: instances.len(),
        synthesized,
        decided,
        vbs_without_manthan3: baseline_vbs.len(),
        vbs_with_manthan3: full_vbs.len(),
        manthan3_unique,
        manthan3_fastest,
        manthan3_not_hqs2,
        manthan3_not_pedant,
        missed_by_manthan3,
        manthan3_within_10s_of_vbs,
        portfolio_synthesized,
        portfolio_decided,
        compositional_synthesized,
        compositional_decided,
        compositional_clusters,
        cluster_wall_max_s,
        cluster_wall_sum_s,
        maxsat_calls,
        maxsat_fresh_encodes,
        maxsat_incremental_hits,
        maxsat_probes,
        maxsat_cores,
        repair_iterations,
        sample_wall_s,
        sample_shards,
        sampler_calls,
        sample_shortfalls,
        maxsat_calls_per_repair_iteration,
        sat_propagations,
        sat_propagations_per_sec,
        conflicts,
        decisions,
        sat_restarts,
        reused_levels,
        rephases,
        learnt_db_live,
        glue2_clauses,
        inprocess_subsumed,
        inprocess_strengthened,
        inprocess_passes,
        vivify_candidates,
        vivify_strengthened,
        arena_collections,
        arena_live_words,
        models_verified,
        certificates_checked,
        certificates_rejected,
        proof_bytes,
        proof_adds,
        proof_deletes,
        certify_wall_s,
        budget_exhaustions,
        sat_solvers_constructed,
        maxsat_solvers_constructed,
        samplers_constructed,
    }
}

impl Summary {
    /// Renders the summary as CSV rows `(metric, value)`.
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut rows = vec![
            vec!["total_instances".into(), self.total_instances.to_string()],
            vec![
                "vbs_without_manthan3".into(),
                self.vbs_without_manthan3.to_string(),
            ],
            vec![
                "vbs_with_manthan3".into(),
                self.vbs_with_manthan3.to_string(),
            ],
            vec!["manthan3_unique".into(), self.manthan3_unique.to_string()],
            vec!["manthan3_fastest".into(), self.manthan3_fastest.to_string()],
            vec![
                "manthan3_not_hqs2".into(),
                self.manthan3_not_hqs2.to_string(),
            ],
            vec![
                "manthan3_not_pedant".into(),
                self.manthan3_not_pedant.to_string(),
            ],
            vec![
                "missed_by_manthan3".into(),
                self.missed_by_manthan3.to_string(),
            ],
            vec![
                "manthan3_within_10s_of_vbs".into(),
                self.manthan3_within_10s_of_vbs.to_string(),
            ],
        ];
        for engine in EngineKind::ALL {
            rows.push(vec![
                format!("synthesized_{engine}"),
                self.synthesized[&engine].to_string(),
            ]);
            rows.push(vec![
                format!("decided_{engine}"),
                self.decided[&engine].to_string(),
            ]);
        }
        if let (Some(synthesized), Some(decided)) =
            (self.portfolio_synthesized, self.portfolio_decided)
        {
            rows.push(vec![
                "synthesized_portfolio".into(),
                synthesized.to_string(),
            ]);
            rows.push(vec!["decided_portfolio".into(), decided.to_string()]);
        }
        if let (Some(synthesized), Some(decided)) =
            (self.compositional_synthesized, self.compositional_decided)
        {
            rows.push(vec![
                "synthesized_compositional".into(),
                synthesized.to_string(),
            ]);
            rows.push(vec!["decided_compositional".into(), decided.to_string()]);
        }
        // Compositional cluster columns: the partition sizes and the
        // parallel-vs-sequential cluster wall clocks (critical path vs.
        // total work).
        if let (Some(clusters), Some(wall_max), Some(wall_sum)) = (
            self.compositional_clusters,
            self.cluster_wall_max_s,
            self.cluster_wall_sum_s,
        ) {
            rows.push(vec!["compositional_clusters".into(), clusters.to_string()]);
            rows.push(vec!["cluster_wall_max_s".into(), format!("{wall_max:.4}")]);
            rows.push(vec!["cluster_wall_sum_s".into(), format!("{wall_sum:.4}")]);
        }
        // MaxSAT oracle counters: the bench trajectory of the incremental
        // repair refactor (fresh encodes should stay at ~one per
        // repair-exercising run, incremental hits carry the rest).
        rows.push(vec!["maxsat_calls".into(), self.maxsat_calls.to_string()]);
        rows.push(vec![
            "maxsat_fresh_encodes".into(),
            self.maxsat_fresh_encodes.to_string(),
        ]);
        rows.push(vec![
            "maxsat_incremental_hits".into(),
            self.maxsat_incremental_hits.to_string(),
        ]);
        rows.push(vec!["maxsat_probes".into(), self.maxsat_probes.to_string()]);
        rows.push(vec!["maxsat_cores".into(), self.maxsat_cores.to_string()]);
        rows.push(vec![
            "repair_iterations".into(),
            self.repair_iterations.to_string(),
        ]);
        rows.push(vec![
            "maxsat_calls_per_repair_iteration".into(),
            format!("{:.3}", self.maxsat_calls_per_repair_iteration),
        ]);
        // Sampling counters: the bench trajectory of the sharded-sampling
        // refactor (wall-clock of the Sample stage, shard width, and the
        // budget-routed per-sample solver calls with their shortfalls).
        rows.push(vec![
            "sample_wall_s".into(),
            format!("{:.4}", self.sample_wall_s),
        ]);
        rows.push(vec!["sample_shards".into(), self.sample_shards.to_string()]);
        rows.push(vec!["sampler_calls".into(), self.sampler_calls.to_string()]);
        rows.push(vec![
            "sample_shortfalls".into(),
            self.sample_shortfalls.to_string(),
        ]);
        // Solver-layer counters: the bench trajectory of the CDCL
        // modernization (propagation throughput, restart cadence, learnt-DB
        // hygiene, and the inprocessing/arena-GC work between calls).
        rows.push(vec![
            "sat_propagations".into(),
            self.sat_propagations.to_string(),
        ]);
        rows.push(vec![
            "sat_propagations_per_sec".into(),
            format!("{:.1}", self.sat_propagations_per_sec),
        ]);
        rows.push(vec!["conflicts".into(), self.conflicts.to_string()]);
        rows.push(vec!["decisions".into(), self.decisions.to_string()]);
        rows.push(vec!["sat_restarts".into(), self.sat_restarts.to_string()]);
        rows.push(vec!["reused_levels".into(), self.reused_levels.to_string()]);
        rows.push(vec!["rephases".into(), self.rephases.to_string()]);
        // Live learnt-clause gauge: the per-run sum of each solver's final
        // `learnt_clauses` count.
        rows.push(vec![
            "learnt_clauses_live".into(),
            self.learnt_db_live.to_string(),
        ]);
        rows.push(vec!["glue2_clauses".into(), self.glue2_clauses.to_string()]);
        rows.push(vec![
            "inprocess_reductions".into(),
            (self.inprocess_subsumed + self.inprocess_strengthened).to_string(),
        ]);
        rows.push(vec![
            "inprocess_subsumed".into(),
            self.inprocess_subsumed.to_string(),
        ]);
        rows.push(vec![
            "inprocess_strengthened".into(),
            self.inprocess_strengthened.to_string(),
        ]);
        rows.push(vec![
            "inprocess_passes".into(),
            self.inprocess_passes.to_string(),
        ]);
        rows.push(vec![
            "vivify_candidates".into(),
            self.vivify_candidates.to_string(),
        ]);
        rows.push(vec![
            "vivify_strengthened".into(),
            self.vivify_strengthened.to_string(),
        ]);
        rows.push(vec![
            "arena_collections".into(),
            self.arena_collections.to_string(),
        ]);
        rows.push(vec![
            "arena_live_words".into(),
            self.arena_live_words.to_string(),
        ]);
        // Certification counters: the bench trajectory of the certifying
        // solver layer (`--certify`: DRAT proof traffic and the in-process
        // checking cost; rejections are a soundness alarm and must be 0).
        rows.push(vec![
            "models_verified".into(),
            self.models_verified.to_string(),
        ]);
        rows.push(vec![
            "certificates_checked".into(),
            self.certificates_checked.to_string(),
        ]);
        rows.push(vec![
            "certificates_rejected".into(),
            self.certificates_rejected.to_string(),
        ]);
        rows.push(vec!["proof_bytes".into(), self.proof_bytes.to_string()]);
        rows.push(vec!["proof_adds".into(), self.proof_adds.to_string()]);
        rows.push(vec!["proof_deletes".into(), self.proof_deletes.to_string()]);
        rows.push(vec![
            "certify_wall_s".into(),
            format!("{:.4}", self.certify_wall_s),
        ]);
        rows.push(vec![
            "budget_exhaustions".into(),
            self.budget_exhaustions.to_string(),
        ]);
        rows.push(vec![
            "sat_solvers_constructed".into(),
            self.sat_solvers_constructed.to_string(),
        ]);
        rows.push(vec![
            "maxsat_solvers_constructed".into(),
            self.maxsat_solvers_constructed.to_string(),
        ]);
        rows.push(vec![
            "samplers_constructed".into(),
            self.samplers_constructed.to_string(),
        ]);
        rows
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instances:                 {}", self.total_instances)?;
        for engine in EngineKind::ALL {
            writeln!(
                f,
                "synthesized by {engine:<11} {} (decided {})",
                self.synthesized[&engine], self.decided[&engine]
            )?;
        }
        writeln!(
            f,
            "VBS(HQS2+Pedant):          {}",
            self.vbs_without_manthan3
        )?;
        writeln!(f, "VBS(+Manthan3):            {}", self.vbs_with_manthan3)?;
        writeln!(f, "Manthan3 unique:           {}", self.manthan3_unique)?;
        writeln!(f, "Manthan3 fastest:          {}", self.manthan3_fastest)?;
        writeln!(f, "Manthan3 not HQS2-like:    {}", self.manthan3_not_hqs2)?;
        writeln!(f, "Manthan3 not Pedant-like:  {}", self.manthan3_not_pedant)?;
        writeln!(f, "missed by Manthan3:        {}", self.missed_by_manthan3)?;
        write!(
            f,
            "Manthan3 within +10s of VBS: {}",
            self.manthan3_within_10s_of_vbs
        )?;
        write!(
            f,
            "\nMaxSAT calls:              {} ({} incremental, {} fresh encodes, \
             {:.3} per repair iteration; {} probes, {} cores)",
            self.maxsat_calls,
            self.maxsat_incremental_hits,
            self.maxsat_fresh_encodes,
            self.maxsat_calls_per_repair_iteration,
            self.maxsat_probes,
            self.maxsat_cores
        )?;
        write!(
            f,
            "\nsampling:                  {:.2}s wall across {} shard(s), {} solver calls, \
             {} shortfalls",
            self.sample_wall_s, self.sample_shards, self.sampler_calls, self.sample_shortfalls
        )?;
        write!(
            f,
            "\nSAT solver layer:          {} propagations ({:.0}/s), {} conflicts, \
             {} decisions, {} restarts ({} reused levels, {} rephases), \
             {} learnt live ({} glue), {} inprocess reductions \
             ({} subsumed + {} strengthened over {} passes; vivify {}/{}), \
             {} arena GCs ({} live words), {} budget refusals, \
             {}/{}/{} solvers (sat/maxsat/samplers)",
            self.sat_propagations,
            self.sat_propagations_per_sec,
            self.conflicts,
            self.decisions,
            self.sat_restarts,
            self.reused_levels,
            self.rephases,
            self.learnt_db_live,
            self.glue2_clauses,
            self.inprocess_subsumed + self.inprocess_strengthened,
            self.inprocess_subsumed,
            self.inprocess_strengthened,
            self.inprocess_passes,
            self.vivify_strengthened,
            self.vivify_candidates,
            self.arena_collections,
            self.arena_live_words,
            self.budget_exhaustions,
            self.sat_solvers_constructed,
            self.maxsat_solvers_constructed,
            self.samplers_constructed
        )?;
        if self.certificates_checked > 0 {
            write!(
                f,
                "\ncertification:             {} UNSAT certificates checked, {} rejected \
                 ({} proof bytes, {} adds + {} deletes, {:.2}s checking)",
                self.certificates_checked,
                self.certificates_rejected,
                self.proof_bytes,
                self.proof_adds,
                self.proof_deletes,
                self.certify_wall_s
            )?;
        }
        if let (Some(synthesized), Some(decided)) =
            (self.portfolio_synthesized, self.portfolio_decided)
        {
            write!(
                f,
                "\nparallel portfolio:        {synthesized} (decided {decided}, true wall-clock)"
            )?;
        }
        if let (Some(synthesized), Some(decided)) =
            (self.compositional_synthesized, self.compositional_decided)
        {
            write!(
                f,
                "\ncompositional:             {synthesized} (decided {decided}, {} clusters, \
                 cluster wall {:.2}s critical path / {:.2}s total)",
                self.compositional_clusters.unwrap_or(0),
                self.cluster_wall_max_s.unwrap_or(0.0),
                self.cluster_wall_sum_s.unwrap_or(0.0)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(instance: &str, engine: EngineKind, synthesized: bool, seconds: f64) -> RunRecord {
        RunRecord {
            instance: instance.to_string(),
            family: "planted".to_string(),
            engine,
            synthesized,
            decided: synthesized,
            outcome: if synthesized { "realizable" } else { "unknown" }.to_string(),
            time: Duration::from_secs_f64(seconds),
            oracle: manthan3_core::OracleStats::default(),
            repair_iterations: 0,
            sample_wall: Duration::ZERO,
            sample_shards: 1,
            clusters: 0,
            cluster_wall_max: Duration::ZERO,
            cluster_wall_sum: Duration::ZERO,
            certification_failure: None,
        }
    }

    fn sample_records() -> Vec<RunRecord> {
        vec![
            // i1: all three solve, manthan3 fastest.
            record("i1", EngineKind::Manthan3, true, 0.1),
            record("i1", EngineKind::Hqs2Like, true, 0.5),
            record("i1", EngineKind::PedantLike, true, 0.9),
            // i2: only manthan3 solves.
            record("i2", EngineKind::Manthan3, true, 1.0),
            record("i2", EngineKind::Hqs2Like, false, 2.0),
            record("i2", EngineKind::PedantLike, false, 2.0),
            // i3: only hqs solves.
            record("i3", EngineKind::Manthan3, false, 2.0),
            record("i3", EngineKind::Hqs2Like, true, 0.2),
            record("i3", EngineKind::PedantLike, false, 2.0),
        ]
    }

    #[test]
    fn vbs_takes_the_minimum() {
        let records = sample_records();
        let all = vbs(&records, &EngineKind::ALL);
        assert_eq!(all.len(), 3);
        assert!((all["i1"] - 0.1).abs() < 1e-9);
        let baseline = vbs(&records, &[EngineKind::Hqs2Like, EngineKind::PedantLike]);
        assert_eq!(baseline.len(), 2);
    }

    #[test]
    fn cactus_is_sorted_and_cumulative() {
        let records = sample_records();
        let series = cactus(&vbs(&records, &EngineKind::ALL));
        assert_eq!(series.len(), 3);
        assert!(series.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn summary_counts_match_hand_computation() {
        let records = sample_records();
        let s = summary(&records);
        assert_eq!(s.total_instances, 3);
        assert_eq!(s.synthesized[&EngineKind::Manthan3], 2);
        assert_eq!(s.synthesized[&EngineKind::Hqs2Like], 2);
        assert_eq!(s.synthesized[&EngineKind::PedantLike], 1);
        assert_eq!(s.vbs_without_manthan3, 2);
        assert_eq!(s.vbs_with_manthan3, 3);
        assert_eq!(s.manthan3_unique, 1);
        assert_eq!(s.manthan3_fastest, 2);
        assert_eq!(s.manthan3_not_hqs2, 1);
        assert_eq!(s.manthan3_not_pedant, 1);
        assert_eq!(s.missed_by_manthan3, 1);
        assert_eq!(s.manthan3_within_10s_of_vbs, 1);
        let text = s.to_string();
        assert!(text.contains("Manthan3 unique:           1"));
        assert!(s.rows().len() >= 9);
    }

    #[test]
    fn fig6_rows_have_three_series() {
        let records = sample_records();
        let rows = fig6_rows(&records);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 4);
        // The third entry exists only for the +Manthan3 portfolio.
        assert!(rows[2][1].is_empty());
        assert!(!rows[2][2].is_empty());
        // No live portfolio records: the wall-clock column stays empty.
        assert!(rows.iter().all(|r| r[3].is_empty()));
    }

    #[test]
    fn portfolio_records_fill_the_wall_clock_series_and_summary() {
        let mut records = sample_records();
        records.push(record("i1", EngineKind::Portfolio, true, 0.05));
        records.push(record("i2", EngineKind::Portfolio, true, 0.8));
        records.push(record("i3", EngineKind::Portfolio, true, 0.3));
        let rows = fig6_rows(&records);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| !r[3].is_empty()));
        assert_eq!(rows[0][3], "0.0500");

        let s = summary(&records);
        assert_eq!(s.portfolio_synthesized, Some(3));
        assert_eq!(s.portfolio_decided, Some(3));
        assert!(s
            .rows()
            .iter()
            .any(|r| r[0] == "synthesized_portfolio" && r[1] == "3"));
        assert!(s.to_string().contains("parallel portfolio"));
    }

    #[test]
    fn compositional_records_fill_the_cluster_summary() {
        // No compositional records: the columns stay absent.
        let s = summary(&sample_records());
        assert_eq!(s.compositional_synthesized, None);
        assert!(!s.rows().iter().any(|r| r[0] == "compositional_clusters"));

        let mut records = sample_records();
        let mut c1 = record("i1", EngineKind::Compositional, true, 0.06);
        c1.clusters = 3;
        c1.cluster_wall_max = Duration::from_millis(40);
        c1.cluster_wall_sum = Duration::from_millis(100);
        let mut c2 = record("i2", EngineKind::Compositional, true, 0.5);
        c2.clusters = 1;
        c2.cluster_wall_max = Duration::from_millis(500);
        c2.cluster_wall_sum = Duration::from_millis(500);
        records.push(c1);
        records.push(c2);
        let s = summary(&records);
        assert_eq!(s.compositional_synthesized, Some(2));
        assert_eq!(s.compositional_decided, Some(2));
        assert_eq!(s.compositional_clusters, Some(4));
        assert!((s.cluster_wall_max_s.unwrap() - 0.54).abs() < 1e-9);
        assert!((s.cluster_wall_sum_s.unwrap() - 0.6).abs() < 1e-9);
        let rows = s.rows();
        assert!(rows
            .iter()
            .any(|r| r[0] == "synthesized_compositional" && r[1] == "2"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "compositional_clusters" && r[1] == "4"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "cluster_wall_max_s" && r[1] == "0.5400"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "cluster_wall_sum_s" && r[1] == "0.6000"));
        assert!(s.to_string().contains("compositional:"));
    }

    #[test]
    fn maxsat_counters_aggregate_into_the_summary() {
        let mut records = sample_records();
        // The two Manthan3 runs did 5 + 3 repair iterations with one fresh
        // encode each and one incremental FindCandidates call per iteration;
        // a baseline record contributes nothing.
        records[0].oracle.maxsat_calls = 5;
        records[0].oracle.maxsat_incremental_calls = 5;
        records[0].oracle.maxsat_hard_encodings = 1;
        records[0].oracle.maxsat_probes = 12;
        records[0].oracle.maxsat_cores = 4;
        records[0].repair_iterations = 5;
        records[3].oracle.maxsat_calls = 3;
        records[3].oracle.maxsat_incremental_calls = 3;
        records[3].oracle.maxsat_hard_encodings = 1;
        records[3].oracle.maxsat_probes = 7;
        records[3].oracle.maxsat_cores = 2;
        records[3].repair_iterations = 3;
        let s = summary(&records);
        assert_eq!(s.maxsat_calls, 8);
        assert_eq!(s.maxsat_incremental_hits, 8);
        assert_eq!(s.maxsat_fresh_encodes, 2);
        assert_eq!(s.maxsat_probes, 19);
        assert_eq!(s.maxsat_cores, 6);
        assert_eq!(s.repair_iterations, 8);
        assert!((s.maxsat_calls_per_repair_iteration - 1.0).abs() < 1e-9);
        let rows = s.rows();
        assert!(rows
            .iter()
            .any(|r| r[0] == "maxsat_incremental_hits" && r[1] == "8"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "maxsat_fresh_encodes" && r[1] == "2"));
        assert!(rows.iter().any(|r| r[0] == "maxsat_probes" && r[1] == "19"));
        assert!(rows.iter().any(|r| r[0] == "maxsat_cores" && r[1] == "6"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "maxsat_calls_per_repair_iteration" && r[1] == "1.000"));
        assert!(s.to_string().contains("MaxSAT calls"));
    }

    #[test]
    fn sampling_counters_aggregate_into_the_summary() {
        let mut records = sample_records();
        records[0].sample_wall = Duration::from_millis(250);
        records[0].sample_shards = 4;
        records[0].oracle.sampler_calls = 120;
        records[3].sample_wall = Duration::from_millis(150);
        records[3].sample_shards = 4;
        records[3].oracle.sampler_calls = 80;
        records[3].oracle.sample_shortfalls = 1;
        let s = summary(&records);
        assert!((s.sample_wall_s - 0.4).abs() < 1e-9);
        assert_eq!(s.sample_shards, 4);
        assert_eq!(s.sampler_calls, 200);
        assert_eq!(s.sample_shortfalls, 1);
        let rows = s.rows();
        assert!(rows
            .iter()
            .any(|r| r[0] == "sample_wall_s" && r[1] == "0.4000"));
        assert!(rows.iter().any(|r| r[0] == "sample_shards" && r[1] == "4"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "sampler_calls" && r[1] == "200"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "sample_shortfalls" && r[1] == "1"));
        assert!(s.to_string().contains("sampling:"));
    }

    #[test]
    fn solver_counters_aggregate_into_the_summary() {
        let mut records = sample_records();
        records[0].oracle.sat_propagations = 900;
        records[0].oracle.conflicts = 30;
        records[0].oracle.decisions = 60;
        records[0].oracle.sat_restarts = 12;
        records[0].oracle.reused_levels = 9;
        records[0].oracle.rephases = 2;
        records[0].oracle.learnt_db_live = 40;
        records[0].oracle.glue2_clauses = 7;
        records[0].oracle.inprocess_subsumed = 3;
        records[0].oracle.inprocess_strengthened = 2;
        records[0].oracle.inprocess_passes = 4;
        records[0].oracle.vivify_candidates = 10;
        records[0].oracle.vivify_strengthened = 2;
        records[0].oracle.arena_collections = 2;
        records[0].oracle.arena_live_words = 512;
        records[0].oracle.budget_exhaustions = 1;
        records[0].oracle.sat_solvers_constructed = 2;
        records[0].oracle.maxsat_solvers_constructed = 1;
        records[0].oracle.samplers_constructed = 1;
        records[3].oracle.sat_propagations = 100;
        records[3].oracle.conflicts = 5;
        records[3].oracle.decisions = 8;
        records[3].oracle.sat_restarts = 3;
        records[3].oracle.reused_levels = 1;
        records[3].oracle.rephases = 1;
        records[3].oracle.learnt_db_live = 10;
        records[3].oracle.glue2_clauses = 1;
        records[3].oracle.inprocess_subsumed = 1;
        records[3].oracle.inprocess_passes = 1;
        records[3].oracle.arena_collections = 1;
        records[3].oracle.arena_live_words = 128;
        records[3].oracle.sat_solvers_constructed = 2;
        let s = summary(&records);
        assert_eq!(s.sat_propagations, 1000);
        assert_eq!(s.conflicts, 35);
        assert_eq!(s.decisions, 68);
        assert_eq!(s.sat_restarts, 15);
        assert_eq!(s.reused_levels, 10);
        assert_eq!(s.rephases, 3);
        assert_eq!(s.learnt_db_live, 50);
        assert_eq!(s.glue2_clauses, 8);
        assert_eq!(s.inprocess_subsumed, 4);
        assert_eq!(s.inprocess_strengthened, 2);
        assert_eq!(s.inprocess_passes, 5);
        assert_eq!(s.vivify_candidates, 10);
        assert_eq!(s.vivify_strengthened, 2);
        assert_eq!(s.arena_collections, 3);
        assert_eq!(s.arena_live_words, 640);
        assert_eq!(s.budget_exhaustions, 1);
        assert_eq!(s.sat_solvers_constructed, 4);
        assert_eq!(s.maxsat_solvers_constructed, 1);
        assert_eq!(s.samplers_constructed, 1);
        // sample_records() totals 0.1+0.5+0.9 + 1.0+2.0+2.0 + 2.0+0.2+2.0 = 10.7 s.
        assert!((s.sat_propagations_per_sec - 1000.0 / 10.7).abs() < 1e-6);
        let rows = s.rows();
        assert!(rows
            .iter()
            .any(|r| r[0] == "sat_propagations" && r[1] == "1000"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "sat_propagations_per_sec" && r[1] == "93.5"));
        assert!(rows.iter().any(|r| r[0] == "conflicts" && r[1] == "35"));
        assert!(rows.iter().any(|r| r[0] == "decisions" && r[1] == "68"));
        assert!(rows.iter().any(|r| r[0] == "sat_restarts" && r[1] == "15"));
        assert!(rows.iter().any(|r| r[0] == "reused_levels" && r[1] == "10"));
        assert!(rows.iter().any(|r| r[0] == "rephases" && r[1] == "3"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "learnt_clauses_live" && r[1] == "50"));
        assert!(rows.iter().any(|r| r[0] == "glue2_clauses" && r[1] == "8"));
        // The combined reductions row stays alongside the per-kind split.
        assert!(rows
            .iter()
            .any(|r| r[0] == "inprocess_reductions" && r[1] == "6"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "inprocess_subsumed" && r[1] == "4"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "inprocess_strengthened" && r[1] == "2"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "inprocess_passes" && r[1] == "5"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "vivify_candidates" && r[1] == "10"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "vivify_strengthened" && r[1] == "2"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "arena_collections" && r[1] == "3"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "arena_live_words" && r[1] == "640"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "budget_exhaustions" && r[1] == "1"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "sat_solvers_constructed" && r[1] == "4"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "maxsat_solvers_constructed" && r[1] == "1"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "samplers_constructed" && r[1] == "1"));
        assert!(s.to_string().contains("SAT solver layer"));
    }

    #[test]
    fn certification_counters_aggregate_into_the_summary() {
        // No certified runs: the counters stay zero and the Display line is
        // suppressed.
        let s = summary(&sample_records());
        assert_eq!(s.certificates_checked, 0);
        assert!(!s.to_string().contains("certification:"));
        assert!(s
            .rows()
            .iter()
            .any(|r| r[0] == "certificates_checked" && r[1] == "0"));

        let mut records = sample_records();
        records[0].oracle.models_verified = 5;
        records[0].oracle.certificates_checked = 3;
        records[0].oracle.proof_bytes = 1024;
        records[0].oracle.proof_adds = 40;
        records[0].oracle.proof_deletes = 12;
        records[0].oracle.certify_nanos = 1_500_000_000;
        records[3].oracle.certificates_checked = 2;
        records[3].oracle.certificates_rejected = 1;
        records[3].oracle.proof_bytes = 476;
        records[3].oracle.proof_adds = 10;
        records[3].oracle.certify_nanos = 500_000_000;
        let s = summary(&records);
        assert_eq!(s.models_verified, 5);
        assert_eq!(s.certificates_checked, 5);
        assert_eq!(s.certificates_rejected, 1);
        assert_eq!(s.proof_bytes, 1500);
        assert_eq!(s.proof_adds, 50);
        assert_eq!(s.proof_deletes, 12);
        assert!((s.certify_wall_s - 2.0).abs() < 1e-9);
        let rows = s.rows();
        assert!(rows
            .iter()
            .any(|r| r[0] == "certificates_checked" && r[1] == "5"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "certificates_rejected" && r[1] == "1"));
        assert!(rows.iter().any(|r| r[0] == "proof_bytes" && r[1] == "1500"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "certify_wall_s" && r[1] == "2.0000"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "models_verified" && r[1] == "5"));
        assert!(s.to_string().contains("certification:"));
        assert!(s.to_string().contains("1 rejected"));
    }

    #[test]
    fn repair_free_suites_report_a_zero_ratio() {
        let s = summary(&sample_records());
        assert_eq!(s.repair_iterations, 0);
        assert_eq!(s.maxsat_calls_per_repair_iteration, 0.0);
        assert!(s
            .rows()
            .iter()
            .any(|r| r[0] == "maxsat_calls_per_repair_iteration" && r[1] == "0.000"));
    }

    #[test]
    fn scatter_rows_cover_every_instance() {
        let records = sample_records();
        let rows = scatter_rows(
            &records,
            &[EngineKind::Hqs2Like],
            &[EngineKind::Manthan3],
            Duration::from_secs(10),
        );
        assert_eq!(rows.len(), 3);
        // i2 is a timeout for the HQS2-like engine.
        let i2 = rows.iter().find(|r| r[0] == "i2").unwrap();
        assert_eq!(i2[1], "10.0000");
    }
}
