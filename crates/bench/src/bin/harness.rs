//! The figure/table regeneration harness.
//!
//! Runs the three Henkin synthesizers on the seeded synthetic suite and
//! writes, under the output directory (default `experiments/`):
//!
//! * `fig6_cactus.csv`      — Figure 6 (VBS with/without Manthan3 cactus),
//! * `fig7_scatter.csv`     — Figure 7 (Manthan3 vs VBS of the baselines),
//! * `fig8_scatter.csv`     — Figure 8 (Manthan3 vs Pedant-like),
//! * `fig9_scatter.csv`     — Figure 9 (Manthan3 vs HQS2-like),
//! * `fig10_scatter.csv`    — Figure 10 (Pedant-like vs HQS2-like),
//! * `summary_table.csv`    — the in-text counts (solved per tool, VBS delta,
//!   uniquely solved, fastest-on, …),
//! * `runs.csv`             — the raw per-run records,
//! * `ablations.csv`        — Manthan3 ablations (Y-features, Ŷ constraint,
//!   sample count), when `--ablations` is given.
//!
//! Usage:
//!
//! ```text
//! harness [--scale N] [--seed N] [--budget-ms N] [--out DIR]
//!         [--engine NAME]... [--sample-shards N]
//!         [--repair-strategy linear|core-guided]
//!         [--solver-profile modern|legacy]
//!         [--max-cluster-size N] [--compose-repairs on|off]
//!         [--certify] [--ablations] [--quick]
//! ```
//!
//! `--engine NAME` (repeatable) adds an engine to the run set; the set
//! defaults to the three sequential engines. `--engine portfolio` is the
//! interesting use: it adds the parallel portfolio, so `fig6_cactus.csv` and
//! `summary_table.csv` report its *true wall-clock* numbers next to the
//! post-hoc VBS columns. `--sample-shards N` splits the Manthan3 sampling
//! stage across `N` sampler threads (sharded sampling); the per-run
//! `sample_wall_s` / `sample_shards` columns of `runs.csv` and the matching
//! `summary_table.csv` rows report its effect. `--repair-strategy` selects
//! how the Manthan3 repair loop's MaxSAT queries search for their optimum
//! (warm-started linear bound search vs. core-guided relaxation); the
//! per-run `maxsat_probes` / `maxsat_cores` columns of `runs.csv` and the
//! matching `summary_table.csv` rows report the probe economy.
//! `--solver-profile` selects the CDCL policy bundle of the Manthan3 oracle's
//! solvers (the modernized defaults vs. the pre-modernization legacy
//! behavior); the per-run solver-layer columns of `runs.csv`
//! (`sat_propagations`, `props_per_sec`, `conflicts`, `decisions`,
//! `sat_restarts`, `reused_levels`, `rephases`, `learnt_clauses_live`,
//! `glue2_clauses`, the `inprocess_*` / `vivify_*` breakdown,
//! `arena_collections`, `arena_live_words`, `budget_exhaustions`, and the
//! `*_solvers_constructed` / `samplers_constructed` provenance counters) and
//! the matching `summary_table.csv` rows report its effect.
//! `--certify` arms the certifying solver layer: every SAT and MaxSAT solver
//! the Manthan3-family oracles construct logs DRAT proofs, every UNSAT
//! verdict is checked in-process by the independent `manthan3-drat` checker,
//! and the per-run `models_verified` / `certificates_checked` /
//! `certificates_rejected` / `proof_bytes` / `proof_adds` / `proof_deletes` /
//! `certify_wall_s` columns of `runs.csv` (with matching `summary_table.csv`
//! rows) report the proof traffic and checking cost. A rejected certificate
//! — a soundness alarm — is dumped under the output directory as a
//! `certify_failure_*.cnf` / `.drat` pair for offline reproduction.
//! `--engine compositional` adds the dependency-driven compositional engine
//! (partition the outputs into clusters, synthesize them concurrently,
//! compose with coupled-residue repair); `--max-cluster-size N` caps the
//! outputs per cluster (forcing coupling clauses and composition repair
//! work) and `--compose-repairs on|off` toggles the coupled-residue repair
//! against a monolithic re-synthesis fallback. The per-run `clusters` /
//! `cluster_wall_max_s` / `cluster_wall_sum_s` columns of `runs.csv` and the
//! matching `summary_table.csv` rows report the partition and the critical
//! path of the concurrent cluster phase. Malformed
//! flag values abort with a diagnostic and a non-zero exit status.

use manthan3_bench::{csvio, report, run_suite_with_options, EngineKind, RunOptions};
use manthan3_core::{Manthan3, Manthan3Config, RepairStrategy, SolverProfile};
use manthan3_dqbf::verify;
use manthan3_gen::suite::suite;
use std::path::PathBuf;
use std::str::FromStr;
use std::time::{Duration, Instant};

struct Args {
    scale: usize,
    seed: u64,
    budget: Duration,
    out: PathBuf,
    engines: Vec<EngineKind>,
    ablations: bool,
    sample_shards: usize,
    repair_strategy: RepairStrategy,
    solver_profile: SolverProfile,
    max_cluster_size: Option<usize>,
    compose_repairs: bool,
    certify: bool,
}

/// Aborts with a diagnostic on stderr and exit status 2 (flag-parsing
/// failures must not silently degrade to defaults).
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: harness [--scale N] [--seed N] [--budget-ms N] [--out DIR] \
         [--engine NAME]... [--sample-shards N] \
         [--repair-strategy linear|core-guided] \
         [--solver-profile modern|legacy] \
         [--max-cluster-size N] [--compose-repairs on|off] \
         [--certify] [--ablations] [--quick]"
    );
    std::process::exit(2);
}

/// Parses the value of `flag`, aborting with a diagnostic when the value is
/// missing or malformed.
fn parse_value<T>(flag: &str, value: Option<String>) -> T
where
    T: FromStr,
    T::Err: std::fmt::Display,
{
    let Some(raw) = value else {
        usage_error(&format!("{flag} requires a value"));
    };
    match raw.parse() {
        Ok(parsed) => parsed,
        Err(err) => usage_error(&format!("invalid value {raw:?} for {flag}: {err}")),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 3,
        seed: 2023,
        budget: Duration::from_millis(2000),
        out: PathBuf::from("experiments"),
        engines: EngineKind::ALL.to_vec(),
        ablations: false,
        sample_shards: 1,
        repair_strategy: RepairStrategy::default(),
        solver_profile: SolverProfile::default(),
        max_cluster_size: None,
        compose_repairs: true,
        certify: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--scale" => args.scale = parse_value("--scale", iter.next()),
            "--seed" => args.seed = parse_value("--seed", iter.next()),
            "--budget-ms" => {
                let ms: u64 = parse_value("--budget-ms", iter.next());
                args.budget = Duration::from_millis(ms);
            }
            "--out" => match iter.next() {
                Some(dir) => args.out = PathBuf::from(dir),
                None => usage_error("--out requires a value"),
            },
            "--engine" => {
                let engine: EngineKind = parse_value("--engine", iter.next());
                if !args.engines.contains(&engine) {
                    args.engines.push(engine);
                }
            }
            "--sample-shards" => {
                let shards: usize = parse_value("--sample-shards", iter.next());
                if shards == 0 {
                    usage_error("--sample-shards must be at least 1");
                }
                args.sample_shards = shards;
            }
            "--repair-strategy" => {
                // Unknown strategy names abort with stderr + exit 2 via
                // `parse_value`, like every other malformed flag value.
                args.repair_strategy = parse_value("--repair-strategy", iter.next());
            }
            "--solver-profile" => {
                args.solver_profile = parse_value("--solver-profile", iter.next());
            }
            "--max-cluster-size" => {
                let size: usize = parse_value("--max-cluster-size", iter.next());
                if size == 0 {
                    usage_error("--max-cluster-size must be at least 1");
                }
                args.max_cluster_size = Some(size);
            }
            "--compose-repairs" => match iter.next().as_deref() {
                Some("on") => args.compose_repairs = true,
                Some("off") => args.compose_repairs = false,
                Some(other) => usage_error(&format!(
                    "invalid value {other:?} for --compose-repairs (expected on or off)"
                )),
                None => usage_error("--compose-repairs requires a value"),
            },
            "--certify" => args.certify = true,
            "--ablations" => args.ablations = true,
            "--quick" => {
                args.scale = 1;
                args.budget = Duration::from_millis(500);
            }
            other => {
                usage_error(&format!("unknown argument {other:?}"));
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let instances = suite(args.seed, args.scale);
    println!(
        "running {} instances x {} engines (budget {:?} per run)…",
        instances.len(),
        args.engines.len(),
        args.budget
    );
    let start = Instant::now();
    let records = run_suite_with_options(
        &instances,
        &args.engines,
        args.budget,
        RunOptions {
            sample_shards: args.sample_shards,
            repair_strategy: args.repair_strategy,
            solver_profile: args.solver_profile,
            max_cluster_size: args.max_cluster_size,
            compose_repairs: args.compose_repairs,
            certify: args.certify,
        },
    );
    println!("finished in {:?}", start.elapsed());

    // A rejected certificate is a soundness alarm: dump the offending CNF
    // and DRAT proof next to the CSVs so the rejection reproduces offline
    // (`manthan3-drat <stem>.cnf <stem>.drat`), and say so loudly.
    for record in &records {
        let Some(failure) = &record.certification_failure else {
            continue;
        };
        let stem = format!("certify_failure_{}_{}", record.instance, record.engine);
        let max_var = failure
            .cnf
            .iter()
            .flatten()
            .map(|l| l.unsigned_abs())
            .max()
            .unwrap_or(0);
        let mut dimacs = format!("p cnf {max_var} {}\n", failure.cnf.len());
        for clause in &failure.cnf {
            for l in clause {
                dimacs.push_str(&l.to_string());
                dimacs.push(' ');
            }
            dimacs.push_str("0\n");
        }
        std::fs::create_dir_all(&args.out).expect("create output dir");
        std::fs::write(args.out.join(format!("{stem}.cnf")), dimacs)
            .expect("write rejected-certificate CNF");
        std::fs::write(args.out.join(format!("{stem}.drat")), &failure.proof)
            .expect("write rejected-certificate proof");
        eprintln!(
            "warning: {} on {} produced a REJECTED certificate ({}); \
             dumped {stem}.cnf / {stem}.drat",
            record.engine, record.instance, failure.reason
        );
    }

    // Raw records, including the per-run MaxSAT oracle counters behind the
    // summary's incremental-vs-fresh aggregates.
    let raw_rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.instance.clone(),
                r.family.clone(),
                r.engine.to_string(),
                r.synthesized.to_string(),
                r.decided.to_string(),
                r.outcome.clone(),
                format!("{:.4}", r.seconds()),
                r.repair_iterations.to_string(),
                r.oracle.maxsat_calls.to_string(),
                r.oracle.maxsat_incremental_calls.to_string(),
                r.oracle.maxsat_hard_encodings.to_string(),
                r.oracle.maxsat_probes.to_string(),
                r.oracle.maxsat_cores.to_string(),
                format!("{:.4}", r.sample_wall.as_secs_f64()),
                r.sample_shards.to_string(),
                r.oracle.sampler_calls.to_string(),
                r.oracle.sample_shortfalls.to_string(),
                r.oracle.sat_propagations.to_string(),
                format!(
                    "{:.1}",
                    if r.seconds() > 0.0 {
                        r.oracle.sat_propagations as f64 / r.seconds()
                    } else {
                        0.0
                    }
                ),
                r.oracle.conflicts.to_string(),
                r.oracle.decisions.to_string(),
                r.oracle.sat_restarts.to_string(),
                r.oracle.reused_levels.to_string(),
                r.oracle.rephases.to_string(),
                r.oracle.learnt_db_live.to_string(),
                r.oracle.glue2_clauses.to_string(),
                r.oracle.inprocess_subsumed.to_string(),
                r.oracle.inprocess_strengthened.to_string(),
                r.oracle.inprocess_passes.to_string(),
                r.oracle.vivify_candidates.to_string(),
                r.oracle.vivify_strengthened.to_string(),
                r.oracle.arena_collections.to_string(),
                r.oracle.arena_live_words.to_string(),
                r.oracle.models_verified.to_string(),
                r.oracle.certificates_checked.to_string(),
                r.oracle.certificates_rejected.to_string(),
                r.oracle.proof_bytes.to_string(),
                r.oracle.proof_adds.to_string(),
                r.oracle.proof_deletes.to_string(),
                format!("{:.4}", r.oracle.certify_nanos as f64 / 1e9),
                r.oracle.budget_exhaustions.to_string(),
                r.oracle.sat_solvers_constructed.to_string(),
                r.oracle.maxsat_solvers_constructed.to_string(),
                r.oracle.samplers_constructed.to_string(),
                r.clusters.to_string(),
                format!("{:.4}", r.cluster_wall_max.as_secs_f64()),
                format!("{:.4}", r.cluster_wall_sum.as_secs_f64()),
            ]
        })
        .collect();
    csvio::write_csv(
        &args.out.join("runs.csv"),
        &[
            "instance",
            "family",
            "engine",
            "synthesized",
            "decided",
            "outcome",
            "seconds",
            "repair_iterations",
            "maxsat_calls",
            "maxsat_incremental_calls",
            "maxsat_hard_encodings",
            "maxsat_probes",
            "maxsat_cores",
            "sample_wall_s",
            "sample_shards",
            "sampler_calls",
            "sample_shortfalls",
            "sat_propagations",
            "props_per_sec",
            "conflicts",
            "decisions",
            "sat_restarts",
            "reused_levels",
            "rephases",
            "learnt_clauses_live",
            "glue2_clauses",
            "inprocess_subsumed",
            "inprocess_strengthened",
            "inprocess_passes",
            "vivify_candidates",
            "vivify_strengthened",
            "arena_collections",
            "arena_live_words",
            "models_verified",
            "certificates_checked",
            "certificates_rejected",
            "proof_bytes",
            "proof_adds",
            "proof_deletes",
            "certify_wall_s",
            "budget_exhaustions",
            "sat_solvers_constructed",
            "maxsat_solvers_constructed",
            "samplers_constructed",
            "clusters",
            "cluster_wall_max_s",
            "cluster_wall_sum_s",
        ],
        &raw_rows,
    )
    .expect("write runs.csv");

    // Figure 6. The portfolio column carries true wall-clock times and is
    // populated only when `--engine portfolio` ran.
    csvio::write_csv(
        &args.out.join("fig6_cactus.csv"),
        &[
            "instances_synthesized",
            "vbs_hqs2_pedant_s",
            "vbs_plus_manthan3_s",
            "portfolio_wall_s",
        ],
        &report::fig6_rows(&records),
    )
    .expect("write fig6");

    // Figures 7–10 (scatter plots).
    let scatters = [
        (
            "fig7_scatter.csv",
            vec![EngineKind::Hqs2Like, EngineKind::PedantLike],
            vec![EngineKind::Manthan3],
            "vbs_hqs2_pedant_s",
            "manthan3_s",
        ),
        (
            "fig8_scatter.csv",
            vec![EngineKind::PedantLike],
            vec![EngineKind::Manthan3],
            "pedantlike_s",
            "manthan3_s",
        ),
        (
            "fig9_scatter.csv",
            vec![EngineKind::Hqs2Like],
            vec![EngineKind::Manthan3],
            "hqs2like_s",
            "manthan3_s",
        ),
        (
            "fig10_scatter.csv",
            vec![EngineKind::Hqs2Like],
            vec![EngineKind::PedantLike],
            "hqs2like_s",
            "pedantlike_s",
        ),
    ];
    for (file, xs, ys, x_label, y_label) in scatters {
        csvio::write_csv(
            &args.out.join(file),
            &["instance", x_label, y_label],
            &report::scatter_rows(&records, &xs, &ys, args.budget),
        )
        .expect("write scatter");
    }

    // Summary table (the in-text counts).
    let summary = report::summary(&records);
    csvio::write_csv(
        &args.out.join("summary_table.csv"),
        &["metric", "value"],
        &summary.rows(),
    )
    .expect("write summary");
    println!("\n== summary (paper Section 6 counts) ==\n{summary}");

    if args.ablations {
        run_ablations(&args, &instances);
    }
    println!("\nCSV output written to {}", args.out.display());
}

/// The ablation study: Manthan3 with individual design choices disabled, on
/// the true instances of the suite.
fn run_ablations(args: &Args, instances: &[manthan3_gen::Instance]) {
    let variants: Vec<(&str, Manthan3Config)> = vec![
        ("default", Manthan3Config::default()),
        (
            "no_y_features",
            Manthan3Config {
                use_y_features: false,
                ..Manthan3Config::default()
            },
        ),
        (
            "no_y_hat_constraint",
            Manthan3Config {
                constrain_y_hat: false,
                ..Manthan3Config::default()
            },
        ),
        (
            "no_unique_definitions",
            Manthan3Config {
                use_unique_definitions: false,
                ..Manthan3Config::default()
            },
        ),
        (
            "samples_50",
            Manthan3Config {
                num_samples: 50,
                ..Manthan3Config::default()
            },
        ),
        (
            "samples_1000",
            Manthan3Config {
                num_samples: 1000,
                ..Manthan3Config::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, base) in variants {
        let mut synthesized = 0usize;
        let mut total_time = 0.0f64;
        for instance in instances {
            let config = Manthan3Config {
                time_budget: Some(args.budget),
                ..base.clone()
            };
            let start = Instant::now();
            let result = Manthan3::new(config).synthesize(&instance.dqbf);
            let elapsed = start.elapsed().as_secs_f64();
            total_time += elapsed;
            if let manthan3_core::SynthesisOutcome::Realizable(v) = &result.outcome {
                if verify::check(&instance.dqbf, v).is_valid() {
                    synthesized += 1;
                }
            }
        }
        println!(
            "ablation {name:<22} synthesized {synthesized:>4} / {} (total {total_time:.1}s)",
            instances.len()
        );
        rows.push(vec![
            name.to_string(),
            synthesized.to_string(),
            instances.len().to_string(),
            format!("{total_time:.2}"),
        ]);
    }
    csvio::write_csv(
        &args.out.join("ablations.csv"),
        &["variant", "synthesized", "instances", "total_seconds"],
        &rows,
    )
    .expect("write ablations");
}
