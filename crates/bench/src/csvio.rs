//! Minimal CSV writing helpers (no external dependency).

use std::fs;
use std::io;
use std::path::Path;

/// Renders rows as CSV text with the given header.
///
/// Fields containing commas or quotes are quoted.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row.iter().map(|f| escape(f)).collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    out
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Writes CSV text to a file, creating parent directories as needed.
///
/// # Errors
///
/// Propagates any I/O error from directory creation or the file write.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_csv(header, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let csv = to_csv(
            &["a", "b"],
            &[
                vec!["1".into(), "2".into()],
                vec!["x,y".into(), "q\"".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,2");
        assert_eq!(lines[2], "\"x,y\",\"q\"\"\"");
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("manthan3_csv_test");
        let path = dir.join("nested").join("out.csv");
        write_csv(&path, &["h"], &[vec!["v".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("h\nv"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
