//! Minimal CSV writing helpers (no external dependency).

use std::fs;
use std::io;
use std::path::Path;

/// Renders rows as CSV text with the given header.
///
/// Fields containing commas or quotes are quoted.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row.iter().map(|f| escape(f)).collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    out
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parses CSV text produced by [`to_csv`] back into its header and rows
/// (quoted fields, embedded commas/quotes/newlines included) — the
/// round-trip the harness column tests rely on.
///
/// Returns `(header, rows)`; an empty input yields an empty header and no
/// rows.
pub fn parse_csv(text: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let mut lines = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => in_quotes = true,
            ',' => record.push(std::mem::take(&mut field)),
            '\n' => {
                record.push(std::mem::take(&mut field));
                lines.push(std::mem::take(&mut record));
            }
            // A carriage return is a line-terminator character only as part
            // of a CRLF pair; a bare one is field content (and `escape`
            // quotes fields containing it, so the round-trip holds either
            // way).
            '\r' if chars.peek() == Some(&'\n') => {}
            other => field.push(other),
        }
    }
    // A final record without a trailing newline.
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        lines.push(record);
    }
    if !saw_any || lines.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let header = lines.remove(0);
    (header, lines)
}

/// Reads a CSV file written by [`write_csv`] back into `(header, rows)`.
///
/// # Errors
///
/// Propagates any I/O error from the file read.
pub fn read_csv(path: &Path) -> io::Result<(Vec<String>, Vec<Vec<String>>)> {
    Ok(parse_csv(&fs::read_to_string(path)?))
}

/// Writes CSV text to a file, creating parent directories as needed.
///
/// # Errors
///
/// Propagates any I/O error from directory creation or the file write.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_csv(header, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let csv = to_csv(
            &["a", "b"],
            &[
                vec!["1".into(), "2".into()],
                vec!["x,y".into(), "q\"".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,2");
        assert_eq!(lines[2], "\"x,y\",\"q\"\"\"");
    }

    #[test]
    fn csv_round_trips_through_the_parser() {
        let header = ["instance", "outcome", "maxsat_probes", "maxsat_cores"];
        let rows = vec![
            vec!["pec_3".into(), "realizable".into(), "17".into(), "4".into()],
            vec![
                "weird, name".into(),
                "unknown:\"quoted\"".into(),
                "0".into(),
                "0".into(),
            ],
            vec!["multi\nline".into(), "ok".into(), "1".into(), "2".into()],
        ];
        let text = to_csv(&header, &rows);
        let (parsed_header, parsed_rows) = parse_csv(&text);
        assert_eq!(parsed_header, header);
        assert_eq!(parsed_rows, rows);
    }

    #[test]
    fn parser_handles_empty_and_headerless_input() {
        assert_eq!(parse_csv(""), (Vec::new(), Vec::new()));
        let (header, rows) = parse_csv("a,b\n");
        assert_eq!(header, vec!["a", "b"]);
        assert!(rows.is_empty());
    }

    #[test]
    fn carriage_returns_round_trip_and_crlf_terminators_are_accepted() {
        // A bare \r is field content and survives the round-trip…
        let rows = vec![vec!["a\rb".into(), "c".into()]];
        let text = to_csv(&["x", "y"], &rows);
        let (_, parsed) = parse_csv(&text);
        assert_eq!(parsed, rows);
        // …while CRLF line endings from foreign writers are terminators.
        let (header, parsed) = parse_csv("x,y\r\n1,2\r\n");
        assert_eq!(header, vec!["x", "y"]);
        assert_eq!(parsed, vec![vec!["1".to_string(), "2".to_string()]]);
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join("manthan3_csv_roundtrip_test");
        let path = dir.join("runs.csv");
        let rows = vec![vec!["i1".into(), "3".into(), "1".into()]];
        write_csv(&path, &["instance", "maxsat_probes", "maxsat_cores"], &rows).unwrap();
        let (header, parsed) = read_csv(&path).unwrap();
        assert_eq!(header, vec!["instance", "maxsat_probes", "maxsat_cores"]);
        assert_eq!(parsed, rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("manthan3_csv_test");
        let path = dir.join("nested").join("out.csv");
        write_csv(&path, &["h"], &[vec!["v".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("h\nv"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
