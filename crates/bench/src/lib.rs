//! Benchmark harness for regenerating the paper's evaluation.
//!
//! This crate provides the plumbing shared by the `harness` binary (which
//! writes the CSV data behind every figure and table of the paper) and the
//! Criterion micro-benchmarks:
//!
//! * [`EngineKind`] / [`run_engine`] / [`run_suite`] — run the three Henkin
//!   synthesizers (Manthan3 and the two baselines standing in for HQS2 and
//!   Pedant) on generated instances under a per-instance budget, verifying
//!   every produced vector with the independent certificate checker,
//! * [`report`] — Virtual Best Synthesizer (VBS) bookkeeping, cactus and
//!   scatter series, and the summary table with the counts reported in the
//!   paper's text (solved per tool, VBS improvement, uniquely solved, …),
//! * [`csvio`] — tiny CSV writing helpers (no external dependency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csvio;
pub mod report;

use manthan3_baselines::{ArbiterConfig, ArbiterSolver, ExpansionConfig, ExpansionSolver};
use manthan3_core::{
    CertificationFailure, CompositionalConfig, CompositionalEngine, Manthan3, Manthan3Config,
    OracleStats, RepairStrategy, SolverProfile, SynthesisOutcome,
};
use manthan3_dqbf::verify;
use manthan3_gen::Instance;
use manthan3_portfolio::{Portfolio, PortfolioConfig};
use std::fmt;
use std::str::FromStr;
use std::time::{Duration, Instant};

/// Per-run knobs threaded from the harness flags into the engines (the
/// Manthan3 sampling-shard width and the MaxSAT repair strategy; baselines
/// ignore both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Number of shards the Manthan3 sampling stage splits its request
    /// across (`--sample-shards`, clamped to at least 1).
    pub sample_shards: usize,
    /// How the Manthan3 repair loop's FindCandidates MaxSAT queries search
    /// for their optimum (`--repair-strategy`).
    pub repair_strategy: RepairStrategy,
    /// Which solver-policy bundle the Manthan3 oracle hands its SAT and
    /// MaxSAT solvers (`--solver-profile`): the modernized defaults or the
    /// pre-modernization legacy behavior. Reaches the Manthan3 engine and
    /// the portfolio's Manthan3 racer; the baselines keep their defaults.
    pub solver_profile: SolverProfile,
    /// Upper bound on the outputs per cluster for the compositional engine
    /// (`--max-cluster-size`; `None` keeps the natural partition). Ignored
    /// by every other engine.
    pub max_cluster_size: Option<usize>,
    /// Whether a compositional composition counterexample is repaired by
    /// merging only the offending clusters (`true`, the default) or by one
    /// monolithic re-synthesis (`--compose-repairs off`). Ignored by every
    /// other engine.
    pub compose_repairs: bool,
    /// Certify UNSAT verdicts in-process (`--certify`): every solver the
    /// Manthan3 oracle constructs logs DRAT proofs, and every UNSAT answer
    /// is checked immediately by the independent `manthan3-drat` checker.
    /// Reaches the Manthan3 engine, the compositional engine, and the
    /// portfolio's Manthan3 racer; the baselines keep their defaults. The
    /// per-run `certificates_checked` / `certificates_rejected` /
    /// `proof_bytes` / `proof_adds` / `proof_deletes` / `certify_wall_s`
    /// columns of `runs.csv` and the matching `summary_table.csv` rows
    /// report the proof traffic and checking cost.
    pub certify: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            sample_shards: 1,
            repair_strategy: RepairStrategy::default(),
            solver_profile: SolverProfile::default(),
            max_cluster_size: None,
            compose_repairs: true,
            certify: false,
        }
    }
}

/// The synthesis engines taking part in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EngineKind {
    /// The paper's contribution (`manthan3-core`).
    Manthan3,
    /// The expansion-based baseline standing in for HQS2.
    Hqs2Like,
    /// The definition + arbiter baseline standing in for Pedant.
    PedantLike,
    /// The parallel portfolio racing the three engines above under one
    /// shared budget with cooperative cancellation — the live counterpart
    /// of the post-hoc VBS (`manthan3-portfolio`).
    Portfolio,
    /// The dependency-driven compositional engine (`manthan3-core`'s
    /// `CompositionalEngine`): partition the outputs into clusters,
    /// synthesize them concurrently, compose with coupled-residue repair.
    /// Opt-in like the portfolio (`--engine compositional`).
    Compositional,
}

impl EngineKind {
    /// The sequential engines, in the order used by the reports. The
    /// portfolio is opt-in (`--engine portfolio` in the harness) because its
    /// runs subsume the sequential ones.
    pub const ALL: [EngineKind; 3] = [
        EngineKind::Manthan3,
        EngineKind::Hqs2Like,
        EngineKind::PedantLike,
    ];
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EngineKind::Manthan3 => "manthan3",
            EngineKind::Hqs2Like => "hqs2like",
            EngineKind::PedantLike => "pedantlike",
            EngineKind::Portfolio => "portfolio",
            EngineKind::Compositional => "compositional",
        };
        write!(f, "{name}")
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "manthan3" => Ok(EngineKind::Manthan3),
            "hqs2like" => Ok(EngineKind::Hqs2Like),
            "pedantlike" => Ok(EngineKind::PedantLike),
            "portfolio" => Ok(EngineKind::Portfolio),
            "compositional" => Ok(EngineKind::Compositional),
            other => Err(format!(
                "unknown engine {other:?} (expected manthan3, hqs2like, pedantlike, portfolio \
                 or compositional)"
            )),
        }
    }
}

/// The result of running one engine on one instance.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Instance name.
    pub instance: String,
    /// Instance family (`pec`, `controller`, …).
    pub family: String,
    /// Engine that produced this record.
    pub engine: EngineKind,
    /// `true` if a Henkin function vector was synthesized *and* passed the
    /// independent certificate check (the paper's notion of "synthesized").
    pub synthesized: bool,
    /// `true` if the engine decided the instance (synthesized or proved
    /// false).
    pub decided: bool,
    /// Short outcome label (`realizable`, `unrealizable`, `unknown:…`).
    pub outcome: String,
    /// Wall-clock runtime of the engine call.
    pub time: Duration,
    /// Oracle-layer counters of the run (for the portfolio: the element-wise
    /// sum over the racing engines). The MaxSAT columns of
    /// `summary_table.csv` — incremental hits vs fresh encodes — aggregate
    /// these across the suite.
    pub oracle: OracleStats,
    /// Number of repair iterations (counterexample rounds) the run took.
    /// Only the Manthan3 engine reports this; baselines and the portfolio
    /// record zero.
    pub repair_iterations: usize,
    /// Wall-clock time the run's sampling stage took. Only the Manthan3
    /// engine reports this; baselines do not sample and the portfolio does
    /// not surface per-engine stage timings.
    pub sample_wall: Duration,
    /// Number of sample shards the run's sampling stage used (1 = the plain
    /// single-threaded sampler; 0 for engines that do not sample).
    pub sample_shards: usize,
    /// Number of output clusters the compositional engine synthesized
    /// concurrently (1 = it degenerated to the monolithic pipeline; 0 for
    /// every other engine).
    pub clusters: usize,
    /// Longest per-cluster synthesis wall clock — the critical path of the
    /// concurrent cluster phase (zero for non-compositional runs).
    pub cluster_wall_max: Duration,
    /// Sum of the per-cluster synthesis wall clocks — the total cluster
    /// work, i.e. what a sequential schedule would have paid (zero for
    /// non-compositional runs).
    pub cluster_wall_sum: Duration,
    /// The first rejected DRAT certificate of a certifying run
    /// ([`RunOptions::certify`]), with the offending CNF and proof — the
    /// harness dumps it for offline reproduction. `None` on sound runs, on
    /// uncertified runs, and for the portfolio (whose racers merge counters
    /// only; a rejection there still shows in
    /// `oracle.certificates_rejected`).
    pub certification_failure: Option<Box<CertificationFailure>>,
}

impl RunRecord {
    /// Runtime in seconds.
    pub fn seconds(&self) -> f64 {
        self.time.as_secs_f64()
    }
}

/// Runs `engine` on `instance` with the given per-instance wall-clock budget.
///
/// Every claimed Henkin vector is re-checked with
/// [`manthan3_dqbf::verify::check`]; a vector that fails the check is counted
/// as *not* synthesized (this never happens for the engines in this
/// workspace, but the harness does not take their word for it).
pub fn run_engine(engine: EngineKind, instance: &Instance, budget: Duration) -> RunRecord {
    run_engine_with(engine, instance, budget, RunOptions::default())
}

/// Like [`run_engine`], but with the Manthan3 sampling stage split across
/// `sample_shards` sampler threads (the harness flag `--sample-shards`).
pub fn run_engine_sharded(
    engine: EngineKind,
    instance: &Instance,
    budget: Duration,
    sample_shards: usize,
) -> RunRecord {
    run_engine_with(
        engine,
        instance,
        budget,
        RunOptions {
            sample_shards,
            ..RunOptions::default()
        },
    )
}

/// Like [`run_engine`], but with explicit [`RunOptions`] (shard width and
/// repair strategy). The options reach the Manthan3 engine directly and the
/// portfolio's Manthan3 racer; the baselines neither sample nor run MaxSAT
/// repair and ignore them.
pub fn run_engine_with(
    engine: EngineKind,
    instance: &Instance,
    budget: Duration,
    options: RunOptions,
) -> RunRecord {
    let sample_shards = options.sample_shards.max(1);
    let start = Instant::now();
    // Per-cluster metadata only the compositional engine fills in.
    let mut clusters = 0usize;
    let mut cluster_wall_max = Duration::ZERO;
    let mut cluster_wall_sum = Duration::ZERO;
    // Filled in by the certifying Manthan3-family engines on a rejection.
    let mut certification_failure = None;
    let (outcome, oracle, repair_iterations, sample_wall, record_shards) = match engine {
        EngineKind::Manthan3 => {
            let config = Manthan3Config {
                time_budget: Some(budget),
                sample_shards,
                repair_strategy: options.repair_strategy,
                solver_profile: options.solver_profile,
                certify: options.certify,
                ..Manthan3Config::default()
            };
            let result = Manthan3::new(config).synthesize(&instance.dqbf);
            certification_failure = result.stats.certification_failure;
            (
                result.outcome,
                result.stats.oracle,
                result.stats.repair_iterations,
                result.stats.sampling_time,
                result.stats.sample_shards,
            )
        }
        EngineKind::Hqs2Like => {
            let config = ExpansionConfig {
                time_budget: Some(budget),
                ..ExpansionConfig::default()
            };
            let result = ExpansionSolver::new(config).synthesize(&instance.dqbf);
            (result.outcome, result.oracle, 0, Duration::ZERO, 0)
        }
        EngineKind::PedantLike => {
            let config = ArbiterConfig {
                time_budget: Some(budget),
                ..ArbiterConfig::default()
            };
            let result = ArbiterSolver::new(config).synthesize(&instance.dqbf);
            (result.outcome, result.oracle, 0, Duration::ZERO, 0)
        }
        EngineKind::Portfolio => {
            let mut config = PortfolioConfig::with_time_budget(budget);
            config.manthan3.sample_shards = sample_shards;
            config.manthan3.repair_strategy = options.repair_strategy;
            config.manthan3.solver_profile = options.solver_profile;
            config.manthan3.certify = options.certify;
            let result = Portfolio::new(config).run(&instance.dqbf);
            let oracle = result.merged_oracle_stats();
            (result.outcome, oracle, 0, Duration::ZERO, sample_shards)
        }
        EngineKind::Compositional => {
            let config = CompositionalConfig {
                engine: Manthan3Config {
                    time_budget: Some(budget),
                    sample_shards,
                    repair_strategy: options.repair_strategy,
                    solver_profile: options.solver_profile,
                    certify: options.certify,
                    ..Manthan3Config::default()
                },
                max_cluster_size: options.max_cluster_size,
                compose_repairs: options.compose_repairs,
                threads: 0,
            };
            let result = CompositionalEngine::new(config).synthesize(&instance.dqbf);
            certification_failure = result.stats.certification_failure;
            clusters = result.stats.clusters;
            cluster_wall_max = result
                .stats
                .cluster_walls
                .iter()
                .copied()
                .max()
                .unwrap_or_default();
            cluster_wall_sum = result.stats.cluster_walls.iter().sum();
            (
                result.outcome,
                result.stats.oracle,
                result.stats.repair_iterations,
                result.stats.sampling_time,
                result.stats.sample_shards,
            )
        }
    };
    let time = start.elapsed();
    let (synthesized, decided, label) = match &outcome {
        SynthesisOutcome::Realizable(vector) => {
            let valid = verify::check(&instance.dqbf, vector).is_valid();
            (
                valid,
                valid,
                if valid { "realizable" } else { "invalid" }.to_string(),
            )
        }
        SynthesisOutcome::Unrealizable => (false, true, "unrealizable".to_string()),
        SynthesisOutcome::Unknown(reason) => (false, false, format!("unknown:{reason:?}")),
    };
    RunRecord {
        instance: instance.name.clone(),
        family: instance.family.to_string(),
        engine,
        synthesized,
        decided,
        outcome: label,
        time,
        oracle,
        repair_iterations,
        sample_wall,
        sample_shards: record_shards,
        clusters,
        cluster_wall_max,
        cluster_wall_sum,
        certification_failure,
    }
}

/// Runs every sequential engine on every instance.
pub fn run_suite(instances: &[Instance], budget: Duration) -> Vec<RunRecord> {
    run_suite_with_engines(instances, &EngineKind::ALL, budget)
}

/// Runs the given engines on every instance (the harness adds
/// [`EngineKind::Portfolio`] to the set with `--engine portfolio`).
pub fn run_suite_with_engines(
    instances: &[Instance],
    engines: &[EngineKind],
    budget: Duration,
) -> Vec<RunRecord> {
    run_suite_sharded(instances, engines, budget, 1)
}

/// Runs the given engines on every instance with the Manthan3 sampling
/// stage split across `sample_shards` shards (harness flag
/// `--sample-shards`).
pub fn run_suite_sharded(
    instances: &[Instance],
    engines: &[EngineKind],
    budget: Duration,
    sample_shards: usize,
) -> Vec<RunRecord> {
    run_suite_with_options(
        instances,
        engines,
        budget,
        RunOptions {
            sample_shards,
            ..RunOptions::default()
        },
    )
}

/// Runs the given engines on every instance under explicit [`RunOptions`]
/// (harness flags `--sample-shards` and `--repair-strategy`).
pub fn run_suite_with_options(
    instances: &[Instance],
    engines: &[EngineKind],
    budget: Duration,
    options: RunOptions,
) -> Vec<RunRecord> {
    let mut records = Vec::with_capacity(instances.len() * engines.len());
    for instance in instances {
        for &engine in engines {
            records.push(run_engine_with(engine, instance, budget, options));
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_gen::planted::{planted_true, PlantedParams};

    #[test]
    fn all_engines_solve_a_small_planted_instance() {
        let params = PlantedParams {
            num_universals: 3,
            num_existentials: 2,
            max_dependencies: 2,
            ..PlantedParams::default()
        };
        let instance = planted_true(&params, 11);
        for engine in EngineKind::ALL {
            let record = run_engine(engine, &instance, Duration::from_secs(5));
            assert!(record.synthesized, "{engine} failed: {}", record.outcome);
            assert!(record.decided);
        }
    }

    #[test]
    fn run_suite_produces_one_record_per_engine_and_instance() {
        let params = PlantedParams {
            num_universals: 3,
            num_existentials: 2,
            max_dependencies: 2,
            ..PlantedParams::default()
        };
        let instances = vec![planted_true(&params, 1), planted_true(&params, 2)];
        let records = run_suite(&instances, Duration::from_secs(5));
        assert_eq!(records.len(), 6);
    }

    #[test]
    fn engine_names_are_stable() {
        assert_eq!(EngineKind::Manthan3.to_string(), "manthan3");
        assert_eq!(EngineKind::Hqs2Like.to_string(), "hqs2like");
        assert_eq!(EngineKind::PedantLike.to_string(), "pedantlike");
        assert_eq!(EngineKind::Portfolio.to_string(), "portfolio");
        assert_eq!(EngineKind::Compositional.to_string(), "compositional");
    }

    #[test]
    fn engine_names_round_trip_through_fromstr() {
        for engine in EngineKind::ALL
            .into_iter()
            .chain([EngineKind::Portfolio, EngineKind::Compositional])
        {
            assert_eq!(engine.to_string().parse::<EngineKind>(), Ok(engine));
        }
        assert!("hqs3like".parse::<EngineKind>().is_err());
    }

    #[test]
    fn sharded_runs_record_shard_metadata() {
        let params = PlantedParams {
            num_universals: 3,
            num_existentials: 2,
            max_dependencies: 2,
            ..PlantedParams::default()
        };
        let instance = planted_true(&params, 11);
        let record = run_engine_sharded(EngineKind::Manthan3, &instance, Duration::from_secs(5), 4);
        assert!(record.synthesized, "manthan3 failed: {}", record.outcome);
        assert_eq!(record.sample_shards, 4);
        assert!(
            record.oracle.sampler_calls > 0,
            "sampler calls must be routed through the shared budget"
        );
        // Baselines do not sample.
        let baseline =
            run_engine_sharded(EngineKind::Hqs2Like, &instance, Duration::from_secs(5), 4);
        assert_eq!(baseline.sample_shards, 0);
        assert_eq!(baseline.sample_wall, Duration::ZERO);
    }

    #[test]
    fn core_guided_runs_record_probe_counters() {
        let params = PlantedParams {
            num_universals: 3,
            num_existentials: 2,
            max_dependencies: 2,
            ..PlantedParams::default()
        };
        let instance = planted_true(&params, 11);
        let options = RunOptions {
            repair_strategy: RepairStrategy::CoreGuided,
            ..RunOptions::default()
        };
        let record = run_engine_with(
            EngineKind::Manthan3,
            &instance,
            Duration::from_secs(5),
            options,
        );
        assert!(record.synthesized, "manthan3 failed: {}", record.outcome);
        // Probe accounting rides along whenever the run exercised repair.
        if record.oracle.maxsat_calls > 0 {
            assert!(record.oracle.maxsat_probes > 0);
        }
    }

    #[test]
    fn legacy_solver_profile_runs_agree_and_bill_solver_counters() {
        let params = PlantedParams {
            num_universals: 3,
            num_existentials: 2,
            max_dependencies: 2,
            ..PlantedParams::default()
        };
        let instance = planted_true(&params, 11);
        for profile in [SolverProfile::Modern, SolverProfile::Legacy] {
            let options = RunOptions {
                solver_profile: profile,
                ..RunOptions::default()
            };
            let record = run_engine_with(
                EngineKind::Manthan3,
                &instance,
                Duration::from_secs(5),
                options,
            );
            assert!(
                record.synthesized,
                "manthan3 ({profile}) failed: {}",
                record.outcome
            );
            assert!(
                record.oracle.sat_propagations > 0,
                "solver-layer propagation counters must be billed under {profile}"
            );
        }
    }

    #[test]
    fn compositional_engine_records_cluster_metadata() {
        let params = PlantedParams {
            num_universals: 3,
            num_existentials: 2,
            max_dependencies: 2,
            ..PlantedParams::default()
        };
        let instance = planted_true(&params, 11);
        let record = run_engine(EngineKind::Compositional, &instance, Duration::from_secs(5));
        assert!(
            record.synthesized,
            "compositional failed: {}",
            record.outcome
        );
        assert!(record.clusters >= 1, "cluster count must be recorded");
        assert!(record.cluster_wall_sum >= record.cluster_wall_max);
        // Non-compositional runs leave the cluster columns zeroed.
        let plain = run_engine(EngineKind::Manthan3, &instance, Duration::from_secs(5));
        assert_eq!(plain.clusters, 0);
        assert_eq!(plain.cluster_wall_sum, Duration::ZERO);
    }

    #[test]
    fn certified_runs_check_every_unsat_verdict() {
        let params = PlantedParams {
            num_universals: 3,
            num_existentials: 2,
            max_dependencies: 2,
            ..PlantedParams::default()
        };
        let instance = planted_true(&params, 11);
        let options = RunOptions {
            certify: true,
            ..RunOptions::default()
        };
        for engine in [EngineKind::Manthan3, EngineKind::Compositional] {
            let record = run_engine_with(engine, &instance, Duration::from_secs(5), options);
            assert!(record.synthesized, "{engine} failed: {}", record.outcome);
            assert!(
                record.oracle.certificates_checked > 0,
                "{engine}: a successful certifying run ends on a certified UNSAT verify"
            );
            assert_eq!(record.oracle.certificates_rejected, 0, "{engine}");
            assert!(record.oracle.proof_bytes > 0, "{engine}");
            assert!(record.certification_failure.is_none(), "{engine}");
        }
        // Uncertified runs leave the proof counters (and the failure slot)
        // untouched.
        let plain = run_engine(EngineKind::Manthan3, &instance, Duration::from_secs(5));
        assert_eq!(plain.oracle.certificates_checked, 0);
        assert!(plain.certification_failure.is_none());
    }

    #[test]
    fn portfolio_engine_produces_verified_records() {
        let params = PlantedParams {
            num_universals: 3,
            num_existentials: 2,
            max_dependencies: 2,
            ..PlantedParams::default()
        };
        let instance = planted_true(&params, 11);
        let record = run_engine(EngineKind::Portfolio, &instance, Duration::from_secs(5));
        assert!(record.synthesized, "portfolio failed: {}", record.outcome);
        assert!(record.decided);
    }
}
